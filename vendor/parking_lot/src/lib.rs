//! Vendored offline stand-in for `parking_lot`: a [`Mutex`] and an [`RwLock`] over their
//! `std::sync` counterparts with parking_lot's API shape (`lock()`/`read()`/`write()` return
//! the guard directly; poisoning is ignored, which matches parking_lot's behavior of not
//! propagating panics through locks).

#![warn(missing_docs)]

use std::sync::MutexGuard as StdMutexGuard;
use std::sync::{RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting the given value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read`/`write` signatures.
///
/// Used by the queries-pool snapshot machinery: readers briefly hold `read()` to clone the
/// current `Arc` snapshot, writers hold `write()` only to swap a freshly built snapshot in —
/// so estimate serving never blocks on pool maintenance beyond the pointer swap.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting the given value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until no writer holds the lock.
    pub fn read(&self) -> StdRwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until all readers and writers release.
    pub fn write(&self) -> StdRwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write_and_into_inner() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = std::sync::Arc::new(RwLock::new(7));
        let guard = l.read();
        let l2 = l.clone();
        let handle = std::thread::spawn(move || *l2.read());
        assert_eq!(handle.join().unwrap(), 7);
        assert_eq!(*guard, 7);
    }
}
