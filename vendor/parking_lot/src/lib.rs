//! Vendored offline stand-in for `parking_lot`: a [`Mutex`] over [`std::sync::Mutex`] with
//! parking_lot's API shape (`lock()` returns the guard directly; poisoning is ignored, which
//! matches parking_lot's behavior of not propagating panics through locks).

#![warn(missing_docs)]

use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting the given value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
