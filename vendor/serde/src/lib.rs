//! Vendored offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides a self-contained
//! (de)serialization framework with the same *spelling* as serde — `Serialize`,
//! `Deserialize`, `serde::de::DeserializeOwned`, `#[derive(Serialize, Deserialize)]` and
//! `#[serde(skip)]` — but a much simpler contract: values convert to and from the
//! self-describing [`content::Content`] tree, and `serde_json` renders that tree as JSON.
//! Round-tripping through this pair is lossless for every type the workspace serializes;
//! wire compatibility with upstream serde_json is *not* a goal.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod content {
    //! The self-describing value tree every serializable type converts through.

    /// A serialized value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        /// JSON `null` (also the encoding of `Option::None` and `()`).
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer.
        Int(i64),
        /// An unsigned integer too large for `Int`.
        UInt(u64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// A sequence (`Vec`, sets, tuples, maps with non-string keys).
        Seq(Vec<Content>),
        /// A map with string keys (structs, string-keyed maps, enum variants with data).
        Map(Vec<(String, Content)>),
    }

    impl Content {
        /// Views the content as a map, if it is one.
        pub fn as_map(&self) -> Option<&[(String, Content)]> {
            match self {
                Content::Map(entries) => Some(entries),
                _ => None,
            }
        }

        /// Views the content as a sequence, if it is one.
        pub fn as_seq(&self) -> Option<&[Content]> {
            match self {
                Content::Seq(items) => Some(items),
                _ => None,
            }
        }

        /// Looks up a struct field by name.
        pub fn field(&self, name: &str) -> Result<&Content, super::de::Error> {
            self.as_map()
                .and_then(|entries| {
                    entries
                        .iter()
                        .find(|(key, _)| key == name)
                        .map(|(_, value)| value)
                })
                .ok_or_else(|| super::de::Error::custom(format!("missing field `{name}`")))
        }
    }
}

pub mod de {
    //! Deserialization-side items (`DeserializeOwned`, the error type).

    /// The (de)serialization error type.
    #[derive(Debug, Clone)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error with a custom message.
        pub fn custom(message: impl Into<String>) -> Self {
            Error {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Marker for types deserializable without borrowing from the input — with this crate's
    /// tree-based model every [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

use content::Content;
use de::Error;

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from the content tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Int(v) => Ok(*v as $t),
                    Content::UInt(v) => Ok(*v as $t),
                    Content::Float(v) => Ok(*v as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Content::Int(wide as i64)
                } else {
                    Content::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Int(v) if *v >= 0 => Ok(*v as $t),
                    Content::UInt(v) => Ok(*v as $t),
                    Content::Float(v) if *v >= 0.0 => Ok(*v as $t),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Float(v) => Ok(*v as $t),
                    Content::Int(v) => Ok(*v as $t),
                    Content::UInt(v) => Ok(*v as $t),
                    other => Err(Error::custom(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) => Ok(v.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------------------------
// Generic container impls
// ---------------------------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(Box::new(T::from_content(content)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let values: Vec<T> = Vec::from_content(content)?;
        values
            .try_into()
            .map_err(|_| Error::custom(format!("expected sequence of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content.as_seq() {
            Some([a, b, c]) => Ok((
                A::from_content(a)?,
                B::from_content(b)?,
                C::from_content(c)?,
            )),
            _ => Err(Error::custom("expected 3-element sequence")),
        }
    }
}

// Maps and sets.  Every map is encoded as a sequence of `[key, value]` pairs so that
// non-string keys (`i64`, tuples, ...) round-trip without a string conversion — upstream
// serde_json would reject those keys, this crate simply does not special-case string keys.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        map_pairs(content)?
            .map(|pair| pair.and_then(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?))))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        map_pairs(content)?
            .map(|pair| pair.and_then(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?))))
            .collect()
    }
}

/// Iterates the `[key, value]` pairs of an encoded map.
fn map_pairs(
    content: &Content,
) -> Result<impl Iterator<Item = Result<(&Content, &Content), Error>>, Error> {
    let items = content
        .as_seq()
        .ok_or_else(|| Error::custom("expected map encoded as pair sequence"))?;
    Ok(items.iter().map(|item| match item.as_seq() {
        Some([k, v]) => Ok((k, v)),
        _ => Err(Error::custom("expected [key, value] pair")),
    }))
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let content = value.to_content();
        let back = T::from_content(&content).expect("round trip");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42i64);
        round_trip(u64::MAX);
        round_trip(-7i32);
        round_trip(3.5f64);
        round_trip(1.25f32);
        round_trip(true);
        round_trip("hello".to_string());
        round_trip(Some(5u32));
        round_trip(Option::<u32>::None);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip((1i64, "a".to_string()));
        let mut map = BTreeMap::new();
        map.insert("x".to_string(), vec![1usize, 2]);
        round_trip(map);
        let mut int_keys = BTreeMap::new();
        int_keys.insert(-3i64, 9u32);
        round_trip(int_keys);
        let mut hash = HashMap::new();
        hash.insert(("a".to_string(), "b".to_string()), (1i64, 2i64));
        round_trip(hash);
        round_trip(BTreeSet::from(["q".to_string(), "z".to_string()]));
        round_trip(Box::new(17u8));
    }

    #[test]
    fn field_lookup_reports_missing_fields() {
        let content = Content::Map(vec![("a".to_string(), Content::Int(1))]);
        assert!(content.field("a").is_ok());
        let err = content.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
