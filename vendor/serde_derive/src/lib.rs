//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.  The build environment has no crates.io access, so there is no `syn`/`quote`;
//! instead the item's `TokenStream` is parsed directly.  Supported shapes — which cover every
//! derived type in this workspace — are:
//!
//! * structs with named fields (with `#[serde(skip)]` honored: skipped on serialize,
//!   `Default::default()` on deserialize);
//! * enums with unit variants and tuple variants (externally tagged, like upstream serde:
//!   `"Variant"` for unit, `{"Variant": value}` / `{"Variant": [v0, v1, ...]}` otherwise).
//!
//! Generic types, tuple structs and struct variants are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => serialize_struct(&item.name, fields),
        Body::Enum(variants) => serialize_enum(&item.name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => deserialize_struct(&item.name, fields),
        Body::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    body: Body,
}

enum Body {
    /// Named fields: `(name, skipped)`.
    Struct(Vec<(String, bool)>),
    /// Variants: `(name, tuple_field_count)` — 0 means a unit variant.
    Enum(Vec<(String, usize)>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Outer attributes and visibility before the struct/enum keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) => {
                let text = ident.to_string();
                if text == "struct" || text == "enum" {
                    break text;
                }
                // `pub` (possibly followed by a `(crate)` group, consumed on the next spin).
            }
            Some(TokenTree::Group(_)) => {}
            Some(other) => panic!("unexpected token before item keyword: {other}"),
            None => panic!("derive input ended before struct/enum keyword"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    let body_group = loop {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("the vendored serde derive does not support generic type `{name}`")
            }
            Some(_) => {}
            None => panic!("expected `{{ ... }}` body for `{name}`"),
        }
    };
    let body = if kind == "struct" {
        Body::Struct(parse_struct_fields(body_group.stream()))
    } else {
        Body::Enum(parse_enum_variants(body_group.stream()))
    };
    Item { name, body }
}

/// Splits a brace/paren body into top-level comma-separated segments, tracking angle-bracket
/// depth so commas inside `BTreeMap<String, usize>` do not split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(Vec::new());
                continue;
            }
            _ => {}
        }
        segments.last_mut().expect("non-empty").push(token);
    }
    segments.retain(|segment| !segment.is_empty());
    segments
}

/// Strips leading attributes from a segment, returning whether `#[serde(skip)]` was present.
fn strip_attrs(segment: &mut Vec<TokenTree>) -> bool {
    let mut skip = false;
    while segment.len() >= 2 {
        match (&segment[0], &segment[1]) {
            (TokenTree::Punct(p), TokenTree::Group(group)) if p.as_char() == '#' => {
                let mut inner = group.stream().into_iter();
                if let Some(TokenTree::Ident(ident)) = inner.next() {
                    if ident.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            let args = args.stream().to_string();
                            if args.split(',').any(|a| a.trim() == "skip") {
                                skip = true;
                            } else {
                                panic!(
                                    "the vendored serde derive only supports #[serde(skip)], \
                                     found #[serde({args})]"
                                );
                            }
                        }
                    }
                }
                segment.drain(0..2);
            }
            _ => break,
        }
    }
    skip
}

/// Strips a leading `pub` / `pub(...)` visibility.
fn strip_visibility(segment: &mut Vec<TokenTree>) {
    if matches!(&segment.first(), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        segment.remove(0);
        if matches!(
            segment.first(),
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis
        ) {
            segment.remove(0);
        }
    }
}

fn parse_struct_fields(stream: TokenStream) -> Vec<(String, bool)> {
    split_top_level(stream)
        .into_iter()
        .map(|mut segment| {
            let skip = strip_attrs(&mut segment);
            strip_visibility(&mut segment);
            match segment.first() {
                Some(TokenTree::Ident(ident)) => (ident.to_string(), skip),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_enum_variants(stream: TokenStream) -> Vec<(String, usize)> {
    split_top_level(stream)
        .into_iter()
        .map(|mut segment| {
            strip_attrs(&mut segment);
            let name = match segment.first() {
                Some(TokenTree::Ident(ident)) => ident.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let field_count = match segment.get(1) {
                None => 0,
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                    split_top_level(group.stream()).len()
                }
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                    panic!("the vendored serde derive does not support struct variant `{name}`")
                }
                Some(other) => panic!("unexpected token after variant `{name}`: {other}"),
            };
            (name, field_count)
        })
        .collect()
}

// ---------------------------------------------------------------------------------------------
// Code generation (emitted as source text and re-parsed; fully-qualified paths throughout)
// ---------------------------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[(String, bool)]) -> String {
    let mut pushes = String::new();
    for (field, skip) in fields {
        if *skip {
            continue;
        }
        pushes.push_str(&format!(
            "fields.push((::std::string::String::from(\"{field}\"), \
             ::serde::Serialize::to_content(&self.{field})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::content::Content {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::content::Content)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::content::Content::Map(fields)\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[(String, bool)]) -> String {
    let mut inits = String::new();
    for (field, skip) in fields {
        if *skip {
            inits.push_str(&format!("{field}: ::std::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!(
                "{field}: ::serde::Deserialize::from_content(content.field(\"{field}\")?)?,\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::content::Content) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, usize)]) -> String {
    let mut arms = String::new();
    for (variant, field_count) in variants {
        match field_count {
            0 => arms.push_str(&format!(
                "{name}::{variant} => ::serde::content::Content::Str(\
                 ::std::string::String::from(\"{variant}\")),\n"
            )),
            1 => arms.push_str(&format!(
                "{name}::{variant}(__f0) => ::serde::content::Content::Map(vec![(\
                 ::std::string::String::from(\"{variant}\"), \
                 ::serde::Serialize::to_content(__f0))]),\n"
            )),
            n => {
                let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elements: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{variant}({}) => ::serde::content::Content::Map(vec![(\
                     ::std::string::String::from(\"{variant}\"), \
                     ::serde::content::Content::Seq(vec![{}]))]),\n",
                    bindings.join(", "),
                    elements.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::content::Content {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, usize)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (variant, field_count) in variants {
        match field_count {
            0 => unit_arms.push_str(&format!(
                "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),\n"
            )),
            1 => data_arms.push_str(&format!(
                "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}(\
                 ::serde::Deserialize::from_content(__value)?)),\n"
            )),
            n => {
                let elements: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{variant}\" => {{\n\
                         let __seq = __value.as_seq().ok_or_else(|| \
                             ::serde::de::Error::custom(\"expected sequence for variant {variant}\"))?;\n\
                         if __seq.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::de::Error::custom(\
                                 \"wrong arity for variant {variant}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{variant}({}))\n\
                     }}\n",
                    elements.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::content::Content) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 match content {{\n\
                     ::serde::content::Content::Str(__variant) => match __variant.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::de::Error::custom(\
                             format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::content::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__variant, __value) = &__entries[0];\n\
                         match __variant.as_str() {{\n\
                             {data_arms}\
                             other => ::std::result::Result::Err(::serde::de::Error::custom(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"expected enum encoding for {name}\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
