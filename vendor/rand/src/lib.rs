//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate re-implements the small
//! API subset the workspace uses: [`rngs::StdRng`] (an xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`seq::SliceRandom`] (`choose`, `shuffle`) and [`seq::index::sample`].
//!
//! Determinism matters (seeded tests and reproducible experiments), bit-compatibility with
//! the upstream crate does not — every consumer in this workspace only compares runs against
//! other runs of the same binary.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw bits (the subset of the
/// upstream `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method, without the
/// rejection step — the bias is at most 2⁻⁶⁴·bound, irrelevant at workspace scales).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`u64`, `f64`, `bool`, ...).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen reference, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of sampled indices (mirror of the upstream `IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set into an iterator of indices.
            #[allow(clippy::should_implement_trait)]
            pub fn into_iter(self) -> std::vec::IntoIter<usize> {
                self.0.into_iter()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Returns true when no index was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            // Partial Fisher–Yates: O(length) memory, O(amount) swaps — every workspace use
            // has small `length` (table sample sizes), so the simple form is fine.
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a fixed point with ~1/50! chance"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn index_sample_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let sampled = seq::index::sample(&mut rng, 100, 10);
        assert_eq!(sampled.len(), 10);
        let mut values: Vec<usize> = sampled.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 10);
        assert!(values.iter().all(|&v| v < 100));
    }
}
