//! Vendored offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion::benchmark_group`,
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — over a plain wall-clock measurement loop.  Statistical rigor is reduced (mean,
//! median and min over sample batches; no outlier analysis or HTML reports), but the printed
//! per-iteration times are real measurements, so before/after comparisons remain meaningful.
//!
//! `cargo bench -- --test` runs every benchmark body exactly once (smoke mode), matching the
//! upstream flag used in CI.  A benchmark name substring can be passed as a positional filter,
//! like upstream.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], mirroring upstream's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Converts `self` into the id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds the harness from command-line arguments (`--test` → run-once smoke mode; a bare
    /// positional argument filters benchmarks by substring; other flags are ignored).
    pub fn from_args() -> Self {
        let mut criterion = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => criterion.test_mode = true,
                "--bench" => {}
                // Flags with a value that upstream accepts; skip the value.
                "--measurement-time" | "--warm-up-time" | "--sample-size" | "--save-baseline"
                | "--baseline" | "--load-baseline" | "--profile-time" => {
                    args.next();
                }
                other if other.starts_with('-') => {}
                filter => criterion.filter = Some(filter.to_string()),
            }
        }
        criterion
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmarks a function outside of any group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = id.into_benchmark_id().id;
        self.run_one(&name, 10, Duration::from_secs(3), f);
    }

    fn run_one(
        &mut self,
        full_name: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{full_name}: ok (smoke)");
            return;
        }
        println!("{full_name}{}", summarize(&bencher.samples));
    }
}

/// Formats per-iteration sample times as `time: [min mean max]`, criterion-style.
fn summarize(samples: &[f64]) -> String {
    if samples.is_empty() {
        return ": no samples".to_string();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let mut out = String::new();
    write!(
        out,
        "\n                        time:   [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    )
    .expect("write to string");
    out
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.4} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.4} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.4} ms", seconds * 1e3)
    } else {
        format!("{:.4} s", seconds)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the total sampling duration budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let full_name = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.criterion
            .run_one(&full_name, sample_size, measurement_time, f);
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream finalizes reports here; measurements are already printed).
    pub fn finish(self) {}
}

/// Times the benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs the closure repeatedly and records per-iteration wall-clock times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate: find how many iterations fill ~1/sample_size of the time budget, so the
        // whole measurement stays within measurement_time regardless of body cost.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        std::hint::black_box(f());
        calibration_iters += 1;
        let mut elapsed = calibration_start.elapsed();
        while elapsed < Duration::from_millis(20) && calibration_iters < 1_000_000 {
            std::hint::black_box(f());
            calibration_iters += 1;
            elapsed = calibration_start.elapsed();
        }
        let per_iter = elapsed.as_secs_f64() / calibration_iters as f64;
        let budget_per_sample =
            self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters_per_sample = ((budget_per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        let measurement_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let sample_start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(sample_start.elapsed().as_secs_f64() / iters_per_sample as f64);
            if measurement_start.elapsed() > self.measurement_time.mul_f64(1.5) {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!("plain".into_benchmark_id().id, "plain");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0;
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_collects_samples() {
        let mut criterion = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        group.bench_function("busy", |b| {
            b.iter(|| std::hint::black_box((0..100).sum::<u64>()))
        });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: Some("wanted".to_string()),
        };
        let mut runs = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("unrelated", |b| b.iter(|| runs += 1));
        group.bench_function("wanted_one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(2.5e-9).contains("ns"));
        assert!(format_time(2.5e-6).contains("µs"));
        assert!(format_time(2.5e-3).contains("ms"));
        assert!(format_time(2.5).contains(" s"));
    }
}
