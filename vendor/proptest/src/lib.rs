//! Vendored offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, numeric-range strategies (`0u64..500`,
//! `1e-3f64..1e6`, ...), and `prop_assert!` / `prop_assert_eq!`.  Unlike upstream there is no
//! shrinking — on failure the assertion panics with the sampled inputs printed via the
//! standard assertion message, which is adequate for the deterministic seeds used here.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Creates the deterministic RNG for one property, seeded from the property's name so every
/// test run explores the same cases.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

pub mod strategy {
    //! Value-generation strategies (numeric ranges).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values for one macro argument.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A fixed list of candidate values, sampled uniformly.
    impl<T: Clone> Strategy for Vec<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            assert!(
                !self.is_empty(),
                "cannot sample from an empty candidate list"
            );
            self[rng.gen_range(0..self.len())].clone()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// that samples the strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    let result: Result<(), String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = result {
                        panic!(
                            "property {} failed at case {case} with inputs {:?}: {message}",
                            stringify!($name),
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the sampled inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, reporting the sampled inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(a in 3u64..10, b in -2i64..3, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..3).contains(&b));
            prop_assert!((0.5..1.5).contains(&f), "f out of range: {f}");
            prop_assert_eq!(a, a);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..100) {
            prop_assert!(seed < 100);
        }
    }

    #[test]
    fn same_name_gives_same_samples() {
        use crate::strategy::Strategy;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        for _ in 0..10 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(v in 0u32..5) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        inner();
    }
}
