//! Vendored offline stand-in for `serde_json`: renders the vendored serde
//! [`Content`](serde::content::Content) tree as JSON and parses it back.  The encoding is
//! self-consistent (everything written by [`to_writer`]/[`to_string`] is read back by
//! [`from_reader`]/[`from_str`]); byte-compatibility with upstream serde_json is a non-goal
//! (most visibly, maps are encoded as `[key, value]` pair arrays).

#![warn(missing_docs)]

use serde::content::Content;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// The error type of this crate (shared with the vendored serde).
pub type Error = serde::de::Error;

/// Serializes a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    writer
        .write_all(out.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::custom(format!("read failed: {e}")))?;
    from_str(&text)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_content(&content)
}

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Float(v) => {
            if v.is_finite() {
                // `{:?}` of f64 keeps full round-trip precision in Rust.
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no inf/nan; encode as null like upstream's lossy modes.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte sequences arrive as raw bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => return Err(Error::custom(format!("expected , or ] found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => return Err(Error::custom(format!("expected , or }} found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        let f = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(
            from_str::<String>(&to_string("a \"quoted\"\nline\t\\x").unwrap()).unwrap(),
            "a \"quoted\"\nline\t\\x"
        );
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1i64, "a".to_string()), (-2, "b".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(i64, String)>>(&json).unwrap(), v);
        let mut map = std::collections::BTreeMap::new();
        map.insert("k".to_string(), vec![1.5f32, 2.5]);
        let json = to_string(&map).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<f32>>>(&json).unwrap(),
            map
        );
    }

    #[test]
    fn malformed_input_reports_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let s = "naïve — ünïcode 💡 \u{1} end".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
    }
}
