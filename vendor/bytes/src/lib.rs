//! Vendored offline stand-in for the `bytes` crate: the [`Bytes`] / [`BytesMut`] /
//! [`BufMut`] subset this workspace uses (bitmap packing in `crn-exec`).  Cheap sharing is
//! provided by `Arc<[u8]>` rather than the upstream vtable machinery.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations (the subset of the upstream trait this workspace needs).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_and_read_back() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u8(1);
        buf.put_slice(&[2, 3]);
        assert_eq!(buf.len(), 3);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.get(1).copied(), Some(2));
        assert_eq!(frozen, Bytes::copy_from_slice(&[1, 2, 3]));
        assert!(Bytes::new().is_empty());
    }
}
