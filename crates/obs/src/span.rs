//! Per-request spans: a trace ID minted at `submit` and carried through the ticket,
//! with the scheduler filling in per-segment timings as the request moves
//! queue → batch close → cache probe → shard compute → merge.
//!
//! Both types are `Copy` so they ride inside `TicketOutcome` without breaking its
//! `Copy` contract, and both are plain data — the serving crates own when and how the
//! segments are measured.

/// Minted at `submit` when observability is enabled: the request's trace identity and
/// submission timestamp on the injected clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStart {
    /// Unique (per-`Obs`) trace ID.
    pub id: u64,
    /// Submission time in clock microseconds.
    pub submitted_us: u64,
}

/// The per-request span a resolved ticket carries back to the caller: where its
/// end-to-end latency actually went. Segment semantics:
///
/// - `queue_wait_us` — submission to batch close (admission queue residency).
/// - `batch_wait_us` — batch close to service dispatch (drain, dedup, bookkeeping).
/// - `cache_probe_us` — the batch's estimate-cache probe (0 when the cache is off).
/// - `shard_compute_us` — the service's per-shard anchor retrieval + model inference.
/// - `merge_us` — cross-shard merge of partial results.
///
/// Compute and merge segments are batch-level attributions (every request in a batch
/// shares the batch's service timings); queue wait is exact per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestTrace {
    /// The trace ID minted at submission.
    pub trace_id: u64,
    /// See the type-level docs for segment semantics.
    pub queue_wait_us: u64,
    /// See the type-level docs for segment semantics.
    pub batch_wait_us: u64,
    /// See the type-level docs for segment semantics.
    pub cache_probe_us: u64,
    /// See the type-level docs for segment semantics.
    pub shard_compute_us: u64,
    /// See the type-level docs for segment semantics.
    pub merge_us: u64,
}

impl RequestTrace {
    /// Total time accounted to the recorded segments, in microseconds.
    pub fn accounted_us(&self) -> u64 {
        self.queue_wait_us
            + self.batch_wait_us
            + self.cache_probe_us
            + self.shard_compute_us
            + self.merge_us
    }
}
