//! The bounded structured event journal: a ring buffer of timestamped serving events
//! (batch closes, supervisor restarts, gate decisions, checkpoint commits, pool
//! maintenance). Overflow drops the *oldest* entries and counts them, so a wedged
//! exporter can never grow the journal without bound.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A structured serving event. Variants carry only plain data; every field renders
/// into the JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The scheduler closed a batch.
    BatchClosed {
        /// Why the batch closed: `"size"`, `"window"` or `"drain"`.
        reason: &'static str,
        /// Requests in the batch.
        size: usize,
        /// SLO class name of the batch (`"interactive"` / `"batch"`).
        class: &'static str,
    },
    /// A supervised lane crashed and was restarted.
    SupervisorRestart {
        /// Lane name (`"scheduler"`, `"maintenance"`, `"refresh"`).
        lane: &'static str,
        /// Restart count for that lane so far.
        restarts: u64,
    },
    /// A supervised lane exhausted its restart budget and degraded.
    LaneDegraded {
        /// Lane name.
        lane: &'static str,
    },
    /// The online refresh controller made a gate decision.
    GateDecision {
        /// Outcome: `"applied"`, `"rejected-by-gate"` or `"no-training-pairs"`.
        decision: &'static str,
        /// Drift-window median q-error at decision time.
        window_median: f64,
    },
    /// A warm-start fine-tune cycle completed (before the gate verdict).
    FineTune {
        /// Wall-clock fine-tune duration in microseconds.
        duration_us: u64,
        /// Training pairs in the cycle's corpus.
        pairs: usize,
    },
    /// A checkpoint was committed by the maintenance lane.
    CheckpointCommit {
        /// Total checkpoints written so far.
        written: u64,
    },
    /// The pool evicted entries under retention pressure.
    PoolEviction {
        /// Entries evicted since the previous journal entry.
        evicted: u64,
    },
    /// The pool was compacted after a model swap.
    PoolCompaction {
        /// Entries re-anchored or merged by the compaction.
        merged: usize,
    },
    /// The estimate cache purged stale entries after a version movement.
    CachePurge {
        /// Entries purged.
        purged: u64,
    },
    /// A cluster coordinator lost contact with a worker process (dead connection or
    /// exceeded timeout); the worker's shards degrade to the fallback path until it
    /// reconnects.
    WorkerLost {
        /// Zero-based worker index in the fleet.
        worker: usize,
    },
    /// The cluster canary gate decided a staged candidate model's fate after mirrored
    /// probe traffic on the canary worker.
    CanaryDecision {
        /// Outcome: `"promoted"` or `"rejected"`.
        decision: &'static str,
        /// Live model's probe median q-error on the canary worker.
        live_median: f64,
        /// Candidate model's probe median q-error on the canary worker.
        candidate_median: f64,
    },
}

impl Event {
    /// Short machine-readable event kind for the `"kind"` JSON field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::BatchClosed { .. } => "batch_closed",
            Event::SupervisorRestart { .. } => "supervisor_restart",
            Event::LaneDegraded { .. } => "lane_degraded",
            Event::GateDecision { .. } => "gate_decision",
            Event::FineTune { .. } => "fine_tune",
            Event::CheckpointCommit { .. } => "checkpoint_commit",
            Event::PoolEviction { .. } => "pool_eviction",
            Event::PoolCompaction { .. } => "pool_compaction",
            Event::CachePurge { .. } => "cache_purge",
            Event::WorkerLost { .. } => "worker_lost",
            Event::CanaryDecision { .. } => "canary_decision",
        }
    }

    /// Renders the variant's payload as JSON object fields (no braces), e.g.
    /// `"reason":"size","size":12,"class":"interactive"`.
    fn render_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Event::BatchClosed {
                reason,
                size,
                class,
            } => {
                let _ = write!(
                    out,
                    "\"reason\":\"{reason}\",\"size\":{size},\"class\":\"{class}\""
                );
            }
            Event::SupervisorRestart { lane, restarts } => {
                let _ = write!(out, "\"lane\":\"{lane}\",\"restarts\":{restarts}");
            }
            Event::LaneDegraded { lane } => {
                let _ = write!(out, "\"lane\":\"{lane}\"");
            }
            Event::GateDecision {
                decision,
                window_median,
            } => {
                let _ = write!(
                    out,
                    "\"decision\":\"{decision}\",\"window_median\":{}",
                    crate::export::json_f64(*window_median)
                );
            }
            Event::FineTune { duration_us, pairs } => {
                let _ = write!(out, "\"duration_us\":{duration_us},\"pairs\":{pairs}");
            }
            Event::CheckpointCommit { written } => {
                let _ = write!(out, "\"written\":{written}");
            }
            Event::PoolEviction { evicted } => {
                let _ = write!(out, "\"evicted\":{evicted}");
            }
            Event::PoolCompaction { merged } => {
                let _ = write!(out, "\"merged\":{merged}");
            }
            Event::CachePurge { purged } => {
                let _ = write!(out, "\"purged\":{purged}");
            }
            Event::WorkerLost { worker } => {
                let _ = write!(out, "\"worker\":{worker}");
            }
            Event::CanaryDecision {
                decision,
                live_median,
                candidate_median,
            } => {
                let _ = write!(
                    out,
                    "\"decision\":\"{decision}\",\"live_median\":{},\"candidate_median\":{}",
                    crate::export::json_f64(*live_median),
                    crate::export::json_f64(*candidate_median)
                );
            }
        }
    }
}

/// A journal entry: a monotonic sequence number, a clock timestamp and the event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Monotonic per-journal sequence number (never reused, survives ring overflow).
    pub seq: u64,
    /// Clock microseconds at record time.
    pub at_us: u64,
    /// The event payload.
    pub event: Event,
}

impl JournalEntry {
    /// One JSONL line: `{"type":"event","seq":…,"at_us":…,"kind":…,…fields}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"seq\":{},\"at_us\":{},\"kind\":\"{}\",",
            self.seq,
            self.at_us,
            self.event.kind()
        );
        self.event.render_fields(&mut out);
        out.push('}');
        out
    }
}

struct JournalState {
    entries: VecDeque<JournalEntry>,
    next_seq: u64,
    dropped: u64,
}

/// The bounded ring-buffer journal. All operations take one short mutex hold; the
/// serving hot path only touches it on batch-level (not per-request) events.
pub struct Journal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl Journal {
    /// A journal holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(JournalState {
                entries: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends an event at clock time `at_us`, evicting the oldest entry when full.
    pub fn record(&self, at_us: u64, event: Event) {
        let mut state = self.state.lock().expect("journal mutex");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
            state.dropped += 1;
        }
        state.entries.push_back(JournalEntry { seq, at_us, event });
    }

    /// All retained entries with `seq >= from_seq`, oldest first. Exporters track the
    /// last sequence they saw and pass `last + 1` to drain incrementally.
    pub fn entries_since(&self, from_seq: u64) -> Vec<JournalEntry> {
        let state = self.state.lock().expect("journal mutex");
        state
            .entries
            .iter()
            .filter(|entry| entry.seq >= from_seq)
            .cloned()
            .collect()
    }

    /// Entries evicted by ring overflow before any exporter saw them.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("journal mutex").dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.state.lock().expect("journal mutex").next_seq
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("journal mutex");
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("len", &state.entries.len())
            .field("dropped", &state.dropped)
            .finish()
    }
}
