//! The injectable clock behind every span segment and journal timestamp.
//!
//! Production uses [`MonotonicClock`] (microseconds since construction, backed by
//! [`std::time::Instant`]); deterministic tests inject a [`ManualClock`] and advance it
//! by hand, so histogram counts and span segments come out *exact*, not approximate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock. Implementations must be cheap and thread-safe: the
/// scheduler reads the clock several times per batch when observability is enabled.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since construction, via [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-advanced clock for deterministic tests: `now_us` returns exactly what the
/// test last set, so span segments and histogram buckets are bit-predictable.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0µs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds, returning the new time.
    pub fn advance(&self, us: u64) -> u64 {
        self.now.fetch_add(us, Ordering::SeqCst) + us
    }

    /// Sets the clock to an absolute microsecond timestamp.
    pub fn set(&self, us: u64) {
        self.now.store(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}
