//! Exporters: a periodic JSONL emitter (snapshot + event lines to a file), a one-shot
//! Prometheus-text dump and an end-of-run plain-text table. JSON emission is
//! hand-rolled on `std` so the crate stays dependency-free.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Snapshot;
use crate::Obs;

/// Renders an `f64` as a JSON number (finite values only; non-finite becomes `0`).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` keeps round-trip precision and always includes a decimal point or
        // exponent, which every JSON parser accepts.
        format!("{value:?}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for inclusion inside JSON quotes.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSONL line for a metrics snapshot:
/// `{"type":"snapshot","at_us":…,"counters":{…},"gauges":{…},"hists":{name:{count,p50,p99,max}},…}`.
pub fn render_snapshot_json(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"type\":\"snapshot\",\"at_us\":{},\"counters\":{{",
        snapshot.at_us
    );
    for (index, (name, value)) in snapshot.counters.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), value);
    }
    out.push_str("},\"gauges\":{");
    for (index, (name, value)) in snapshot.gauges.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), json_f64(*value));
    }
    out.push_str("},\"hists\":{");
    for (index, (name, hist)) in snapshot.hists.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            json_escape(name),
            hist.count,
            hist.p50,
            hist.p99,
            hist.max
        );
    }
    let _ = write!(
        out,
        "}},\"journal_recorded\":{},\"journal_dropped\":{}}}",
        snapshot.journal_recorded, snapshot.journal_dropped
    );
    out
}

/// Sanitizes a metric name for Prometheus exposition (`[a-zA-Z0-9_]`, dots → `_`).
fn prom_name(raw: &str) -> String {
    raw.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// A one-shot Prometheus-text rendering of a snapshot. Histograms expose `_count`,
/// `_p50`, `_p99` and `_max` gauges (log₂-bucket summaries, not native histograms —
/// the bucket layout is fixed and the quantiles are what the benchmarks consume).
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(512);
    for (name, value) in &snapshot.counters {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", json_f64(*value));
    }
    for (name, hist) in &snapshot.hists {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}_count {}", hist.count);
        let _ = writeln!(out, "{name}_p50 {}", hist.p50);
        let _ = writeln!(out, "{name}_p99 {}", hist.p99);
        let _ = writeln!(out, "{name}_max {}", hist.max);
    }
    out
}

/// An end-of-run plain-text table of every metric, aligned for terminal reading.
pub fn render_table(snapshot: &Snapshot) -> String {
    let width = snapshot
        .counters
        .iter()
        .map(|(name, _)| name.len())
        .chain(snapshot.gauges.iter().map(|(name, _)| name.len()))
        .chain(snapshot.hists.iter().map(|(name, _)| name.len()))
        .max()
        .unwrap_or(0)
        .max(16);
    let mut out = String::with_capacity(512);
    let _ = writeln!(out, "{:<width$}  value", "counter");
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "{name:<width$}  {value}");
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "{:<width$}  value", "gauge");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "{name:<width$}  {value:.3}");
        }
    }
    if !snapshot.hists.is_empty() {
        let _ = writeln!(out, "{:<width$}  count  p50us  p99us  maxus", "histogram");
        for (name, hist) in &snapshot.hists {
            let _ = writeln!(
                out,
                "{name:<width$}  {}  {}  {}  {}",
                hist.count, hist.p50, hist.p99, hist.max
            );
        }
    }
    let _ = writeln!(
        out,
        "journal: {} events recorded, {} dropped by ring overflow",
        snapshot.journal_recorded, snapshot.journal_dropped
    );
    out
}

struct EmitterShared {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// A background thread that appends one snapshot line plus any new journal-event lines
/// to a JSONL file every `interval`. `stop()` writes a final snapshot and drains the
/// remaining events, so short runs still produce a complete artifact.
pub struct JsonlEmitter {
    shared: Arc<EmitterShared>,
    handle: Option<JoinHandle<()>>,
}

impl JsonlEmitter {
    /// Spawns the emitter over `obs`, appending to `path`. Returns an I/O error when
    /// the file cannot be created.
    pub fn spawn(obs: Obs, path: &Path, interval: Duration) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let shared = Arc::new(EmitterShared {
            stopped: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("crn-obs-jsonl".to_string())
            .spawn(move || {
                let mut writer = BufWriter::new(file);
                let mut next_seq = 0u64;
                loop {
                    let stopped = {
                        let guard = thread_shared.stopped.lock().expect("emitter mutex");
                        let (guard, _) = thread_shared
                            .wake
                            .wait_timeout_while(guard, interval, |stopped| !*stopped)
                            .expect("emitter condvar");
                        *guard
                    };
                    Self::emit(&obs, &mut writer, &mut next_seq);
                    if stopped {
                        break;
                    }
                }
            })
            .expect("spawn jsonl emitter");
        Ok(Self {
            shared,
            handle: Some(handle),
        })
    }

    fn emit(obs: &Obs, writer: &mut BufWriter<File>, next_seq: &mut u64) {
        let line = render_snapshot_json(&obs.snapshot());
        let _ = writeln!(writer, "{line}");
        for entry in obs.events_since(*next_seq) {
            *next_seq = entry.seq + 1;
            let _ = writeln!(writer, "{}", entry.to_json());
        }
        let _ = writer.flush();
    }

    /// Stops the emitter after one final snapshot + event drain and joins the thread.
    pub fn stop(mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    fn signal_stop(&self) {
        *self.shared.stopped.lock().expect("emitter mutex") = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for JsonlEmitter {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
