//! # crn-obs — zero-overhead-when-off observability for the serving stack
//!
//! A dependency-free metrics + tracing layer threaded through `crn-core`, `crn-serve`,
//! `crn-online` and `crn-eval`:
//!
//! - **Metrics registry** — named counters, gauges and fixed-bucket log₂ latency
//!   histograms ([`hist`]); histogram recording is one relaxed atomic add on a
//!   per-thread shard, merged only at snapshot time.
//! - **Per-request spans** ([`span`]) — a trace ID minted at `submit`, carried through
//!   the ticket, with queue-wait / batch-wait / cache-probe / shard-compute / merge
//!   segments filled in by the scheduler. An injectable [`Clock`] keeps deterministic
//!   tests exact.
//! - **Event journal** ([`journal`]) — a bounded ring buffer of structured serving
//!   events (batch closes, supervisor restarts, gate decisions, checkpoint commits,
//!   pool maintenance).
//! - **Exporters** ([`export`]) — a periodic JSONL emitter, a one-shot Prometheus-text
//!   dump and an end-of-run plain-text table.
//!
//! The load-bearing contract is [`Obs::disabled`]: a disabled handle is a `None` inside
//! a `Clone`-able wrapper, every operation short-circuits on that single branch, and
//! the instrumented crates take **no clock reads and no allocations** on the disabled
//! path — serving behaviour is bit-identical to the pre-observability code.

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod span;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use export::{render_prometheus, render_snapshot_json, render_table, JsonlEmitter};
pub use hist::{bucket_bounds, bucket_index, Hist, HistSnapshot, BUCKETS};
pub use journal::{Event, Journal, JournalEntry};
pub use metrics::{Counter, Gauge, HistHandle, Snapshot};
pub use span::{RequestTrace, TraceStart};

/// Construction-time knobs for an [`Obs`] instance. The default is **disabled**.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// When false (the default), [`Obs::new`] returns the no-op handle.
    pub enabled: bool,
    /// Ring-buffer capacity of the event journal.
    pub journal_capacity: usize,
    /// Per-thread shard count for every histogram.
    pub hist_shards: usize,
}

impl ObsConfig {
    /// The no-op configuration (the default): observability off, prior code path.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            journal_capacity: 1024,
            hist_shards: 8,
        }
    }

    /// Observability on with default journal capacity (1024) and shard count (8).
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Sets the journal ring-buffer capacity.
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity.max(1);
        self
    }

    /// Sets the per-histogram shard count.
    pub fn with_hist_shards(mut self, shards: usize) -> Self {
        self.hist_shards = shards.max(1);
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

struct ObsInner {
    clock: Arc<dyn Clock>,
    registry: metrics::Registry,
    journal: Journal,
    trace_seq: AtomicU64,
}

/// The observability handle threaded through the serving stack. Cloning is an `Arc`
/// clone (or a `None` copy when disabled); every method is a no-op on the disabled
/// handle.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op handle (the default): every operation short-circuits.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Builds a handle from `config` with the production [`MonotonicClock`].
    /// `config.enabled == false` yields the no-op handle.
    pub fn new(config: ObsConfig) -> Self {
        Self::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// Builds a handle from `config` with an injected clock (deterministic tests pass
    /// a [`ManualClock`]).
    pub fn with_clock(config: ObsConfig, clock: Arc<dyn Clock>) -> Self {
        if !config.enabled {
            return Self::disabled();
        }
        Self {
            inner: Some(Arc::new(ObsInner {
                clock,
                registry: metrics::Registry::new(config.hist_shards),
                journal: Journal::new(config.journal_capacity),
                trace_seq: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Clock microseconds (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.clock.now_us())
            .unwrap_or(0)
    }

    /// Mints a new trace at the current clock time; `None` when disabled, so the
    /// disabled submit path takes no clock read.
    pub fn mint_trace(&self) -> Option<TraceStart> {
        self.inner.as_ref().map(|inner| TraceStart {
            id: inner.trace_seq.fetch_add(1, Ordering::Relaxed),
            submitted_us: inner.clock.now_us(),
        })
    }

    /// Registers (or looks up) a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(
            self.inner
                .as_ref()
                .map(|inner| inner.registry.counter(name)),
        )
    }

    /// Registers (or looks up) a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| inner.registry.gauge(name)))
    }

    /// Registers (or looks up) a histogram by name.
    pub fn hist(&self, name: &str) -> HistHandle {
        HistHandle(self.inner.as_ref().map(|inner| inner.registry.hist(name)))
    }

    /// Appends an event to the journal at the current clock time.
    pub fn record_event(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.journal.record(inner.clock.now_us(), event);
        }
    }

    /// Journal entries with `seq >= from_seq` (empty when disabled).
    pub fn events_since(&self, from_seq: u64) -> Vec<JournalEntry> {
        self.inner
            .as_ref()
            .map(|inner| inner.journal.entries_since(from_seq))
            .unwrap_or_default()
    }

    /// A point-in-time read of every registered metric plus journal health.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            None => Snapshot::default(),
            Some(inner) => {
                let (counters, gauges, hists) = inner.registry.snapshot();
                Snapshot {
                    at_us: inner.clock.now_us(),
                    counters,
                    gauges,
                    hists,
                    journal_recorded: inner.journal.recorded(),
                    journal_dropped: inner.journal.dropped(),
                }
            }
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        assert_eq!(obs.now_us(), 0);
        assert!(obs.mint_trace().is_none());
        obs.counter("c").inc();
        obs.gauge("g").set(1.0);
        obs.hist("h").record(10);
        obs.record_event(Event::LaneDegraded { lane: "scheduler" });
        let snapshot = obs.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.hists.is_empty());
        assert!(obs.events_since(0).is_empty());
    }

    #[test]
    fn enabled_handle_registers_and_records() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(ObsConfig::enabled(), clock.clone());
        clock.set(42);
        let counter = obs.counter("serve.batches");
        counter.add(3);
        obs.gauge("online.median").set(1.5);
        obs.hist("serve.latency_us").record(100);
        obs.record_event(Event::CheckpointCommit { written: 1 });
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.at_us, 42);
        assert_eq!(snapshot.counters, vec![("serve.batches".to_string(), 3)]);
        assert_eq!(snapshot.gauges, vec![("online.median".to_string(), 1.5)]);
        assert_eq!(snapshot.hists.len(), 1);
        assert_eq!(snapshot.hists[0].1.count, 1);
        let events = obs.events_since(0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at_us, 42);
        assert_eq!(events[0].event.kind(), "checkpoint_commit");
    }

    #[test]
    fn trace_ids_are_unique_and_timestamped() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(ObsConfig::enabled(), clock.clone());
        clock.set(7);
        let a = obs.mint_trace().expect("enabled");
        clock.set(9);
        let b = obs.mint_trace().expect("enabled");
        assert_ne!(a.id, b.id);
        assert_eq!(a.submitted_us, 7);
        assert_eq!(b.submitted_us, 9);
    }

    #[test]
    fn same_name_shares_the_metric() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.counter("x").add(2);
        obs.counter("x").add(3);
        assert_eq!(obs.counter("x").get(), 5);
    }
}
