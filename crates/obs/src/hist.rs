//! Fixed-bucket log₂ latency histograms with per-thread shards.
//!
//! The hot path is a single relaxed `fetch_add` on a shard picked by a thread-local
//! slot, so concurrent recorders never contend on a cache line. Shards are merged only
//! at snapshot time. Buckets are powers of two: bucket 0 holds the value 0 and bucket
//! `k ≥ 1` covers `[2^(k-1), 2^k - 1]`, so a quantile read off the histogram is within
//! one bucket (a factor of two) of the exact sorted-oracle value.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of log₂ buckets: one for 0 plus one per bit position of a `u64`.
pub const BUCKETS: usize = 65;

static THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A small dense per-thread slot index, assigned once per thread on first record.
fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut index = slot.get();
        if index == usize::MAX {
            index = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
            slot.set(index);
        }
        index
    })
}

/// The log₂ bucket a value lands in: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `[lower, upper]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else {
        let lower = 1u64 << (index - 1);
        let upper = if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (lower, upper)
    }
}

struct Shard {
    counts: [AtomicU64; BUCKETS],
}

impl Shard {
    fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A concurrent log₂ histogram. Recording is one relaxed atomic add on a per-thread
/// shard; reads merge the shards.
pub struct Hist {
    shards: Box<[Shard]>,
}

impl Hist {
    /// A histogram with `shards` independent per-thread shards (minimum 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one observation. Hot path: thread-local slot lookup + relaxed add.
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_slot() % self.shards.len()];
        shard.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges all shards into one flat bucket array.
    pub fn merged(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for shard in self.shards.iter() {
            for (bucket, count) in shard.counts.iter().enumerate() {
                out[bucket] += count.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total observations across all shards.
    pub fn count(&self) -> u64 {
        self.merged().iter().sum()
    }

    /// The quantile at `fraction`, mirroring the eval driver's sorted nearest-rank rule
    /// (`rank = round((n-1) · fraction)`): returns the *upper bound* of the bucket the
    /// rank falls in, so the true sorted value is never above the reported quantile and
    /// never below the same bucket's lower bound.
    pub fn quantile(&self, fraction: f64) -> u64 {
        let merged = self.merged();
        let total: u64 = merged.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total - 1) as f64 * fraction.clamp(0.0, 1.0)).round() as u64;
        let mut cumulative = 0u64;
        for (bucket, count) in merged.iter().enumerate() {
            cumulative += count;
            if cumulative > rank {
                return bucket_bounds(bucket).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// The inclusive `[lower, upper]` bounds of the bucket the `fraction` quantile rank
    /// falls in — the exact sorted-oracle value is guaranteed to lie inside.
    pub fn quantile_bounds(&self, fraction: f64) -> (u64, u64) {
        let upper = self.quantile(fraction);
        bucket_bounds(bucket_index(upper))
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("shards", &self.shards.len())
            .field("count", &self.count())
            .finish()
    }
}

/// A point-in-time read of a histogram, carried by snapshots and exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Median (bucket upper bound, nearest-rank rule).
    pub p50: u64,
    /// 99th percentile (bucket upper bound, nearest-rank rule).
    pub p99: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
}

impl HistSnapshot {
    /// Reads the histogram's current merged state.
    pub fn of(hist: &Hist) -> Self {
        let merged = hist.merged();
        let count = merged.iter().sum();
        let max = merged
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| **c > 0)
            .map(|(bucket, _)| bucket_bounds(bucket).1)
            .unwrap_or(0);
        Self {
            count,
            p50: hist.quantile(0.50),
            p99: hist.quantile(0.99),
            max,
        }
    }
}
