//! The metrics registry: named counters, gauges and histograms behind cheap cloneable
//! handles. Registration takes a mutex once per name at setup time; the handles
//! themselves are lock-free (`Arc` + relaxed atomics) and no-ops when observability is
//! disabled, so a disabled handle costs one `Option` branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Hist, HistSnapshot};

/// A monotonically increasing counter handle. No-op when disabled.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` (relaxed).
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (relaxed).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|cell| cell.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A last-write-wins gauge handle storing an `f64`. No-op when disabled.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge (relaxed store of the f64 bits).
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map(|cell| f64::from_bits(cell.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

/// A histogram handle. Recording is one relaxed add on a per-thread shard; no-op when
/// disabled.
#[derive(Debug, Clone, Default)]
pub struct HistHandle(pub(crate) Option<Arc<Hist>>);

impl HistHandle {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(hist) = &self.0 {
            hist.record(value);
        }
    }

    /// The underlying histogram, when enabled.
    pub fn hist(&self) -> Option<&Hist> {
        self.0.as_deref()
    }

    /// Quantile at `fraction` (bucket upper bound; 0 when disabled or empty).
    pub fn quantile(&self, fraction: f64) -> u64 {
        self.0
            .as_ref()
            .map(|hist| hist.quantile(fraction))
            .unwrap_or(0)
    }

    /// Total observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map(|hist| hist.count()).unwrap_or(0)
    }
}

/// The name → metric maps. Held behind a mutex that is only taken at registration and
/// snapshot time, never on the record path.
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) hists: Mutex<BTreeMap<String, Arc<Hist>>>,
    pub(crate) hist_shards: usize,
}

impl Registry {
    pub(crate) fn new(hist_shards: usize) -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            hist_shards: hist_shards.max(1),
        }
    }

    pub(crate) fn counter(&self, name: &str) -> Arc<AtomicU64> {
        Arc::clone(
            self.counters
                .lock()
                .expect("counter registry")
                .entry(name.to_string())
                .or_default(),
        )
    }

    pub(crate) fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("gauge registry")
                .entry(name.to_string())
                .or_default(),
        )
    }

    pub(crate) fn hist(&self, name: &str) -> Arc<Hist> {
        Arc::clone(
            self.hists
                .lock()
                .expect("hist registry")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Hist::new(self.hist_shards))),
        )
    }
}

/// A point-in-time read of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Clock microseconds at snapshot time.
    pub at_us: u64,
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Journal events recorded / dropped by ring overflow so far.
    pub journal_recorded: u64,
    /// See [`Snapshot::journal_recorded`].
    pub journal_dropped: u64,
}

/// The three metric families of a [`Snapshot`], each sorted by name.
pub(crate) type MetricTables = (
    Vec<(String, u64)>,
    Vec<(String, f64)>,
    Vec<(String, HistSnapshot)>,
);

impl Registry {
    pub(crate) fn snapshot(&self) -> MetricTables {
        let counters = self
            .counters
            .lock()
            .expect("counter registry")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry")
            .iter()
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        let hists = self
            .hists
            .lock()
            .expect("hist registry")
            .iter()
            .map(|(name, hist)| (name.clone(), HistSnapshot::of(hist)))
            .collect();
        (counters, gauges, hists)
    }
}
