//! Histogram correctness (satellite coverage for the observability tentpole):
//! exact counts under the injectable clock, merge-equals-flat across per-thread
//! shards, and quantile error bounded by bucket width against a sorted oracle.

use std::sync::Arc;

use crn_obs::{
    bucket_bounds, bucket_index, render_prometheus, render_snapshot_json, render_table, Event,
    Hist, ManualClock, Obs, ObsConfig, BUCKETS,
};

/// The eval driver's sorted nearest-rank percentile rule, duplicated as the oracle.
fn sorted_oracle(samples: &mut [u64], fraction: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() - 1) as f64 * fraction).round() as usize;
    samples[rank]
}

#[test]
fn bucket_layout_is_log2() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), 64);
    for index in 0..BUCKETS {
        let (lower, upper) = bucket_bounds(index);
        assert!(lower <= upper);
        assert_eq!(bucket_index(lower), index);
        assert_eq!(bucket_index(upper), index);
    }
}

#[test]
fn exact_counts_under_manual_clock() {
    // Deterministic mode: a ManualClock drives span-style durations, so the histogram
    // counts are exact, not approximate. Each recorded duration is (end - start) on
    // the injected clock.
    use crn_obs::Clock as _;
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::with_clock(ObsConfig::enabled().with_hist_shards(1), clock.clone());
    let hist = obs.hist("test.duration_us");
    for step in [0u64, 1, 1, 3, 100, 100, 4096] {
        clock.set(0);
        let start = clock.now_us();
        clock.advance(step);
        hist.record(clock.now_us() - start);
    }
    let merged = obs
        .hist("test.duration_us")
        .hist()
        .expect("enabled")
        .merged();
    assert_eq!(merged[bucket_index(0)], 1);
    assert_eq!(merged[bucket_index(1)], 2);
    assert_eq!(merged[bucket_index(3)], 1);
    assert_eq!(merged[bucket_index(100)], 2);
    assert_eq!(merged[bucket_index(4096)], 1);
    assert_eq!(merged.iter().sum::<u64>(), 7);
}

#[test]
fn merge_equals_flat_across_shards() {
    // The same sample stream recorded into a sharded histogram from many threads must
    // merge to exactly the flat single-shard reference.
    let sharded = Arc::new(Hist::new(8));
    let flat = Hist::new(1);
    let samples: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) % 100_000).collect();
    for &sample in &samples {
        flat.record(sample);
    }
    std::thread::scope(|scope| {
        for chunk in samples.chunks(512) {
            let sharded = Arc::clone(&sharded);
            scope.spawn(move || {
                for &sample in chunk {
                    sharded.record(sample);
                }
            });
        }
    });
    assert_eq!(sharded.merged(), flat.merged());
    assert_eq!(sharded.count(), flat.count());
}

#[test]
fn quantile_error_bounded_by_bucket_width() {
    // Against a sorted oracle using the same nearest-rank rule, the histogram quantile
    // must land in the same bucket as the exact value: oracle ∈ [lower, upper] of the
    // bucket the histogram reports.
    let hist = Hist::new(4);
    let mut samples: Vec<u64> = (0..5000u64)
        .map(|i| {
            let x = (i * 48271) % 65537;
            x * x % 1_000_000
        })
        .collect();
    for &sample in &samples {
        hist.record(sample);
    }
    for fraction in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let exact = sorted_oracle(&mut samples, fraction);
        let reported = hist.quantile(fraction);
        let (lower, upper) = bucket_bounds(bucket_index(reported));
        assert!(
            exact >= lower && exact <= upper,
            "q{fraction}: exact {exact} outside histogram bucket [{lower}, {upper}]"
        );
        assert_eq!(
            bucket_index(reported),
            bucket_index(exact),
            "q{fraction}: histogram bucket disagrees with the oracle's bucket"
        );
    }
}

#[test]
fn journal_ring_drops_oldest_and_keeps_seq() {
    let obs = Obs::new(ObsConfig::enabled().with_journal_capacity(4));
    for written in 0..10u64 {
        obs.record_event(Event::CheckpointCommit { written });
    }
    let entries = obs.events_since(0);
    assert_eq!(entries.len(), 4);
    assert_eq!(
        entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![6, 7, 8, 9]
    );
    let snapshot = obs.snapshot();
    assert_eq!(snapshot.journal_recorded, 10);
    assert_eq!(snapshot.journal_dropped, 6);
    // Incremental drain: nothing new after the last seen seq.
    assert!(obs.events_since(10).is_empty());
}

#[test]
fn exporters_render_wellformed_output() {
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::with_clock(ObsConfig::enabled(), clock.clone());
    clock.set(1000);
    obs.counter("serve.batches").add(2);
    obs.gauge("online.drift_window_median").set(2.25);
    let hist = obs.hist("serve.latency_us.interactive");
    hist.record(100);
    hist.record(300);
    obs.record_event(Event::BatchClosed {
        reason: "size",
        size: 8,
        class: "interactive",
    });

    let snapshot = obs.snapshot();
    let json = render_snapshot_json(&snapshot);
    assert!(json.starts_with("{\"type\":\"snapshot\",\"at_us\":1000,"));
    assert!(json.contains("\"serve.batches\":2"));
    assert!(json.contains("\"online.drift_window_median\":2.25"));
    assert!(json.contains("\"serve.latency_us.interactive\":{\"count\":2,"));
    assert!(json.ends_with("}"));

    let event_json = obs.events_since(0)[0].to_json();
    assert_eq!(
        event_json,
        "{\"type\":\"event\",\"seq\":0,\"at_us\":1000,\"kind\":\"batch_closed\",\
         \"reason\":\"size\",\"size\":8,\"class\":\"interactive\"}"
    );

    let prom = render_prometheus(&snapshot);
    assert!(prom.contains("# TYPE serve_batches counter\nserve_batches 2\n"));
    assert!(prom.contains("serve_latency_us_interactive_count 2"));

    let table = render_table(&snapshot);
    assert!(table.contains("serve.batches"));
    assert!(table.contains("journal: 1 events recorded, 0 dropped"));
}

#[test]
fn jsonl_emitter_writes_snapshot_and_events() {
    let dir = std::env::temp_dir().join(format!("crn-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.jsonl");
    let obs = Obs::new(ObsConfig::enabled());
    obs.counter("serve.completed").add(5);
    obs.record_event(Event::SupervisorRestart {
        lane: "scheduler",
        restarts: 1,
    });
    let emitter =
        crn_obs::JsonlEmitter::spawn(obs.clone(), &path, std::time::Duration::from_millis(5))
            .expect("spawn emitter");
    std::thread::sleep(std::time::Duration::from_millis(20));
    obs.record_event(Event::LaneDegraded {
        lane: "maintenance",
    });
    emitter.stop();

    let contents = std::fs::read_to_string(&path).expect("jsonl written");
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 2, "expected snapshot + event lines");
    assert!(lines.iter().any(|l| l.contains("\"type\":\"snapshot\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"kind\":\"supervisor_restart\"")
            && l.contains("\"lane\":\"scheduler\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"kind\":\"lane_degraded\"")));
    // Every event seq appears exactly once: the emitter drains incrementally.
    let restart_lines = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"supervisor_restart\""))
        .count();
    assert_eq!(restart_lines, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
