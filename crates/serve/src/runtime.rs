//! The serving runtime: batch-forming scheduler, admission front door, maintenance lane.
//!
//! One [`ServeRuntime`] owns two background threads:
//!
//! * the **scheduler** parks on the submission queue, opens a batch when the first
//!   request arrives, and closes it when either the size threshold
//!   ([`RuntimeConfig::batch_max`]) is reached or the batching window
//!   ([`RuntimeConfig::batch_window`]) measured from that first request expires — then
//!   executes the batch as **one** [`EstimatorService::serve`] call (so cross-call
//!   traffic fuses into the same multi-query head batches a single synchronous caller
//!   would get) and resolves the tickets;
//! * the **maintenance lane** drains the feedback queue of `(query, true cardinality)`
//!   records and applies each one to the pool as a single-swap copy-on-write
//!   [`upsert`](crn_core::ShardedPool::upsert) — the paper's pool-refresh loop, running
//!   concurrently with serving and never blocking snapshot readers.
//!
//! Shutdown is graceful: [`ServeRuntime::shutdown`] (or drop) stops admission, drains
//! both queues — every admitted ticket resolves, every accepted feedback record applies —
//! and joins both threads.

use crate::queue::{QueueState, SubmitError};
use crate::ticket::{Ticket, TicketOutcome};
use crn_core::{query_hash, EstimatorService, ServeStats};
use crn_estimators::ContainmentEstimator;
use crn_nn::parallel::{lock_ignoring_poison, wait_ignoring_poison, wait_timeout_ignoring_poison};
use crn_query::ast::Query;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Downstream consumer of the maintenance lane's observed feedback — the channel the
/// online model-refresh subsystem (`crn-online`) listens on.
///
/// The maintenance thread calls [`observe`](FeedbackObserver::observe) for every record
/// submitted through [`ServeRuntime::record_observed`] *after* its pool upsert applied,
/// so an observer sees exactly the `(query, true cardinality, estimate)` triples that
/// reached the pool, in application order.  Observers run on the maintenance thread:
/// keep `observe` cheap (enqueue-and-return) — a slow observer stalls pool refreshes,
/// never serving.  A panicking observer is contained separately from the (already
/// applied) upsert: counted in [`RuntimeStats::observer_failed`], the lane keeps
/// draining.
pub trait FeedbackObserver: Send + Sync {
    /// One applied feedback record: the executed query, its true cardinality, and the
    /// estimate the runtime served for it (what the drift detector compares).
    fn observe(&self, query: &Query, true_cardinality: u64, estimate: f64);
}

/// Configuration of one [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Bound on *queued* (admitted, not yet batched) requests; submissions against a full
    /// queue are shed with [`SubmitError::Overloaded`].  Depth 1 degenerates to
    /// one-request batches — the useful floor for parity testing.
    pub queue_depth: usize,
    /// Per-caller fairness quota: one caller's share of `queue_depth`.  A flooding caller
    /// is shed at this bound while other callers' submissions stay admissible.
    pub per_caller_depth: usize,
    /// Size threshold closing a batch: the scheduler stops waiting as soon as this many
    /// requests are pending.  Normalized to at most `queue_depth` — admission caps the
    /// pending count there, so a larger threshold could never be met and waiting out the
    /// window for it would be pure dead latency.
    pub batch_max: usize,
    /// Time window closing a batch: measured from the *oldest* pending request, so no
    /// admitted request waits in the queue longer than this before its batch executes
    /// (zero serves whatever has accumulated the moment the scheduler wakes).
    pub batch_window: Duration,
    /// Bound on queued maintenance records; feedback against a full lane is shed (serving
    /// traffic is never displaced by maintenance).
    pub maintenance_depth: usize,
}

impl Default for RuntimeConfig {
    /// Defaults matching the CI smoke: depth 64, no per-caller cap beyond the depth,
    /// batches of at most 32 closing after 100µs, maintenance lane of 1024.
    fn default() -> Self {
        RuntimeConfig {
            queue_depth: 64,
            per_caller_depth: 64,
            batch_max: 32,
            batch_window: Duration::from_micros(100),
            maintenance_depth: 1024,
        }
    }
}

impl RuntimeConfig {
    /// Sets the batching window from microseconds (the `--batch-window-us` CLI unit).
    pub fn with_window_us(mut self, micros: u64) -> Self {
        self.batch_window = Duration::from_micros(micros);
        self
    }

    /// Sets the queue depth (and caps the per-caller quota at it).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self.per_caller_depth = self.per_caller_depth.min(self.queue_depth);
        self
    }

    /// Sets the per-caller fairness quota.
    pub fn with_per_caller_depth(mut self, depth: usize) -> Self {
        self.per_caller_depth = depth.max(1);
        self
    }

    /// Sets the batch size threshold.
    pub fn with_batch_max(mut self, max: usize) -> Self {
        self.batch_max = max.max(1);
        self
    }
}

/// Why the scheduler closed a batch (counted in [`RuntimeStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// `batch_max` pending requests accumulated before the window expired.
    Size,
    /// The window expired with fewer than `batch_max` pending.
    Window,
    /// Shutdown drain: the queue is being emptied without waiting for windows.
    Drain,
}

/// Monotonic counters describing a runtime's lifetime (snapshot via
/// [`ServeRuntime::stats`]).
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Requests admitted by the submission queue.
    pub submitted: u64,
    /// Requests whose tickets have resolved with an estimate.
    pub completed: u64,
    /// Requests whose batch panicked during execution (their tickets re-raise; the
    /// scheduler survives and keeps serving).
    pub failed: u64,
    /// Submissions shed because the queue was at depth.
    pub rejected_queue_full: u64,
    /// Submissions shed by the per-caller fairness quota.
    pub rejected_caller_quota: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches closed by the size threshold.
    pub size_closes: u64,
    /// Batches closed by the expired window.
    pub window_closes: u64,
    /// Batches closed by the shutdown drain.
    pub drain_closes: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Requests answered from another in-window request's computed row: duplicate
    /// queries inside one batch (by canonical query hash) are coalesced into a single
    /// served row fanned out to every duplicate's ticket.
    pub coalesced: u64,
    /// Maintenance records applied to the pool.
    pub maintenance_applied: u64,
    /// Maintenance records shed because the lane was at depth.
    pub maintenance_rejected: u64,
    /// Maintenance records whose upsert panicked (contained; the lane keeps draining).
    pub maintenance_failed: u64,
    /// Applied records whose [`FeedbackObserver`] panicked (contained separately: the
    /// upsert itself succeeded and stays counted in `maintenance_applied`).
    pub observer_failed: u64,
    /// The accumulated per-layer serving stats over every executed batch
    /// (see [`ServeStats::accumulate`]).
    pub serve: ServeStats,
}

impl RuntimeStats {
    /// Mean executed batch size (0 when no batch ran) — the cross-call fusion factor.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

/// Lock-free counter block (the scheduler and submitters bump these without the queue
/// mutex; `stats` snapshots them).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_caller_quota: AtomicU64,
    batches: AtomicU64,
    size_closes: AtomicU64,
    window_closes: AtomicU64,
    drain_closes: AtomicU64,
    max_batch: AtomicUsize,
    coalesced: AtomicU64,
    maintenance_applied: AtomicU64,
    maintenance_rejected: AtomicU64,
    maintenance_failed: AtomicU64,
    observer_failed: AtomicU64,
}

/// One queued maintenance record: the query, its observed true cardinality, and — when
/// submitted through [`ServeRuntime::record_observed`] — the estimate the runtime served
/// for it (forwarded to the [`FeedbackObserver`] after the upsert applies).
struct MaintRecord {
    query: Query,
    cardinality: u64,
    estimate: Option<f64>,
}

/// The maintenance lane's queue state (guarded by its own mutex).
struct MaintState {
    pending: VecDeque<MaintRecord>,
    /// True while the maintenance thread is applying a popped record (so `flush` waits
    /// for the in-flight upsert, not just an empty queue).
    applying: bool,
    closed: bool,
}

/// Everything both background threads and the handle share.
struct Shared<M> {
    service: Arc<EstimatorService<M>>,
    config: RuntimeConfig,
    queue: Mutex<QueueState>,
    /// Submitters → scheduler: a new request (or shutdown) arrived.
    queue_ready: Condvar,
    /// Scheduler → blocked [`submit_retrying`](ServeRuntime::submit_retrying) callers: a
    /// batch was popped, so queue depth and caller quotas freed up (also signalled at
    /// shutdown so parked submitters observe `ShuttingDown`).
    queue_space: Condvar,
    /// Scheduler → `flush`/idle waiters: the queue emptied and no batch is in flight.
    queue_idle: Condvar,
    maint: Mutex<MaintState>,
    /// Feedback producers → maintenance thread.
    maint_ready: Condvar,
    /// Maintenance thread → `flush` waiters.
    maint_idle: Condvar,
    /// The downstream feedback consumer (the online refresh controller), if any.
    feedback_observer: Mutex<Option<Arc<dyn FeedbackObserver>>>,
    counters: Counters,
    serve_stats: Mutex<ServeStats>,
}

/// The async request-queue serving runtime over an [`EstimatorService`].
///
/// See the [module docs](self) for the execution model and the crate docs for the
/// bit-parity contract.  The handle is the only owner of the background threads: dropping
/// it shuts the runtime down gracefully (drain, then join).
pub struct ServeRuntime<M: ContainmentEstimator + Send + Sync + 'static> {
    shared: Arc<Shared<M>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    maintenance: Option<std::thread::JoinHandle<()>>,
}

impl<M: ContainmentEstimator + Send + Sync + 'static> ServeRuntime<M> {
    /// Spawns the runtime (scheduler + maintenance threads) over a shared service.
    pub fn new(service: Arc<EstimatorService<M>>, config: RuntimeConfig) -> Self {
        let queue_depth = config.queue_depth.max(1);
        let config = RuntimeConfig {
            queue_depth,
            per_caller_depth: config.per_caller_depth.clamp(1, queue_depth),
            // A threshold above the queue depth could never be reached (admission caps
            // pending there), so the scheduler would always wait out the full window.
            batch_max: config.batch_max.clamp(1, queue_depth),
            batch_window: config.batch_window,
            maintenance_depth: config.maintenance_depth.max(1),
        };
        let shared = Arc::new(Shared {
            service,
            config,
            queue: Mutex::new(QueueState::new()),
            queue_ready: Condvar::new(),
            queue_space: Condvar::new(),
            queue_idle: Condvar::new(),
            maint: Mutex::new(MaintState {
                pending: VecDeque::new(),
                applying: false,
                closed: false,
            }),
            maint_ready: Condvar::new(),
            maint_idle: Condvar::new(),
            feedback_observer: Mutex::new(None),
            counters: Counters::default(),
            serve_stats: Mutex::new(ServeStats::default()),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crn-serve-scheduler".into())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler thread")
        };
        let maintenance = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crn-serve-maintenance".into())
                .spawn(move || maintenance_loop(&shared))
                .expect("spawn maintenance thread")
        };
        ServeRuntime {
            shared,
            scheduler: Some(scheduler),
            maintenance: Some(maintenance),
        }
    }

    /// The wrapped service (its pool is the one the maintenance lane refreshes).
    pub fn service(&self) -> &Arc<EstimatorService<M>> {
        &self.shared.service
    }

    /// The runtime's (normalized) configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Submits one query on behalf of `caller`, returning its completion [`Ticket`].
    ///
    /// Never blocks: a full queue (or an exhausted caller quota) sheds the submission
    /// with [`SubmitError::Overloaded`] immediately — admission control, not backpressure
    /// by stalling.  `caller` is an arbitrary fairness key (connection id, tenant, ...).
    pub fn submit(&self, caller: u64, query: Query) -> Result<Ticket, SubmitError> {
        let admitted = {
            let mut state = lock_ignoring_poison(&self.shared.queue);
            self.try_admit(&mut state, caller, query)
        };
        admitted.map(|cell| {
            self.shared.queue_ready.notify_all();
            Ticket::new(cell)
        })
    }

    /// [`submit`](ServeRuntime::submit) for closed-loop clients: when admission sheds the
    /// attempt, parks on the queue-space condvar (woken whenever the scheduler pops a
    /// batch, freeing depth and quota) and retries — no busy-spinning, and each shed
    /// attempt counts once in the rejection stats.  Returns `Err` only once the runtime
    /// is shutting down.  This is the one blocking submission shape — the load generator,
    /// the benches and the parity tests all go through it, so they measure the same
    /// client behaviour.
    pub fn submit_retrying(&self, caller: u64, query: &Query) -> Result<Ticket, SubmitError> {
        let mut state = lock_ignoring_poison(&self.shared.queue);
        loop {
            match self.try_admit(&mut state, caller, query.clone()) {
                Ok(cell) => {
                    drop(state);
                    self.shared.queue_ready.notify_all();
                    return Ok(Ticket::new(cell));
                }
                Err(SubmitError::Overloaded { .. }) => {
                    state = wait_ignoring_poison(&self.shared.queue_space, state);
                }
                Err(error @ SubmitError::ShuttingDown) => return Err(error),
            }
        }
    }

    /// The shared admission step of [`submit`](ServeRuntime::submit) and
    /// [`submit_retrying`](ServeRuntime::submit_retrying): runs admission control under
    /// the caller-held queue lock and keeps the counters.
    fn try_admit(
        &self,
        state: &mut QueueState,
        caller: u64,
        query: Query,
    ) -> Result<Arc<crate::ticket::TicketCell>, SubmitError> {
        let admitted = state.admit(
            caller,
            query,
            self.shared.config.queue_depth,
            self.shared.config.per_caller_depth,
        );
        match &admitted {
            Ok(_) => {
                self.shared
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(SubmitError::Overloaded { reason, .. }) => {
                let counter = match reason {
                    crate::queue::RejectReason::QueueFull => {
                        &self.shared.counters.rejected_queue_full
                    }
                    crate::queue::RejectReason::CallerQuota => {
                        &self.shared.counters.rejected_caller_quota
                    }
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Err(SubmitError::ShuttingDown) => {}
        }
        admitted
    }

    /// Feeds one completed query's true cardinality to the maintenance lane.
    ///
    /// The record is applied asynchronously as a single-swap
    /// [`upsert`](crn_core::ShardedPool::upsert) — new entries join the pool, stale
    /// entries get their cardinality refreshed, and in-flight snapshots are untouched.
    /// A full lane sheds the record ([`SubmitError::Overloaded`]); the next execution of
    /// the same query can resubmit it.
    pub fn record_feedback(&self, query: Query, cardinality: u64) -> Result<(), SubmitError> {
        self.enqueue_maintenance(query, cardinality, None)
    }

    /// [`record_feedback`](ServeRuntime::record_feedback) carrying the estimate the
    /// runtime served for the query: after the pool upsert applies, the full
    /// `(query, true cardinality, estimate)` triple is forwarded to the configured
    /// [`FeedbackObserver`] — the feedback channel of the online model-refresh
    /// subsystem.  Without an observer this behaves exactly like `record_feedback`.
    pub fn record_observed(
        &self,
        query: Query,
        cardinality: u64,
        estimate: f64,
    ) -> Result<(), SubmitError> {
        self.enqueue_maintenance(query, cardinality, Some(estimate))
    }

    /// Installs (or replaces) the downstream feedback consumer.  Applies to records
    /// enqueued from now on; records already in the lane keep the observer that is
    /// current when they apply.
    pub fn set_feedback_observer(&self, observer: Arc<dyn FeedbackObserver>) {
        *lock_ignoring_poison(&self.shared.feedback_observer) = Some(observer);
    }

    /// The shared admission step of both feedback shapes.
    fn enqueue_maintenance(
        &self,
        query: Query,
        cardinality: u64,
        estimate: Option<f64>,
    ) -> Result<(), SubmitError> {
        let mut state = lock_ignoring_poison(&self.shared.maint);
        if state.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if state.pending.len() >= self.shared.config.maintenance_depth {
            self.shared
                .counters
                .maintenance_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                reason: crate::queue::RejectReason::QueueFull,
                pending: state.pending.len(),
            });
        }
        state.pending.push_back(MaintRecord {
            query,
            cardinality,
            estimate,
        });
        drop(state);
        self.shared.maint_ready.notify_all();
        Ok(())
    }

    /// Blocks until both lanes are quiescent: no queued or in-flight request, no queued
    /// or in-flight maintenance record.  (A quiesce point for tests and drivers; new
    /// submissions may race in after it returns.)
    pub fn flush(&self) {
        {
            let mut state = lock_ignoring_poison(&self.shared.queue);
            while !(state.pending.is_empty() && state.in_flight == 0) {
                state = wait_ignoring_poison(&self.shared.queue_idle, state);
            }
        }
        {
            let mut state = lock_ignoring_poison(&self.shared.maint);
            while !state.pending.is_empty() || state.applying {
                state = wait_ignoring_poison(&self.shared.maint_idle, state);
            }
        }
    }

    /// A point-in-time snapshot of the runtime's counters and accumulated serving stats.
    pub fn stats(&self) -> RuntimeStats {
        let counters = &self.shared.counters;
        RuntimeStats {
            submitted: counters.submitted.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            rejected_queue_full: counters.rejected_queue_full.load(Ordering::Relaxed),
            rejected_caller_quota: counters.rejected_caller_quota.load(Ordering::Relaxed),
            batches: counters.batches.load(Ordering::Relaxed),
            size_closes: counters.size_closes.load(Ordering::Relaxed),
            window_closes: counters.window_closes.load(Ordering::Relaxed),
            drain_closes: counters.drain_closes.load(Ordering::Relaxed),
            max_batch: counters.max_batch.load(Ordering::Relaxed) as u64,
            coalesced: counters.coalesced.load(Ordering::Relaxed),
            maintenance_applied: counters.maintenance_applied.load(Ordering::Relaxed),
            maintenance_rejected: counters.maintenance_rejected.load(Ordering::Relaxed),
            maintenance_failed: counters.maintenance_failed.load(Ordering::Relaxed),
            observer_failed: counters.observer_failed.load(Ordering::Relaxed),
            serve: lock_ignoring_poison(&self.shared.serve_stats).clone(),
        }
    }

    /// Initiates the graceful drain without blocking: admission stops on both lanes
    /// ([`SubmitError::ShuttingDown`] from here on), while already-admitted requests and
    /// feedback records still execute.  Callers keep polling/waiting their tickets;
    /// [`ServeRuntime::shutdown`] (or drop) completes the drain and joins the threads.
    pub fn begin_shutdown(&self) {
        {
            let mut state = lock_ignoring_poison(&self.shared.queue);
            state.closed = true;
        }
        self.shared.queue_ready.notify_all();
        // Parked blocking submitters must wake to observe `ShuttingDown`.
        self.shared.queue_space.notify_all();
        {
            let mut state = lock_ignoring_poison(&self.shared.maint);
            state.closed = true;
        }
        self.shared.maint_ready.notify_all();
    }

    /// Graceful shutdown: stops admission, drains both queues (every admitted ticket
    /// resolves, every accepted feedback record applies), joins both threads and returns
    /// the final stats.  Dropping the runtime does the same minus the stats.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.scheduler.take() {
            handle.join().expect("scheduler thread exits cleanly");
        }
        if let Some(handle) = self.maintenance.take() {
            handle.join().expect("maintenance thread exits cleanly");
        }
    }
}

impl<M: ContainmentEstimator + Send + Sync + 'static> Drop for ServeRuntime<M> {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl<M: ContainmentEstimator + Send + Sync + 'static> std::fmt::Debug for ServeRuntime<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRuntime")
            .field("service", &self.shared.service.name())
            .field("config", &self.shared.config)
            .finish()
    }
}

/// The scheduler: forms batches off the submission queue and executes them.
fn scheduler_loop<M: ContainmentEstimator + Send + Sync>(shared: &Shared<M>) {
    loop {
        // Phase 1 — wait for the batch-opening request (or shutdown with an empty queue).
        let mut state = lock_ignoring_poison(&shared.queue);
        loop {
            if !state.pending.is_empty() {
                break;
            }
            if state.closed {
                shared.queue_idle.notify_all();
                return;
            }
            state = wait_ignoring_poison(&shared.queue_ready, state);
        }

        // Phase 2 — hold the batch open until the size threshold, the window deadline
        // (measured from the oldest pending request) or shutdown closes it.
        let opened = state.pending.front().expect("non-empty").enqueued;
        let deadline = opened + shared.config.batch_window;
        while state.pending.len() < shared.config.batch_max && !state.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _timed_out) =
                wait_timeout_ignoring_poison(&shared.queue_ready, state, deadline - now);
            state = next;
        }
        let reason = if state.pending.len() >= shared.config.batch_max {
            CloseReason::Size
        } else if state.closed {
            CloseReason::Drain
        } else {
            CloseReason::Window
        };
        let batch = state.pop_batch(shared.config.batch_max);
        drop(state);
        // The pop freed queue depth and caller quotas: wake parked blocking submitters.
        shared.queue_space.notify_all();

        // Phase 3 — execute the whole batch as ONE service call: this is where
        // cross-call traffic fuses into the service's multi-query head batches.
        // Duplicate in-window queries (same canonical query hash, equality-checked
        // against collisions) are coalesced into a single computed row whose estimate
        // fans out to every duplicate's ticket — per-query results are independent of
        // batch composition (the service's bit-parity contract), so a duplicate's answer
        // is exactly what its own row would have computed.
        let closed_at = Instant::now();
        let batch_size = batch.len();
        let mut tickets = Vec::with_capacity(batch_size);
        let mut waits = Vec::with_capacity(batch_size);
        let mut unique: Vec<Query> = Vec::with_capacity(batch_size);
        let mut slots: Vec<usize> = Vec::with_capacity(batch_size);
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::with_capacity(batch_size);
        for request in batch {
            let candidates = by_hash.entry(query_hash(&request.query)).or_default();
            let slot = match candidates
                .iter()
                .copied()
                .find(|&slot| unique[slot] == request.query)
            {
                Some(slot) => slot,
                None => {
                    let slot = unique.len();
                    unique.push(request.query);
                    candidates.push(slot);
                    slot
                }
            };
            slots.push(slot);
            tickets.push(request.ticket);
            waits.push(closed_at.saturating_duration_since(request.enqueued));
        }
        let coalesced = batch_size - unique.len();
        // The worker pool propagates shard panics to its submitter — here, this thread.
        // Contain them: a panicked batch must neither strand its waiters (they re-raise
        // through their tickets) nor kill the scheduler (later batches still serve).
        let response = catch_unwind(AssertUnwindSafe(|| shared.service.serve(&unique)));

        // Phase 4 — bookkeeping, then resolve every ticket.
        let counters = &shared.counters;
        let batch_seq = counters.batches.fetch_add(1, Ordering::Relaxed);
        match reason {
            CloseReason::Size => counters.size_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Window => counters.window_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Drain => counters.drain_closes.fetch_add(1, Ordering::Relaxed),
        };
        counters.max_batch.fetch_max(batch_size, Ordering::Relaxed);
        counters
            .coalesced
            .fetch_add(coalesced as u64, Ordering::Relaxed);
        match response {
            Ok(response) => {
                debug_assert_eq!(response.estimates.len(), unique.len());
                counters
                    .completed
                    .fetch_add(batch_size as u64, Ordering::Relaxed);
                lock_ignoring_poison(&shared.serve_stats).accumulate(&response.stats);
                for ((ticket, &slot), queue_wait) in tickets.iter().zip(&slots).zip(waits) {
                    ticket.complete(TicketOutcome {
                        estimate: response.estimates[slot],
                        batch_size,
                        batch_seq,
                        queue_wait,
                    });
                }
            }
            Err(_panic) => {
                counters
                    .failed
                    .fetch_add(batch_size as u64, Ordering::Relaxed);
                for ticket in &tickets {
                    ticket.fail();
                }
            }
        }

        // Phase 5 — retire the batch; wake `flush` when fully idle.
        let mut state = lock_ignoring_poison(&shared.queue);
        state.in_flight -= batch_size;
        if state.pending.is_empty() && state.in_flight == 0 {
            shared.queue_idle.notify_all();
        }
    }
}

/// The maintenance lane: applies feedback records to the pool, one single-swap upsert at
/// a time, concurrently with serving.
fn maintenance_loop<M: ContainmentEstimator + Send + Sync>(shared: &Shared<M>) {
    loop {
        let record = {
            let mut state = lock_ignoring_poison(&shared.maint);
            loop {
                if let Some(record) = state.pending.pop_front() {
                    state.applying = true;
                    break record;
                }
                if state.closed {
                    shared.maint_idle.notify_all();
                    return;
                }
                state = wait_ignoring_poison(&shared.maint_ready, state);
            }
        };
        // Same containment as the scheduler: a panicking upsert must not wedge `flush`
        // (the `applying` flag below) or kill the lane for later records.
        let applied = catch_unwind(AssertUnwindSafe(|| {
            shared
                .service
                .pool()
                .upsert(record.query.clone(), record.cardinality);
        }));
        let counter = match &applied {
            Ok(_) => &shared.counters.maintenance_applied,
            Err(_panic) => &shared.counters.maintenance_failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // Forward the applied triple to the online feedback channel, if one is
        // listening.  After the upsert (an observer reacting to the record — e.g. by
        // reading the pool — must see the refreshed entry), and contained separately:
        // an observer panic must neither kill the lane nor mislabel the (successful)
        // upsert as a maintenance failure.
        if applied.is_ok() {
            if let Some(estimate) = record.estimate {
                let observer = lock_ignoring_poison(&shared.feedback_observer).clone();
                if let Some(observer) = observer {
                    let observed = catch_unwind(AssertUnwindSafe(|| {
                        observer.observe(&record.query, record.cardinality, estimate);
                    }));
                    if observed.is_err() {
                        shared
                            .counters
                            .observer_failed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let mut state = lock_ignoring_poison(&shared.maint);
        state.applying = false;
        if state.pending.is_empty() {
            shared.maint_idle.notify_all();
        }
    }
}
