//! The serving runtime: batch-forming scheduler, admission front door, maintenance lane —
//! now supervised, deadline-aware and checkpoint-capable.
//!
//! One [`ServeRuntime`] owns two background threads:
//!
//! * the **scheduler** parks on the submission queue, opens a batch when the first
//!   request arrives, and closes it when either the size threshold
//!   ([`RuntimeConfig::batch_max`]) is reached or the batching window
//!   ([`RuntimeConfig::batch_window`]) measured from that first request expires — then
//!   sheds queued requests whose deadline passed (their tickets resolve
//!   [`Expired`](crate::TicketError::Expired)) and executes the batch as **one**
//!   [`EstimatorService::serve`] call (so cross-call traffic fuses into the same
//!   multi-query head batches a single synchronous caller would get) and resolves the
//!   tickets.  A panicked batch resolves its tickets through the service's degraded
//!   fallback path, tagged [`Degraded`](crate::EstimateSource::Degraded) — never a hang,
//!   never a silent wrong answer;
//! * the **maintenance lane** drains the feedback queue of `(query, true cardinality)`
//!   records and applies each one to the pool as a single-swap copy-on-write
//!   [`upsert`](crn_core::ShardedPool::upsert) — the paper's §5.2 pool-refresh loop,
//!   running concurrently with serving and never blocking snapshot readers.  On a
//!   configurable cadence ([`RuntimeConfig::checkpoint_every`]) it invokes the installed
//!   [`CheckpointWriter`] — the crash-safe persistence hook `crn-online` implements.
//!
//! Both threads run under the [`Supervisor`]: a panic that escapes the per-batch /
//! per-upsert containment restarts the thread **with its queues intact** (all lane state
//! lives in the shared block), up to the restart budget; past the budget the scheduler
//! degrades to synchronous serving on the submitting thread (visible in
//! [`RuntimeStats::degraded_sync_mode`]) and the maintenance lane starts shedding —
//! reduced service, loudly reported, instead of a dead runtime.  The deterministic
//! [`FaultInjector`] drives exactly these paths in the chaos suite.
//!
//! Shutdown is graceful: [`ServeRuntime::shutdown`] (or drop) stops admission, drains
//! both queues — every admitted ticket resolves, every accepted feedback record applies —
//! and joins both threads.

use crate::backend::ComputeBackend;
use crate::cache::EstimateCache;
use crate::fault::{FaultInjector, FaultSite};
use crate::queue::{QueueState, SloClass, SubmitError};
use crate::supervisor::{
    Supervisor, SupervisorPolicy, SupervisorVerdict, LANE_MAINTENANCE, LANE_SCHEDULER,
};
use crate::ticket::{EstimateSource, Ticket, TicketCell, TicketOutcome};
use crn_core::{query_hash, ServeResponse, ServeStats};
use crn_nn::parallel::{lock_ignoring_poison, wait_ignoring_poison, wait_timeout_ignoring_poison};
use crn_obs::{Counter, Event, Gauge, HistHandle, Obs, RequestTrace, TraceStart};
use crn_query::ast::Query;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Downstream consumer of the maintenance lane's observed feedback — the channel the
/// online model-refresh subsystem (`crn-online`) listens on.
///
/// The maintenance thread calls [`observe`](FeedbackObserver::observe) for every record
/// submitted through [`ServeRuntime::record_observed`] *after* its pool upsert applied,
/// so an observer sees exactly the `(query, true cardinality, estimate)` triples that
/// reached the pool, in application order.  Observers run on the maintenance thread:
/// keep `observe` cheap (enqueue-and-return) — a slow observer stalls pool refreshes,
/// never serving.  A panicking observer is contained separately from the (already
/// applied) upsert: counted in [`RuntimeStats::observer_failed`], the lane keeps
/// draining.
pub trait FeedbackObserver: Send + Sync {
    /// One applied feedback record: the executed query, its true cardinality, and the
    /// estimate the runtime served for it (what the drift detector compares).
    fn observe(&self, query: &Query, true_cardinality: u64, estimate: f64);
}

/// The crash-safe persistence hook the maintenance lane invokes on its checkpoint
/// cadence ([`RuntimeConfig::checkpoint_every`]).
///
/// Defined here (not in `crn-online`, which implements it over the service + refresh
/// controller) so the runtime stays model-refresh-agnostic.  Implementations must write
/// **atomically** (temp-file + rename with a manifest — `crn_online::Checkpoint` is the
/// canonical one): the lane treats any `Err` or panic as a failed write, counts it in
/// [`RuntimeStats::checkpoints_failed`] and simply retries after the next interval —
/// a checkpoint failure must never take serving down with it.
pub trait CheckpointWriter: Send + Sync {
    /// Captures and durably writes one checkpoint; `Err(reason)` marks the attempt
    /// failed.
    fn write_checkpoint(&self) -> Result<(), String>;
}

/// Configuration of one [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Bound on *queued* (admitted, not yet batched) requests; submissions against a full
    /// queue are shed with [`SubmitError::Overloaded`].  Depth 1 degenerates to
    /// one-request batches — the useful floor for parity testing.
    pub queue_depth: usize,
    /// Per-caller fairness quota: one caller's share of `queue_depth`.  A flooding caller
    /// is shed at this bound while other callers' submissions stay admissible.
    pub per_caller_depth: usize,
    /// Size threshold closing a batch: the scheduler stops waiting as soon as this many
    /// requests are pending.  Normalized to at most `queue_depth` — admission caps the
    /// pending count there, so a larger threshold could never be met and waiting out the
    /// window for it would be pure dead latency.
    pub batch_max: usize,
    /// Time window closing a batch: measured from the *oldest* pending request, so no
    /// admitted request waits in the queue longer than this before its batch executes
    /// (zero serves whatever has accumulated the moment the scheduler wakes).
    pub batch_window: Duration,
    /// Bound on queued maintenance records; feedback against a full lane is shed (serving
    /// traffic is never displaced by maintenance).
    pub maintenance_depth: usize,
    /// Deadline attached to every [`submit`](ServeRuntime::submit) /
    /// [`submit_retrying`](ServeRuntime::submit_retrying) request that does not carry
    /// its own: a request still queued this long after submission is shed unexecuted
    /// and its ticket resolves [`Expired`](crate::TicketError::Expired).  `None` (the
    /// default) = requests wait as long as the queue holds them.
    pub default_deadline: Option<Duration>,
    /// Restart budget of the supervised lanes (scheduler, maintenance — and the refresh
    /// worker, when `crn-online` shares this runtime's supervisor).
    pub restart_policy: SupervisorPolicy,
    /// Checkpoint cadence: invoke the installed [`CheckpointWriter`] after every this
    /// many *applied* maintenance records.  0 (the default) disables checkpointing.
    pub checkpoint_every: u64,
    /// Background pool-compaction cadence: run [`ComputeBackend::compact`] on the
    /// maintenance lane after every this many *applied* feedback records — structural
    /// dedup keeping the highest-retention anchor per shape, not only post-model-swap.
    /// 0 (the default) disables periodic compaction.
    pub compact_every: u64,
    /// Per-class batching windows, indexed by [`SloClass::index`]; `None` inherits
    /// [`batch_window`](RuntimeConfig::batch_window).  Defaults: `Interactive` inherits
    /// (≈ 100µs — latency first), `Batch` gets 2ms (fusion first).  Unregistered callers
    /// are `Interactive`, so a runtime that never registers a `Batch` caller behaves
    /// exactly like the single-window runtime.
    pub class_windows: [Option<Duration>; SloClass::COUNT],
    /// Per-class admission weights, indexed by [`SloClass::index`]: class `c` may hold
    /// at most `ceil(queue_depth · wᶜ / Σw)` pending requests (at least 1), so a class
    /// with weight `w` out of `Σw` can never occupy the other classes' shares — with
    /// weights `[3, 1]`, batch/replay floods cap at a quarter of the queue and
    /// interactive callers always find the rest admissible: the starvation guarantee.
    /// All-zero (the default) disables class shares entirely — every class may use the
    /// full depth, exactly the pre-class admission behaviour.
    pub class_weights: [u32; SloClass::COUNT],
    /// Bound on the cross-window estimate cache ([`crate::cache`]): total resident
    /// entries.  Size it at ~2–4× the hot repeated working set.  0 (the default)
    /// disables the cache and restores the uncached runtime behaviour exactly —
    /// every batch enters the compute path.
    pub cache_entries: usize,
    /// Per-class default deadlines, indexed by [`SloClass::index`]; `None` inherits
    /// [`default_deadline`](RuntimeConfig::default_deadline).  Lets `Batch` traffic run
    /// with a looser staleness bound than `Interactive` — a replay pipeline tolerates
    /// seconds of queueing that would make an optimizer's estimate worthless.  Both
    /// `None` by default, so plain configurations keep the single-deadline behaviour.
    pub class_deadlines: [Option<Duration>; SloClass::COUNT],
    /// The observability handle ([`crn_obs::Obs`]) the runtime records into: per-class
    /// latency histograms, per-request spans carried on [`TicketOutcome`], and the
    /// structured event journal.  The default is [`Obs::disabled`] — the scheduler then
    /// takes the exact pre-observability code path (no clock reads, no allocations, no
    /// atomics beyond the existing counters).
    pub obs: Obs,
}

impl Default for RuntimeConfig {
    /// Defaults matching the CI smoke: depth 64, no per-caller cap beyond the depth,
    /// batches of at most 32 closing after 100µs, maintenance lane of 1024, no request
    /// deadline, 3 restarts / 60 s supervision budget, checkpointing off, class shares
    /// off (batch-class window 2ms when a batch caller registers), estimate cache off.
    fn default() -> Self {
        RuntimeConfig {
            queue_depth: 64,
            per_caller_depth: 64,
            batch_max: 32,
            batch_window: Duration::from_micros(100),
            maintenance_depth: 1024,
            default_deadline: None,
            restart_policy: SupervisorPolicy::default(),
            checkpoint_every: 0,
            compact_every: 0,
            class_windows: [None, Some(Duration::from_millis(2))],
            class_weights: [0; SloClass::COUNT],
            cache_entries: 0,
            class_deadlines: [None; SloClass::COUNT],
            obs: Obs::disabled(),
        }
    }
}

impl RuntimeConfig {
    /// Sets the batching window from microseconds (the `--batch-window-us` CLI unit).
    pub fn with_window_us(mut self, micros: u64) -> Self {
        self.batch_window = Duration::from_micros(micros);
        self
    }

    /// Sets the queue depth (and caps the per-caller quota at it).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self.per_caller_depth = self.per_caller_depth.min(self.queue_depth);
        self
    }

    /// Sets the per-caller fairness quota.
    pub fn with_per_caller_depth(mut self, depth: usize) -> Self {
        self.per_caller_depth = depth.max(1);
        self
    }

    /// Sets the batch size threshold.
    pub fn with_batch_max(mut self, max: usize) -> Self {
        self.batch_max = max.max(1);
        self
    }

    /// Sets the default per-request deadline (see
    /// [`default_deadline`](RuntimeConfig::default_deadline)).
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Sets the default per-request deadline from microseconds (the `--deadline-us` CLI
    /// unit).
    pub fn with_deadline_us(mut self, micros: u64) -> Self {
        self.default_deadline = Some(Duration::from_micros(micros));
        self
    }

    /// Sets the supervision restart budget.
    pub fn with_restart_policy(mut self, policy: SupervisorPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Sets the checkpoint cadence in applied maintenance records (0 disables).
    pub fn with_checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }

    /// Sets the background pool-compaction cadence in applied maintenance records
    /// (the `--compact-every` CLI unit; 0 disables).
    pub fn with_compact_every(mut self, records: u64) -> Self {
        self.compact_every = records;
        self
    }

    /// Sets one class's batching window from microseconds (the `--class-window-us` CLI
    /// unit); 0 makes the class inherit [`batch_window`](RuntimeConfig::batch_window).
    pub fn with_class_window_us(mut self, class: SloClass, micros: u64) -> Self {
        self.class_windows[class.index()] = if micros == 0 {
            None
        } else {
            Some(Duration::from_micros(micros))
        };
        self
    }

    /// Sets the per-class admission weights (see
    /// [`class_weights`](RuntimeConfig::class_weights); all-zero disables class shares).
    pub fn with_class_weights(mut self, weights: [u32; SloClass::COUNT]) -> Self {
        self.class_weights = weights;
        self
    }

    /// Sets the estimate-cache bound in entries (0 disables the cache).
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }

    /// Sets one class's default request deadline from microseconds (the
    /// `--class-deadline-us` CLI unit); 0 makes the class inherit
    /// [`default_deadline`](RuntimeConfig::default_deadline).
    pub fn with_class_deadline_us(mut self, class: SloClass, micros: u64) -> Self {
        self.class_deadlines[class.index()] = if micros == 0 {
            None
        } else {
            Some(Duration::from_micros(micros))
        };
        self
    }

    /// Installs the observability handle (see [`RuntimeConfig::obs`]); pass an enabled
    /// [`Obs`] to turn on metrics, spans and the event journal for this runtime.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// One class's effective default deadline: its own, or the base
    /// [`default_deadline`](RuntimeConfig::default_deadline) when unset (which may
    /// itself be `None` — wait indefinitely).
    pub fn class_deadline(&self, class: SloClass) -> Option<Duration> {
        self.class_deadlines[class.index()].or(self.default_deadline)
    }

    /// One class's effective batching window: its own, or the base
    /// [`batch_window`](RuntimeConfig::batch_window) when unset.
    pub fn class_window(&self, class: SloClass) -> Duration {
        self.class_windows[class.index()].unwrap_or(self.batch_window)
    }

    /// One class's weighted share of the queue depth: `ceil(queue_depth · wᶜ / Σw)`,
    /// at least 1 — or the full depth when every weight is zero (shares disabled).
    pub fn class_share(&self, class: SloClass) -> usize {
        let total: u64 = self.class_weights.iter().map(|&w| u64::from(w)).sum();
        if total == 0 {
            return self.queue_depth;
        }
        let weight = u64::from(self.class_weights[class.index()]);
        let share = (self.queue_depth as u64 * weight).div_ceil(total);
        (share.max(1) as usize).min(self.queue_depth)
    }
}

/// Why the scheduler closed a batch (counted in [`RuntimeStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// `batch_max` pending requests accumulated before the window expired.
    Size,
    /// The window expired with fewer than `batch_max` pending.
    Window,
    /// Shutdown drain: the queue is being emptied without waiting for windows.
    Drain,
}

impl CloseReason {
    /// Stable journal/event label.
    fn label(self) -> &'static str {
        match self {
            CloseReason::Size => "size",
            CloseReason::Window => "window",
            CloseReason::Drain => "drain",
        }
    }
}

/// Monotonic counters describing a runtime's lifetime (snapshot via
/// [`ServeRuntime::stats`]).
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Requests admitted by the submission queue (including degraded-sync submissions).
    pub submitted: u64,
    /// Requests whose tickets resolved with a full-path
    /// ([`Computed`](crate::EstimateSource::Computed)) estimate.
    pub completed: u64,
    /// Requests resolved through the degraded fallback path after their batch panicked
    /// ([`Degraded`](crate::EstimateSource::Degraded) provenance) — answered, but not by
    /// the model.
    pub degraded: u64,
    /// Requests shed unexecuted because their deadline passed while queued (tickets
    /// resolve [`Expired`](crate::TicketError::Expired)).
    pub expired: u64,
    /// Requests whose batch panicked *and* whose degraded fallback panicked too (tickets
    /// resolve [`BatchFailed`](crate::TicketError::BatchFailed); the runtime survives).
    pub failed: u64,
    /// Submissions shed because the queue was at depth.
    pub rejected_queue_full: u64,
    /// Submissions shed by the per-caller fairness quota.
    pub rejected_caller_quota: u64,
    /// Submissions shed because the caller's [`SloClass`] was at its weighted share of
    /// the queue depth (see [`RuntimeConfig::class_weights`]).
    pub rejected_class_share: u64,
    /// Batches closed (every close counts, including batches the estimate cache
    /// resolved entirely without a service call).
    pub batches: u64,
    /// Batches closed by the size threshold.
    pub size_closes: u64,
    /// Batches closed by the expired window.
    pub window_closes: u64,
    /// Batches closed by the shutdown drain.
    pub drain_closes: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Requests answered from another in-window request's computed row: duplicate
    /// queries inside one batch (by canonical query hash) are coalesced into a single
    /// served row fanned out to every duplicate's ticket.
    pub coalesced: u64,
    /// Estimate-cache probes that hit (one probe per coalesced unique query per closed
    /// batch; the hit's estimate fans out to every duplicate's ticket).  With no
    /// degraded/failed traffic the accounting closes exactly:
    /// `serve.queries + coalesced + cache_hits == completed`.
    pub cache_hits: u64,
    /// Estimate-cache probes that missed (the query then entered the compute path and
    /// its result was filed back into the cache).  0 whenever the cache is disabled —
    /// `cache_entries: 0` takes the exact pre-cache path.
    pub cache_misses: u64,
    /// Estimates filed into the cache (one per computed unique query of a cache-enabled
    /// batch; degraded results are never cached).
    pub cache_insertions: u64,
    /// Cache fills that displaced a least-recently-used entry (the bound at work).
    pub cache_evictions: u64,
    /// Stale-generation cache entries proactively purged on observed `(pool, model)`
    /// version movement (see [`crate::EstimateCache::purge_stale`]) — without this they
    /// would only age out of the LRU, wasting capacity.
    pub cache_purged: u64,
    /// Requests served synchronously on the submitting thread because the scheduler
    /// lane breached its restart budget (see
    /// [`degraded_sync_mode`](RuntimeStats::degraded_sync_mode)).
    pub sync_served: u64,
    /// Maintenance records applied to the pool.
    pub maintenance_applied: u64,
    /// Maintenance records shed because the lane was at depth (or down).
    pub maintenance_rejected: u64,
    /// Maintenance records whose upsert panicked (contained; the lane keeps draining),
    /// or that were lost to a maintenance-thread kill / budget-breach drain.
    pub maintenance_failed: u64,
    /// Applied records whose [`FeedbackObserver`] panicked (contained separately: the
    /// upsert itself succeeded and stays counted in `maintenance_applied`).
    pub observer_failed: u64,
    /// Applied observed-feedback records whose served-estimate q-error was folded into
    /// the pool anchor's retention weight
    /// ([`record_feedback`](crn_core::ShardedPool::record_feedback)) — the signal the
    /// bounded-capacity pool's eviction ranks by.
    pub retention_updates: u64,
    /// Anchors the bounded-capacity pool evicted so far
    /// ([`ShardedPool::evictions`](crn_core::ShardedPool::evictions); 0 in unbounded
    /// mode).
    pub pool_evictions: u64,
    /// Background pool compactions the maintenance lane ran (see
    /// [`RuntimeConfig::compact_every`]; 0 when periodic compaction is disabled).
    pub compactions: u64,
    /// Requests currently queued (admitted, not yet popped into a batch) per
    /// [`SloClass`], indexed by [`SloClass::index`] — a point-in-time gauge, unlike the
    /// monotonic counters around it.
    pub queued_by_class: [u64; SloClass::COUNT],
    /// Scheduler-thread restarts the supervisor granted (panics that escaped batch
    /// containment and came back up with the queue intact).
    pub scheduler_restarts: u64,
    /// Maintenance-thread restarts the supervisor granted.
    pub maintenance_restarts: u64,
    /// True once the scheduler lane breached its restart budget: the runtime now serves
    /// every submission synchronously on the submitting thread — reduced service, said
    /// out loud.
    pub degraded_sync_mode: bool,
    /// True once the maintenance lane breached its restart budget: feedback records are
    /// shed from here on.
    pub maintenance_down: bool,
    /// Checkpoints the maintenance lane wrote successfully through the installed
    /// [`CheckpointWriter`].
    pub checkpoints_written: u64,
    /// Checkpoint attempts that failed (writer error, writer panic, or an injected
    /// [`CheckpointWrite`](crate::FaultSite::CheckpointWrite) fault) — retried after the
    /// next interval.
    pub checkpoints_failed: u64,
    /// Faults the [`FaultInjector`] fired so far (0 outside chaos runs).
    pub faults_injected: u64,
    /// The accumulated per-layer serving stats over every executed batch
    /// (see [`ServeStats::accumulate`]).
    pub serve: ServeStats,
}

impl RuntimeStats {
    /// Mean executed batch size (0 when no batch ran) — the cross-call fusion factor.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// The chaos suite's headline invariant, checkable at quiescence: every admitted
    /// request resolved one way or another — completed, degraded, expired or failed.
    /// (Cache-replayed requests count in `completed`: they are full-fidelity answers.)
    pub fn fully_resolved(&self) -> bool {
        self.submitted == self.completed + self.degraded + self.expired + self.failed
    }

    /// Estimate-cache hit rate over all probes (0 when the cache never probed — i.e.
    /// disabled or no batch closed yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Every counter, gauge and mode flag of this snapshot as `(name, value)` pairs —
    /// the **complete** enumeration the end-of-run summary prints from, so no counter
    /// can silently fall out of reporting.  Booleans render as 0/1; the per-class
    /// queue gauge expands to one entry per [`SloClass`].  The nested
    /// [`serve`](RuntimeStats::serve) stats are excluded (they have their own
    /// [`render`](ServeStats::render)); the field-coverage test enforces that every
    /// *other* field of this struct appears here, so adding a counter without extending
    /// this list fails the build's tests.
    pub fn counter_fields(&self) -> Vec<(&'static str, u64)> {
        let mut fields = vec![
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("degraded", self.degraded),
            ("expired", self.expired),
            ("failed", self.failed),
            ("rejected_queue_full", self.rejected_queue_full),
            ("rejected_caller_quota", self.rejected_caller_quota),
            ("rejected_class_share", self.rejected_class_share),
            ("batches", self.batches),
            ("size_closes", self.size_closes),
            ("window_closes", self.window_closes),
            ("drain_closes", self.drain_closes),
            ("max_batch", self.max_batch),
            ("coalesced", self.coalesced),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_insertions", self.cache_insertions),
            ("cache_evictions", self.cache_evictions),
            ("cache_purged", self.cache_purged),
            ("sync_served", self.sync_served),
            ("maintenance_applied", self.maintenance_applied),
            ("maintenance_rejected", self.maintenance_rejected),
            ("maintenance_failed", self.maintenance_failed),
            ("observer_failed", self.observer_failed),
            ("retention_updates", self.retention_updates),
            ("pool_evictions", self.pool_evictions),
            ("compactions", self.compactions),
            ("scheduler_restarts", self.scheduler_restarts),
            ("maintenance_restarts", self.maintenance_restarts),
            ("degraded_sync_mode", self.degraded_sync_mode as u64),
            ("maintenance_down", self.maintenance_down as u64),
            ("checkpoints_written", self.checkpoints_written),
            ("checkpoints_failed", self.checkpoints_failed),
            ("faults_injected", self.faults_injected),
        ];
        for class in SloClass::ALL {
            fields.push((
                match class {
                    SloClass::Interactive => "queued_by_class.interactive",
                    SloClass::Batch => "queued_by_class.batch",
                },
                self.queued_by_class[class.index()],
            ));
        }
        fields
    }
}

/// Lock-free counter block (the scheduler and submitters bump these without the queue
/// mutex; `stats` snapshots them).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_caller_quota: AtomicU64,
    rejected_class_share: AtomicU64,
    batches: AtomicU64,
    size_closes: AtomicU64,
    window_closes: AtomicU64,
    drain_closes: AtomicU64,
    max_batch: AtomicUsize,
    coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_insertions: AtomicU64,
    cache_evictions: AtomicU64,
    cache_purged: AtomicU64,
    retention_updates: AtomicU64,
    sync_served: AtomicU64,
    maintenance_applied: AtomicU64,
    maintenance_rejected: AtomicU64,
    maintenance_failed: AtomicU64,
    observer_failed: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoints_failed: AtomicU64,
    compactions: AtomicU64,
}

/// The runtime's pre-registered observability handles: one registry lookup each at
/// construction, so the scheduler's hot path never touches the registry mutex.  Every
/// handle is a no-op when the configured [`Obs`] is disabled; `enabled` is hoisted so
/// the scheduler can skip whole instrumentation blocks (clock reads, trace vectors)
/// with a single branch — the disabled path is the exact pre-observability path.
struct ObsHooks {
    obs: Obs,
    enabled: bool,
    /// End-to-end served latency per [`SloClass`] (submit → resolution, µs).
    latency_us: [HistHandle; SloClass::COUNT],
    /// Queue residency per request (submit → batch close, µs).
    queue_wait_us: HistHandle,
    /// Closed-batch sizes.
    batch_size: HistHandle,
    /// Counter mirrors for the live JSONL export (the authoritative numbers stay in
    /// [`Counters`]; these exist so an exporter holding only the [`Obs`] sees them).
    completed: Counter,
    batches: Counter,
    coalesced: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    expired: Counter,
    degraded: Counter,
    /// Live queue-depth gauge per class, sampled at batch close.
    queued_gauge: [Gauge; SloClass::COUNT],
    /// Pool evictions already journaled (delta detection; only touched when enabled).
    journaled_pool_evictions: AtomicU64,
}

impl ObsHooks {
    fn new(obs: Obs) -> Self {
        let enabled = obs.enabled();
        ObsHooks {
            enabled,
            latency_us: [
                obs.hist("serve.latency_us.interactive"),
                obs.hist("serve.latency_us.batch"),
            ],
            queue_wait_us: obs.hist("serve.queue_wait_us"),
            batch_size: obs.hist("serve.batch_size"),
            completed: obs.counter("serve.completed"),
            batches: obs.counter("serve.batches"),
            coalesced: obs.counter("serve.coalesced"),
            cache_hits: obs.counter("serve.cache_hits"),
            cache_misses: obs.counter("serve.cache_misses"),
            expired: obs.counter("serve.expired"),
            degraded: obs.counter("serve.degraded"),
            queued_gauge: [
                obs.gauge("serve.queued.interactive"),
                obs.gauge("serve.queued.batch"),
            ],
            journaled_pool_evictions: AtomicU64::new(0),
            obs,
        }
    }

    /// Records one request's end-to-end latency (submit → resolution, on the obs clock)
    /// into its class histogram.  No-op for requests admitted before obs was minted a
    /// trace (never happens in practice — the runtime owns both).
    fn record_latency(&self, class: SloClass, start: Option<TraceStart>, resolved_us: u64) {
        if let Some(start) = start {
            self.latency_us[class.index()].record(resolved_us.saturating_sub(start.submitted_us));
        }
    }
}

/// Builds a resolved request's span from its submission trace and the batch-level
/// segment timings.  Queue wait is exact per request; the remaining segments are
/// batch-level attributions (every request in a batch shares its close, probe, compute
/// and merge phases — that sharing is the point of batching).
fn finish_trace(
    start: Option<TraceStart>,
    queue_wait: Duration,
    batch_wait_us: u64,
    cache_probe_us: u64,
    shard_compute_us: u64,
    merge_us: u64,
) -> Option<RequestTrace> {
    start.map(|start| RequestTrace {
        trace_id: start.id,
        queue_wait_us: queue_wait.as_micros() as u64,
        batch_wait_us,
        cache_probe_us,
        shard_compute_us,
        merge_us,
    })
}

/// One queued maintenance record: the query, its observed true cardinality, and — when
/// submitted through [`ServeRuntime::record_observed`] — the estimate the runtime served
/// for it (forwarded to the [`FeedbackObserver`] after the upsert applies).
struct MaintRecord {
    query: Query,
    cardinality: u64,
    estimate: Option<f64>,
}

/// The maintenance lane's queue state (guarded by its own mutex).
struct MaintState {
    pending: VecDeque<MaintRecord>,
    /// True while the maintenance thread is applying a popped record (so `flush` waits
    /// for the in-flight upsert, not just an empty queue).
    applying: bool,
    closed: bool,
    /// Set when the lane breached its restart budget: records are shed from here on.
    dead: bool,
}

/// The batch the scheduler is currently executing, parked in a shared slot so the
/// supervisor's recovery hook can resolve its tickets if the scheduler thread dies
/// mid-batch (nothing admitted may ever hang).
struct InflightBatch {
    tickets: Vec<Arc<TicketCell>>,
    slots: Vec<usize>,
    unique: Vec<Query>,
    size: usize,
}

/// Handoff cell between the maintenance lane and the checkpoint helper thread.  The
/// lane only flips `requested` (cheap, never blocks on IO); the helper does the actual
/// [`CheckpointWriter`] call off the critical path.  Requests coalesce: a cadence hit
/// while a write is already pending or in flight folds into that write's successor.
struct CkptState {
    /// A checkpoint is due and not yet picked up by the helper.
    requested: bool,
    /// The helper is inside a writer call right now.
    writing: bool,
    /// Shutdown: the helper drains any pending request, then exits.
    closed: bool,
}

/// Everything the background threads and the handle share.
struct Shared<B> {
    service: Arc<B>,
    config: RuntimeConfig,
    queue: Mutex<QueueState>,
    /// Submitters → scheduler: a new request (or shutdown) arrived.
    queue_ready: Condvar,
    /// Scheduler → blocked [`submit_retrying`](ServeRuntime::submit_retrying) callers: a
    /// batch was popped, so queue depth and caller quotas freed up (also signalled at
    /// shutdown so parked submitters observe `ShuttingDown`).
    queue_space: Condvar,
    /// Scheduler → `flush`/idle waiters: the queue emptied and no batch is in flight.
    queue_idle: Condvar,
    maint: Mutex<MaintState>,
    /// Feedback producers → maintenance thread.
    maint_ready: Condvar,
    /// Maintenance thread → `flush` waiters.
    maint_idle: Condvar,
    /// The downstream feedback consumer (the online refresh controller), if any.
    feedback_observer: Mutex<Option<Arc<dyn FeedbackObserver>>>,
    /// The crash-safe persistence hook, if any (see [`CheckpointWriter`]).
    checkpoint_writer: Mutex<Option<Arc<dyn CheckpointWriter>>>,
    /// Applied maintenance records since the last checkpoint attempt.
    since_checkpoint: AtomicU64,
    /// Applied maintenance records since the last background compaction (see
    /// [`RuntimeConfig::compact_every`]).
    since_compaction: AtomicU64,
    /// Maintenance → checkpoint-helper handoff (see [`CkptState`]).
    ckpt: Mutex<CkptState>,
    /// Maintenance lane → checkpoint helper: a request (or shutdown) arrived.
    ckpt_ready: Condvar,
    /// Checkpoint helper → [`flush`](ServeRuntime::flush) waiters: the writer went idle.
    ckpt_idle: Condvar,
    /// The scheduler's in-flight batch (see [`InflightBatch`]).
    inflight: Mutex<Option<InflightBatch>>,
    /// Caller → registered [`SloClass`] (unregistered callers are `Interactive`).
    /// Looked up outside the queue lock on every submission.
    caller_classes: Mutex<HashMap<u64, SloClass>>,
    /// The cross-window estimate cache; `None` when
    /// [`cache_entries`](RuntimeConfig::cache_entries) is 0 — the scheduler then takes
    /// the exact pre-cache path.
    cache: Option<EstimateCache>,
    /// The `(pool, model)` version pairing the scheduler last probed the cache under —
    /// movement triggers the proactive stale-generation purge.  Only the scheduler
    /// thread writes these (0 until the first cache-enabled batch).
    last_pool_version: AtomicU64,
    last_model_version: AtomicU64,
    supervisor: Arc<Supervisor>,
    injector: Arc<FaultInjector>,
    /// Set (under the queue lock) when the scheduler lane degrades: submissions execute
    /// synchronously on the submitting thread from then on.
    degraded_sync: AtomicBool,
    counters: Counters,
    serve_stats: Mutex<ServeStats>,
    /// Pre-registered observability handles (no-ops when [`RuntimeConfig::obs`] is
    /// disabled).
    hooks: ObsHooks,
}

/// Blocking-retry backoff bounds of [`ServeRuntime::submit_retrying`]: exponential from
/// the floor, capped at the ceiling — bounded rather than condvar-park-forever, so a
/// missed wakeup or a dead scheduler can only ever cost one backoff step.  Public so
/// other reconnect-style loops (e.g. `crn-cluster`'s worker re-dial) share the same
/// bounded-backoff envelope instead of inventing their own.
pub const RETRY_BACKOFF_FLOOR: Duration = Duration::from_micros(50);
/// Upper bound of the [`RETRY_BACKOFF_FLOOR`] doubling schedule.
pub const RETRY_BACKOFF_CEIL: Duration = Duration::from_millis(2);

/// The async request-queue serving runtime over an [`EstimatorService`].
///
/// See the [module docs](self) for the execution model and the crate docs for the
/// bit-parity contract.  The handle is the only owner of the background threads: dropping
/// it shuts the runtime down gracefully (drain, then join).
pub struct ServeRuntime<B: ComputeBackend> {
    shared: Arc<Shared<B>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    maintenance: Option<std::thread::JoinHandle<()>>,
    checkpoint: Option<std::thread::JoinHandle<()>>,
}

impl<B: ComputeBackend> ServeRuntime<B> {
    /// Spawns the runtime (scheduler + maintenance threads) over a shared service, with
    /// no faults scripted.
    pub fn new(service: Arc<B>, config: RuntimeConfig) -> Self {
        Self::with_faults(service, config, FaultInjector::none())
    }

    /// [`new`](ServeRuntime::new) with a scripted [`FaultInjector`] — the chaos suite's
    /// entry point.  With the empty plan this is exactly `new`.
    pub fn with_faults(
        service: Arc<B>,
        config: RuntimeConfig,
        injector: Arc<FaultInjector>,
    ) -> Self {
        let queue_depth = config.queue_depth.max(1);
        let config = RuntimeConfig {
            queue_depth,
            per_caller_depth: config.per_caller_depth.clamp(1, queue_depth),
            // A threshold above the queue depth could never be reached (admission caps
            // pending there), so the scheduler would always wait out the full window.
            batch_max: config.batch_max.clamp(1, queue_depth),
            batch_window: config.batch_window,
            maintenance_depth: config.maintenance_depth.max(1),
            default_deadline: config.default_deadline,
            restart_policy: config.restart_policy,
            checkpoint_every: config.checkpoint_every,
            compact_every: config.compact_every,
            class_windows: config.class_windows,
            class_weights: config.class_weights,
            cache_entries: config.cache_entries,
            class_deadlines: config.class_deadlines,
            obs: config.obs,
        };
        let supervisor = Arc::new(Supervisor::new(config.restart_policy));
        let cache = (config.cache_entries > 0).then(|| EstimateCache::new(config.cache_entries));
        let hooks = ObsHooks::new(config.obs.clone());
        let shared = Arc::new(Shared {
            service,
            config,
            queue: Mutex::new(QueueState::new()),
            queue_ready: Condvar::new(),
            queue_space: Condvar::new(),
            queue_idle: Condvar::new(),
            maint: Mutex::new(MaintState {
                pending: VecDeque::new(),
                applying: false,
                closed: false,
                dead: false,
            }),
            maint_ready: Condvar::new(),
            maint_idle: Condvar::new(),
            feedback_observer: Mutex::new(None),
            checkpoint_writer: Mutex::new(None),
            since_checkpoint: AtomicU64::new(0),
            since_compaction: AtomicU64::new(0),
            ckpt: Mutex::new(CkptState {
                requested: false,
                writing: false,
                closed: false,
            }),
            ckpt_ready: Condvar::new(),
            ckpt_idle: Condvar::new(),
            inflight: Mutex::new(None),
            caller_classes: Mutex::new(HashMap::new()),
            cache,
            last_pool_version: AtomicU64::new(0),
            last_model_version: AtomicU64::new(0),
            supervisor,
            injector,
            degraded_sync: AtomicBool::new(false),
            counters: Counters::default(),
            serve_stats: Mutex::new(ServeStats::default()),
            hooks,
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crn-serve-scheduler".into())
                .spawn(move || scheduler_thread(&shared))
                .expect("spawn scheduler thread")
        };
        let maintenance = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crn-serve-maintenance".into())
                .spawn(move || maintenance_thread(&shared))
                .expect("spawn maintenance thread")
        };
        let checkpoint = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crn-serve-checkpoint".into())
                .spawn(move || checkpoint_thread(&shared))
                .expect("spawn checkpoint thread")
        };
        ServeRuntime {
            shared,
            scheduler: Some(scheduler),
            maintenance: Some(maintenance),
            checkpoint: Some(checkpoint),
        }
    }

    /// The wrapped service (its pool is the one the maintenance lane refreshes).
    pub fn service(&self) -> &Arc<B> {
        &self.shared.service
    }

    /// The runtime's (normalized) configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// The lanes' supervisor — share it with a `crn-online` `RefreshWorker` so all
    /// three supervised threads budget under one policy and report in one place.
    pub fn supervisor(&self) -> &Arc<Supervisor> {
        &self.shared.supervisor
    }

    /// The runtime's fault injector (the empty plan unless scripted via
    /// [`with_faults`](ServeRuntime::with_faults)).
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.shared.injector
    }

    /// The runtime's observability handle (the disabled no-op handle unless an enabled
    /// [`Obs`] was installed via [`RuntimeConfig::with_obs`]) — what exporters and the
    /// eval driver snapshot metrics and drain journal events from.
    pub fn obs(&self) -> &Obs {
        &self.shared.hooks.obs
    }

    /// Registers `caller`'s latency [`SloClass`] — its requests queue in that class's
    /// lane, batch under that class's window
    /// ([`RuntimeConfig::class_window`]) and admit against that class's weighted share
    /// of the queue ([`RuntimeConfig::class_weights`]).  Unregistered callers are
    /// [`Interactive`](SloClass::Interactive); re-registering replaces the class for
    /// subsequent submissions.
    pub fn register_caller(&self, caller: u64, class: SloClass) {
        lock_ignoring_poison(&self.shared.caller_classes).insert(caller, class);
    }

    /// The class `caller`'s submissions currently admit under.
    pub fn caller_class(&self, caller: u64) -> SloClass {
        lock_ignoring_poison(&self.shared.caller_classes)
            .get(&caller)
            .copied()
            .unwrap_or_default()
    }

    /// Submits one query on behalf of `caller`, returning its completion [`Ticket`].
    ///
    /// Never blocks: a full queue (or an exhausted caller quota, or a full class share)
    /// sheds the submission with [`SubmitError::Overloaded`] immediately — admission
    /// control, not backpressure by stalling.  `caller` is an arbitrary fairness key
    /// (connection id, tenant, ...).  The request carries the caller's class deadline
    /// ([`RuntimeConfig::class_deadline`] — the class's own default, else the base
    /// [`default_deadline`](RuntimeConfig::default_deadline)), if any.
    pub fn submit(&self, caller: u64, query: Query) -> Result<Ticket, SubmitError> {
        let deadline = self.shared.config.class_deadline(self.caller_class(caller));
        self.submit_with_deadline(caller, query, deadline)
    }

    /// [`submit`](ServeRuntime::submit) with an explicit per-request deadline
    /// (overriding the configured default; `None` = wait indefinitely): if the request
    /// is still queued when the deadline passes, the scheduler sheds it unexecuted and
    /// its ticket resolves [`Expired`](crate::TicketError::Expired) — a stale answer is
    /// worth nothing to a query optimizer that already picked a plan.
    pub fn submit_with_deadline(
        &self,
        caller: u64,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let due = deadline.map(|d| Instant::now() + d);
        // Class lookup happens outside the queue lock: registration is rare, admission
        // is hot.
        let class = self.caller_class(caller);
        let admitted = {
            let mut state = lock_ignoring_poison(&self.shared.queue);
            // The degrade transition happens under this lock, so the flag read is
            // race-free: either we admit into a live scheduler's queue, or we serve
            // synchronously ourselves.
            if self.shared.degraded_sync.load(Ordering::Relaxed) {
                if state.closed {
                    return Err(SubmitError::ShuttingDown);
                }
                drop(state);
                return Ok(self.serve_degraded_sync(query));
            }
            self.try_admit(&mut state, caller, class, query, due)
        };
        admitted.map(|cell| {
            self.shared.queue_ready.notify_all();
            Ticket::new(cell)
        })
    }

    /// [`submit`](ServeRuntime::submit) for closed-loop clients: when admission sheds
    /// the attempt, backs off exponentially (timed waits on the queue-space condvar,
    /// [`RETRY_BACKOFF_FLOOR`] doubling to [`RETRY_BACKOFF_CEIL`], woken early whenever
    /// the scheduler pops a batch) and retries — no busy-spinning, and each shed attempt
    /// counts once in the rejection stats.  Returns `Err` only once the runtime is
    /// shutting down.  This is the one blocking submission shape — the load generator,
    /// the benches and the parity tests all go through it, so they measure the same
    /// client behaviour.
    pub fn submit_retrying(&self, caller: u64, query: &Query) -> Result<Ticket, SubmitError> {
        self.submit_retrying_for(caller, query, None)
    }

    /// [`submit_retrying`](ServeRuntime::submit_retrying) with a patience cap: gives up
    /// with [`SubmitError::DeadlineExceeded`] if admission has not succeeded within
    /// `patience` — the bounded-latency "no" a caller with its own budget needs under
    /// sustained overload.  `None` retries indefinitely.
    pub fn submit_retrying_for(
        &self,
        caller: u64,
        query: &Query,
        patience: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let give_up = patience.map(|p| Instant::now() + p);
        let class = self.caller_class(caller);
        // The request's own execution deadline anchors at the FIRST admission attempt:
        // recomputing it per retry let the deadline slide forward with every shed
        // attempt, so a request could wait in admission + queue far longer than its
        // configured bound before expiring.  Patience bounds *admission*; the deadline
        // bounds the request's total age — both from the same submission instant.
        let due = self
            .shared
            .config
            .class_deadline(class)
            .map(|d| Instant::now() + d);
        let mut backoff = RETRY_BACKOFF_FLOOR;
        let mut state = lock_ignoring_poison(&self.shared.queue);
        loop {
            if self.shared.degraded_sync.load(Ordering::Relaxed) {
                if state.closed {
                    return Err(SubmitError::ShuttingDown);
                }
                drop(state);
                return Ok(self.serve_degraded_sync(query.clone()));
            }
            match self.try_admit(&mut state, caller, class, query.clone(), due) {
                Ok(cell) => {
                    drop(state);
                    self.shared.queue_ready.notify_all();
                    return Ok(Ticket::new(cell));
                }
                Err(SubmitError::Overloaded { .. }) => {
                    let now = Instant::now();
                    if let Some(give_up) = give_up {
                        if now >= give_up {
                            return Err(SubmitError::DeadlineExceeded);
                        }
                    }
                    let mut wait = backoff;
                    if let Some(give_up) = give_up {
                        wait = wait.min(give_up.saturating_duration_since(now));
                    }
                    let (next, _timed_out) =
                        wait_timeout_ignoring_poison(&self.shared.queue_space, state, wait);
                    state = next;
                    backoff = (backoff * 2).min(RETRY_BACKOFF_CEIL);
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// The degraded-sync serving path: once the scheduler lane has breached its restart
    /// budget, every submission executes as a one-query batch on the *submitting*
    /// thread — same service, same estimates (the bit-parity contract is per-query), no
    /// cross-call batching, no background thread to die.  Its ticket is resolved before
    /// this returns.
    fn serve_degraded_sync(&self, query: Query) -> Ticket {
        let shared = &self.shared;
        let counters = &shared.counters;
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        counters.sync_served.fetch_add(1, Ordering::Relaxed);
        let cell = TicketCell::new();
        let ticket = Ticket::new(Arc::clone(&cell));
        let response = catch_unwind(AssertUnwindSafe(|| {
            shared.service.serve(std::slice::from_ref(&query))
        }));
        let batch_seq = counters.batches.fetch_add(1, Ordering::Relaxed);
        let resolution =
            settle_sync_response(response, || shared.service.fallback_estimate(&query));
        match resolution {
            SyncResolution::Computed { estimate, stats } => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                lock_ignoring_poison(&shared.serve_stats).accumulate(&stats);
                cell.complete(TicketOutcome {
                    estimate,
                    source: EstimateSource::Computed,
                    batch_size: 1,
                    batch_seq,
                    queue_wait: Duration::ZERO,
                    trace: None,
                });
            }
            SyncResolution::Degraded { estimate } => {
                counters.degraded.fetch_add(1, Ordering::Relaxed);
                cell.complete(TicketOutcome {
                    estimate,
                    source: EstimateSource::Degraded,
                    batch_size: 1,
                    batch_seq,
                    queue_wait: Duration::ZERO,
                    trace: None,
                });
            }
            SyncResolution::Failed => {
                counters.failed.fetch_add(1, Ordering::Relaxed);
                cell.fail();
            }
        }
        ticket
    }

    /// The shared admission step of [`submit`](ServeRuntime::submit) and
    /// [`submit_retrying`](ServeRuntime::submit_retrying): runs admission control under
    /// the caller-held queue lock and keeps the counters.
    fn try_admit(
        &self,
        state: &mut QueueState,
        caller: u64,
        class: SloClass,
        query: Query,
        deadline: Option<Instant>,
    ) -> Result<Arc<TicketCell>, SubmitError> {
        // Minted only when observability is enabled — `None` otherwise, with no clock
        // read, so the disabled admission path is exactly the prior one.
        let trace = self.shared.hooks.obs.mint_trace();
        let admitted = state.admit(
            caller,
            class,
            query,
            deadline,
            trace,
            self.shared.config.queue_depth,
            self.shared.config.per_caller_depth,
            self.shared.config.class_share(class),
        );
        match &admitted {
            Ok(_) => {
                self.shared
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(SubmitError::Overloaded { reason, .. }) => {
                let counter = match reason {
                    crate::queue::RejectReason::QueueFull => {
                        &self.shared.counters.rejected_queue_full
                    }
                    crate::queue::RejectReason::CallerQuota => {
                        &self.shared.counters.rejected_caller_quota
                    }
                    crate::queue::RejectReason::ClassShare => {
                        &self.shared.counters.rejected_class_share
                    }
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
        admitted
    }

    /// Feeds one completed query's true cardinality to the maintenance lane.
    ///
    /// The record is applied asynchronously as a single-swap
    /// [`upsert`](crn_core::ShardedPool::upsert) — new entries join the pool, stale
    /// entries get their cardinality refreshed, and in-flight snapshots are untouched.
    /// A full (or budget-breached) lane sheds the record ([`SubmitError::Overloaded`]);
    /// the next execution of the same query can resubmit it.
    pub fn record_feedback(&self, query: Query, cardinality: u64) -> Result<(), SubmitError> {
        self.enqueue_maintenance(query, cardinality, None)
    }

    /// [`record_feedback`](ServeRuntime::record_feedback) carrying the estimate the
    /// runtime served for the query: after the pool upsert applies, the full
    /// `(query, true cardinality, estimate)` triple is forwarded to the configured
    /// [`FeedbackObserver`] — the feedback channel of the online model-refresh
    /// subsystem.  Without an observer this behaves exactly like `record_feedback`.
    pub fn record_observed(
        &self,
        query: Query,
        cardinality: u64,
        estimate: f64,
    ) -> Result<(), SubmitError> {
        self.enqueue_maintenance(query, cardinality, Some(estimate))
    }

    /// Installs (or replaces) the downstream feedback consumer.  Applies to records
    /// enqueued from now on; records already in the lane keep the observer that is
    /// current when they apply.
    pub fn set_feedback_observer(&self, observer: Arc<dyn FeedbackObserver>) {
        *lock_ignoring_poison(&self.shared.feedback_observer) = Some(observer);
    }

    /// Installs (or replaces) the crash-safe persistence hook the maintenance lane
    /// invokes every [`checkpoint_every`](RuntimeConfig::checkpoint_every) applied
    /// records.
    pub fn set_checkpoint_writer(&self, writer: Arc<dyn CheckpointWriter>) {
        *lock_ignoring_poison(&self.shared.checkpoint_writer) = Some(writer);
    }

    /// The shared admission step of both feedback shapes.
    fn enqueue_maintenance(
        &self,
        query: Query,
        cardinality: u64,
        estimate: Option<f64>,
    ) -> Result<(), SubmitError> {
        let mut state = lock_ignoring_poison(&self.shared.maint);
        if state.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if state.dead || state.pending.len() >= self.shared.config.maintenance_depth {
            self.shared
                .counters
                .maintenance_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                reason: crate::queue::RejectReason::QueueFull,
                pending: state.pending.len(),
            });
        }
        state.pending.push_back(MaintRecord {
            query,
            cardinality,
            estimate,
        });
        drop(state);
        self.shared.maint_ready.notify_all();
        Ok(())
    }

    /// Blocks until both lanes are quiescent: no queued or in-flight request, no queued
    /// or in-flight maintenance record.  (A quiesce point for tests and drivers; new
    /// submissions may race in after it returns.)
    pub fn flush(&self) {
        {
            let mut state = lock_ignoring_poison(&self.shared.queue);
            while !(state.total_pending() == 0 && state.in_flight == 0) {
                state = wait_ignoring_poison(&self.shared.queue_idle, state);
            }
        }
        {
            let mut state = lock_ignoring_poison(&self.shared.maint);
            while !state.pending.is_empty() || state.applying {
                state = wait_ignoring_poison(&self.shared.maint_idle, state);
            }
        }
        {
            // The checkpoint helper runs off the maintenance lane's critical path, so a
            // quiesce must also wait out any write the drained records requested.
            let mut state = lock_ignoring_poison(&self.shared.ckpt);
            while state.requested || state.writing {
                state = wait_ignoring_poison(&self.shared.ckpt_idle, state);
            }
        }
    }

    /// A point-in-time snapshot of the runtime's counters and accumulated serving stats.
    pub fn stats(&self) -> RuntimeStats {
        let counters = &self.shared.counters;
        let supervisor = &self.shared.supervisor;
        let queued_by_class = {
            let state = lock_ignoring_poison(&self.shared.queue);
            let mut queued = [0u64; SloClass::COUNT];
            for class in SloClass::ALL {
                queued[class.index()] = state.pending_in(class) as u64;
            }
            queued
        };
        RuntimeStats {
            submitted: counters.submitted.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            degraded: counters.degraded.load(Ordering::Relaxed),
            expired: counters.expired.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            rejected_queue_full: counters.rejected_queue_full.load(Ordering::Relaxed),
            rejected_caller_quota: counters.rejected_caller_quota.load(Ordering::Relaxed),
            rejected_class_share: counters.rejected_class_share.load(Ordering::Relaxed),
            batches: counters.batches.load(Ordering::Relaxed),
            size_closes: counters.size_closes.load(Ordering::Relaxed),
            window_closes: counters.window_closes.load(Ordering::Relaxed),
            drain_closes: counters.drain_closes.load(Ordering::Relaxed),
            max_batch: counters.max_batch.load(Ordering::Relaxed) as u64,
            coalesced: counters.coalesced.load(Ordering::Relaxed),
            cache_hits: counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: counters.cache_misses.load(Ordering::Relaxed),
            cache_insertions: counters.cache_insertions.load(Ordering::Relaxed),
            cache_evictions: counters.cache_evictions.load(Ordering::Relaxed),
            cache_purged: counters.cache_purged.load(Ordering::Relaxed),
            retention_updates: counters.retention_updates.load(Ordering::Relaxed),
            pool_evictions: self.shared.service.pool_evictions(),
            compactions: counters.compactions.load(Ordering::Relaxed),
            queued_by_class,
            sync_served: counters.sync_served.load(Ordering::Relaxed),
            maintenance_applied: counters.maintenance_applied.load(Ordering::Relaxed),
            maintenance_rejected: counters.maintenance_rejected.load(Ordering::Relaxed),
            maintenance_failed: counters.maintenance_failed.load(Ordering::Relaxed),
            observer_failed: counters.observer_failed.load(Ordering::Relaxed),
            scheduler_restarts: supervisor.restarts(LANE_SCHEDULER),
            maintenance_restarts: supervisor.restarts(LANE_MAINTENANCE),
            degraded_sync_mode: self.shared.degraded_sync.load(Ordering::Relaxed),
            maintenance_down: supervisor.degraded(LANE_MAINTENANCE),
            checkpoints_written: counters.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_failed: counters.checkpoints_failed.load(Ordering::Relaxed),
            faults_injected: self.shared.injector.faults_injected(),
            serve: lock_ignoring_poison(&self.shared.serve_stats).clone(),
        }
    }

    /// Initiates the graceful drain without blocking: admission stops on both lanes
    /// ([`SubmitError::ShuttingDown`] from here on), while already-admitted requests and
    /// feedback records still execute.  Callers keep polling/waiting their tickets;
    /// [`ServeRuntime::shutdown`] (or drop) completes the drain and joins the threads.
    pub fn begin_shutdown(&self) {
        {
            let mut state = lock_ignoring_poison(&self.shared.queue);
            state.closed = true;
        }
        self.shared.queue_ready.notify_all();
        // Parked blocking submitters must wake to observe `ShuttingDown`.
        self.shared.queue_space.notify_all();
        {
            let mut state = lock_ignoring_poison(&self.shared.maint);
            state.closed = true;
        }
        self.shared.maint_ready.notify_all();
    }

    /// Graceful shutdown: stops admission, drains both queues (every admitted ticket
    /// resolves, every accepted feedback record applies), joins both threads and returns
    /// the final stats.  Dropping the runtime does the same minus the stats.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.scheduler.take() {
            handle.join().expect("scheduler thread exits cleanly");
        }
        if let Some(handle) = self.maintenance.take() {
            handle.join().expect("maintenance thread exits cleanly");
        }
        // Only after the maintenance lane drained: its last records may still have
        // requested a checkpoint, which the helper must write before exiting.
        {
            let mut state = lock_ignoring_poison(&self.shared.ckpt);
            state.closed = true;
        }
        self.shared.ckpt_ready.notify_all();
        if let Some(handle) = self.checkpoint.take() {
            handle.join().expect("checkpoint thread exits cleanly");
        }
    }
}

impl<B: ComputeBackend> Drop for ServeRuntime<B> {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl<B: ComputeBackend> std::fmt::Debug for ServeRuntime<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRuntime")
            .field("service", &self.shared.service.name())
            .field("config", &self.shared.config)
            .finish()
    }
}

/// The scheduler lane's supervision wrapper: runs [`scheduler_loop`] and, when a panic
/// escapes it (a loop bug, or an injected
/// [`SchedulerLoop`](crate::FaultSite::SchedulerLoop) kill), reconciles the shared
/// state — the orphaned in-flight batch resolves through the degraded path, nothing
/// hangs — and either re-enters the loop (queue intact) or, past the restart budget,
/// flips the runtime to degraded-sync serving.
fn scheduler_thread<B: ComputeBackend>(shared: &Arc<Shared<B>>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| scheduler_loop(shared))) {
            Ok(()) => return, // clean shutdown drain
            Err(_panic) => {
                recover_orphaned_batch(shared);
                match shared.supervisor.on_panic(LANE_SCHEDULER) {
                    SupervisorVerdict::Restart => {
                        shared.hooks.obs.record_event(Event::SupervisorRestart {
                            lane: LANE_SCHEDULER,
                            restarts: shared.supervisor.restarts(LANE_SCHEDULER),
                        });
                        continue;
                    }
                    SupervisorVerdict::Degrade => {
                        shared.hooks.obs.record_event(Event::LaneDegraded {
                            lane: LANE_SCHEDULER,
                        });
                        degrade_to_sync(shared);
                        return;
                    }
                }
            }
        }
    }
}

/// Resolves the batch a killed scheduler left behind (tickets via the degraded path)
/// and retires it from the in-flight accounting, so `flush` and waiters see a
/// consistent queue again before the loop restarts.
fn recover_orphaned_batch<B: ComputeBackend>(shared: &Shared<B>) {
    let orphan = lock_ignoring_poison(&shared.inflight).take();
    let Some(batch) = orphan else { return };
    let batch_seq = shared.counters.batches.load(Ordering::Relaxed);
    resolve_degraded(
        shared,
        &batch.tickets,
        &batch.slots,
        &batch.unique,
        batch.size,
        batch_seq,
        None,
    );
    let mut state = lock_ignoring_poison(&shared.queue);
    state.in_flight -= batch.size;
    let idle = state.total_pending() == 0 && state.in_flight == 0;
    drop(state);
    shared.queue_space.notify_all();
    if idle {
        shared.queue_idle.notify_all();
    }
}

/// The budget-breach transition: flips the runtime to degraded-sync serving (under the
/// queue lock, so no submission races past the flag into a queue nobody drains) and
/// settles everything still pending — expired deadlines expire, the rest resolve through
/// the degraded path.
fn degrade_to_sync<B: ComputeBackend>(shared: &Shared<B>) {
    let (expired, stranded) = {
        let mut state = lock_ignoring_poison(&shared.queue);
        shared.degraded_sync.store(true, Ordering::Relaxed);
        let expired = state.shed_expired(Instant::now());
        // Drain EVERY class lane: the degrade transition must strand no class.
        let mut stranded = Vec::new();
        for class in SloClass::ALL {
            let remaining = state.pending_in(class);
            stranded.extend(state.pop_batch(class, remaining));
        }
        state.in_flight -= stranded.len(); // pop counted them in flight; nothing executes
        (expired, stranded)
    };
    shared.queue_ready.notify_all();
    shared.queue_space.notify_all();
    shared.queue_idle.notify_all();
    if !expired.is_empty() {
        shared
            .counters
            .expired
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        for request in &expired {
            request.ticket.expire();
        }
    }
    if !stranded.is_empty() {
        let batch_seq = shared.counters.batches.load(Ordering::Relaxed);
        let tickets: Vec<Arc<TicketCell>> = stranded
            .iter()
            .map(|request| Arc::clone(&request.ticket))
            .collect();
        let slots: Vec<usize> = (0..stranded.len()).collect();
        let unique: Vec<Query> = stranded.into_iter().map(|request| request.query).collect();
        resolve_degraded(
            shared,
            &tickets,
            &slots,
            &unique,
            tickets.len(),
            batch_seq,
            None,
        );
    }
}

/// Resolves a set of tickets through the degraded fallback path (after a panicked batch
/// or a scheduler kill): per-unique-query [`fallback_estimate`]s, tagged
/// [`Degraded`](EstimateSource::Degraded).  If even the fallback panics, the tickets
/// fail — resolved either way, never stranded.
///
/// [`fallback_estimate`]: crn_core::EstimatorService::fallback_estimate
fn resolve_degraded<B: ComputeBackend>(
    shared: &Shared<B>,
    tickets: &[Arc<TicketCell>],
    slots: &[usize],
    unique: &[Query],
    batch_size: usize,
    batch_seq: u64,
    waits: Option<&[Duration]>,
) {
    let fallback = catch_unwind(AssertUnwindSafe(|| {
        unique
            .iter()
            .map(|query| shared.service.fallback_estimate(query))
            .collect::<Vec<f64>>()
    }));
    match fallback {
        Ok(estimates) => {
            shared
                .counters
                .degraded
                .fetch_add(tickets.len() as u64, Ordering::Relaxed);
            shared.hooks.degraded.add(tickets.len() as u64);
            for (index, (ticket, &slot)) in tickets.iter().zip(slots).enumerate() {
                ticket.complete(TicketOutcome {
                    estimate: estimates[slot],
                    source: EstimateSource::Degraded,
                    batch_size,
                    batch_seq,
                    queue_wait: waits.map_or(Duration::ZERO, |waits| waits[index]),
                    trace: None,
                });
            }
        }
        Err(_panic) => {
            shared
                .counters
                .failed
                .fetch_add(tickets.len() as u64, Ordering::Relaxed);
            for ticket in tickets {
                ticket.fail();
            }
        }
    }
}

/// How one degraded-sync single-query serve attempt settles (see
/// [`settle_sync_response`]).
enum SyncResolution {
    /// The serve call returned an estimate row: full-fidelity answer plus the response's
    /// serving stats.
    Computed { estimate: f64, stats: ServeStats },
    /// The serve call panicked — or returned no row for the query — and the fallback
    /// path produced the answer.
    Degraded { estimate: f64 },
    /// Even the fallback panicked: the ticket fails (resolved, never stranded).
    Failed,
}

/// Settles a caught single-query serve result into what its ticket resolves to.
///
/// The estimate row is read with `.first()`, never indexed: a response carrying no row
/// for the query routes through the fallback path like a panic does — indexing
/// `estimates[0]` here used to run on the submitting thread *outside* any containment,
/// so a malformed response panicked the caller instead of degrading the answer.  The
/// fallback closure runs under its own `catch_unwind`.
fn settle_sync_response<F: FnOnce() -> f64>(
    response: std::thread::Result<ServeResponse>,
    fallback: F,
) -> SyncResolution {
    if let Ok(response) = response {
        if let Some(&estimate) = response.estimates.first() {
            // A backend that answered this very slot through its own reduced-fidelity
            // path (e.g. a cluster coordinator covering a lost worker) already holds the
            // degraded estimate — honor the tag rather than relabeling it `Computed`.
            if response.degraded.contains(&0) {
                return SyncResolution::Degraded { estimate };
            }
            return SyncResolution::Computed {
                estimate,
                stats: response.stats,
            };
        }
    }
    match catch_unwind(AssertUnwindSafe(fallback)) {
        Ok(estimate) => SyncResolution::Degraded { estimate },
        Err(_panic) => SyncResolution::Failed,
    }
}

/// The most urgent non-empty class lane and its window deadline: the earliest
/// `oldest enqueue + class window` across lanes, ties broken by [`SloClass::ALL`]
/// priority order (iteration order plus a strict comparison).  `None` when every lane is
/// empty.
fn most_urgent_class(state: &QueueState, config: &RuntimeConfig) -> Option<(SloClass, Instant)> {
    let mut best: Option<(SloClass, Instant)> = None;
    for class in SloClass::ALL {
        let Some(oldest) = state.oldest(class) else {
            continue;
        };
        let deadline = oldest + config.class_window(class);
        if best.is_none_or(|(_, best_deadline)| deadline < best_deadline) {
            best = Some((class, deadline));
        }
    }
    best
}

/// What the estimate cache decided for one coalesced unique slot of a closing batch.
enum SlotFate {
    /// Cache hit: resolve the slot's tickets with this estimate (bit-identical to what
    /// the compute path would return under the probed versions) without serving.
    Hit(f64),
    /// Cache miss: the slot renumbers to this dense index in the miss sub-batch that
    /// enters the compute path.
    Miss(usize),
}

/// The scheduler: forms batches off the submission queue and executes them.  Runs until
/// the shutdown drain completes; panics escape to [`scheduler_thread`]'s supervision.
fn scheduler_loop<B: ComputeBackend>(shared: &Shared<B>) {
    loop {
        // Phase 1 — wait for the batch-opening request (or shutdown with an empty queue).
        let mut state = lock_ignoring_poison(&shared.queue);
        loop {
            if state.total_pending() > 0 {
                break;
            }
            if state.closed {
                shared.queue_idle.notify_all();
                return;
            }
            state = wait_ignoring_poison(&shared.queue_ready, state);
        }

        // Phase 2 — hold the open batches until something closes one: a class reaching
        // the size threshold, the most urgent class's window deadline (its oldest
        // pending request + its class window) expiring, or shutdown.  Batches are
        // single-class — each class keeps its own latency promise — and the close
        // decision always picks the most urgent eligible class.  Only the scheduler
        // pops, so lanes observed non-empty here stay non-empty until we pop below.
        let (batch_class, reason) = loop {
            if let Some(class) = SloClass::ALL
                .into_iter()
                .find(|&class| state.pending_in(class) >= shared.config.batch_max)
            {
                break (class, CloseReason::Size);
            }
            let (class, deadline) =
                most_urgent_class(&state, &shared.config).expect("a lane is non-empty");
            if state.closed {
                break (class, CloseReason::Drain);
            }
            let now = Instant::now();
            if now >= deadline {
                break (class, CloseReason::Window);
            }
            let (next, _timed_out) =
                wait_timeout_ignoring_poison(&shared.queue_ready, state, deadline - now);
            state = next;
        };
        // Deadline shedding happens exactly here — after the close decision, before the
        // pop — so an expired request never reaches execution and never displaces queue
        // capacity a live request could use.
        let expired = state.shed_expired(Instant::now());
        let batch = state.pop_batch(batch_class, shared.config.batch_max);
        let hooks = &shared.hooks;
        if hooks.enabled {
            // Post-pop queue depth per class: the live gauge the JSONL export samples.
            for class in SloClass::ALL {
                hooks.queued_gauge[class.index()].set(state.pending_in(class) as f64);
            }
        }
        drop(state);
        // The pop freed queue depth and caller quotas: wake parked blocking submitters.
        shared.queue_space.notify_all();
        if !expired.is_empty() {
            shared
                .counters
                .expired
                .fetch_add(expired.len() as u64, Ordering::Relaxed);
            hooks.expired.add(expired.len() as u64);
            for request in &expired {
                request.ticket.expire();
            }
        }
        if batch.is_empty() {
            // Everything in the chosen lane expired: no batch to run this round (other
            // lanes, if non-empty, get their own close decision on the next pass).
            let state = lock_ignoring_poison(&shared.queue);
            if state.total_pending() == 0 && state.in_flight == 0 {
                shared.queue_idle.notify_all();
            }
            continue;
        }

        // Phase 3 — execute the whole batch as ONE service call: this is where
        // cross-call traffic fuses into the service's multi-query head batches.
        // Duplicate in-window queries (same canonical query hash, equality-checked
        // against collisions) are coalesced into a single computed row whose estimate
        // fans out to every duplicate's ticket — per-query results are independent of
        // batch composition (the service's bit-parity contract), so a duplicate's answer
        // is exactly what its own row would have computed.
        let closed_at = Instant::now();
        // The obs clock reads the close timestamp once per batch; with obs disabled this
        // branch is the whole cost and `traces` stays an unallocated `Vec::new()`.
        let close_us = if hooks.enabled { hooks.obs.now_us() } else { 0 };
        let batch_size = batch.len();
        let mut traces: Vec<Option<TraceStart>> = Vec::new();
        if hooks.enabled {
            traces.reserve(batch_size);
        }
        let mut tickets = Vec::with_capacity(batch_size);
        let mut waits = Vec::with_capacity(batch_size);
        let mut unique: Vec<Query> = Vec::with_capacity(batch_size);
        let mut unique_hashes: Vec<u64> = Vec::with_capacity(batch_size);
        let mut slots: Vec<usize> = Vec::with_capacity(batch_size);
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::with_capacity(batch_size);
        for request in batch {
            let hash = query_hash(&request.query);
            let candidates = by_hash.entry(hash).or_default();
            let slot = match candidates
                .iter()
                .copied()
                .find(|&slot| unique[slot] == request.query)
            {
                Some(slot) => slot,
                None => {
                    let slot = unique.len();
                    unique.push(request.query);
                    unique_hashes.push(hash);
                    candidates.push(slot);
                    slot
                }
            };
            slots.push(slot);
            tickets.push(request.ticket);
            waits.push(closed_at.saturating_duration_since(request.enqueued));
            if hooks.enabled {
                traces.push(request.trace);
            }
        }
        let coalesced = batch_size - unique.len();

        // Batch bookkeeping happens at close time, before execution: a batch the cache
        // resolves entirely still counts as one closed batch, and its tickets need the
        // sequence number below.
        let counters = &shared.counters;
        let batch_seq = counters.batches.fetch_add(1, Ordering::Relaxed);
        match reason {
            CloseReason::Size => counters.size_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Window => counters.window_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Drain => counters.drain_closes.fetch_add(1, Ordering::Relaxed),
        };
        counters.max_batch.fetch_max(batch_size, Ordering::Relaxed);
        counters
            .coalesced
            .fetch_add(coalesced as u64, Ordering::Relaxed);
        if hooks.enabled {
            hooks.batches.inc();
            hooks.coalesced.add(coalesced as u64);
            hooks.batch_size.record(batch_size as u64);
            for wait in &waits {
                hooks.queue_wait_us.record(wait.as_micros() as u64);
            }
            hooks.obs.record_event(Event::BatchClosed {
                reason: reason.label(),
                size: batch_size,
                class: batch_class.name(),
            });
        }

        // Phase 3b — consult the cross-window estimate cache (when enabled): one probe
        // per coalesced unique query, under the versions a serve issued right now would
        // take, so a hit is bit-identical to recomputation.  Hit tickets resolve HERE,
        // before the in-flight batch parks in the recovery slot — a scheduler death
        // below can then never double-resolve them — and only the misses enter the
        // compute path.
        let probe_start_us = if hooks.enabled && shared.cache.is_some() {
            hooks.obs.now_us()
        } else {
            0
        };
        let fates: Option<Vec<SlotFate>> = shared.cache.as_ref().map(|cache| {
            let (pool_version, model_version) = shared.service.serving_versions();
            // Proactive purge on version movement: entries filed under older pairings
            // can never hit again (probes carry the current versions), so drop them now
            // instead of letting them squat in the LRU.  Only this thread writes the
            // last-seen pair, so the read-compare-store needs no stronger ordering.
            let moved = shared.last_pool_version.load(Ordering::Relaxed) != pool_version
                || shared.last_model_version.load(Ordering::Relaxed) != model_version;
            if moved {
                shared
                    .last_pool_version
                    .store(pool_version, Ordering::Relaxed);
                shared
                    .last_model_version
                    .store(model_version, Ordering::Relaxed);
                let purged = cache.purge_stale(pool_version, model_version);
                shared
                    .counters
                    .cache_purged
                    .fetch_add(purged as u64, Ordering::Relaxed);
                if purged > 0 {
                    shared.hooks.obs.record_event(Event::CachePurge {
                        purged: purged as u64,
                    });
                }
            }
            let mut misses = 0usize;
            unique
                .iter()
                .zip(&unique_hashes)
                .map(|(query, &hash)| {
                    match cache.lookup(query, hash, pool_version, model_version) {
                        Some(estimate) => SlotFate::Hit(estimate),
                        None => {
                            let fate = SlotFate::Miss(misses);
                            misses += 1;
                            fate
                        }
                    }
                })
                .collect()
        });
        let hit_uniques = fates.as_ref().map_or(0, |fates| {
            fates
                .iter()
                .filter(|fate| matches!(fate, SlotFate::Hit(_)))
                .count()
        });
        if fates.is_some() {
            counters
                .cache_hits
                .fetch_add(hit_uniques as u64, Ordering::Relaxed);
            counters
                .cache_misses
                .fetch_add((unique.len() - hit_uniques) as u64, Ordering::Relaxed);
            if hooks.enabled {
                hooks.cache_hits.add(hit_uniques as u64);
                hooks.cache_misses.add((unique.len() - hit_uniques) as u64);
            }
        }
        // A cache probe ran iff `fates` is Some; the segment is charged to every request
        // in the batch (hit or miss — misses paid the probe before computing).
        let cache_probe_us = if hooks.enabled && fates.is_some() {
            hooks.obs.now_us().saturating_sub(probe_start_us)
        } else {
            0
        };
        let (miss_tickets, miss_slots, miss_unique, miss_hashes, miss_waits, miss_traces) =
            match &fates {
                Some(fates) if hit_uniques > 0 => {
                    let miss_count = unique.len() - hit_uniques;
                    let mut miss_unique = Vec::with_capacity(miss_count);
                    let mut miss_hashes = Vec::with_capacity(miss_count);
                    for (slot, query) in unique.iter().enumerate() {
                        if matches!(fates[slot], SlotFate::Miss(_)) {
                            miss_unique.push(query.clone());
                            miss_hashes.push(unique_hashes[slot]);
                        }
                    }
                    let mut miss_tickets = Vec::new();
                    let mut miss_slots = Vec::new();
                    let mut miss_waits = Vec::new();
                    let mut miss_traces = Vec::new();
                    let mut replayed = 0u64;
                    // One clock read covers every hit resolved in this pass.
                    let hit_resolved_us = if hooks.enabled { hooks.obs.now_us() } else { 0 };
                    for (index, ((ticket, &slot), &queue_wait)) in
                        tickets.iter().zip(&slots).zip(&waits).enumerate()
                    {
                        match fates[slot] {
                            SlotFate::Hit(estimate) => {
                                let trace = if hooks.enabled {
                                    hooks.record_latency(
                                        batch_class,
                                        traces[index],
                                        hit_resolved_us,
                                    );
                                    // A hit's span ends at the probe: zero compute, zero merge.
                                    finish_trace(
                                        traces[index],
                                        queue_wait,
                                        probe_start_us.saturating_sub(close_us),
                                        cache_probe_us,
                                        0,
                                        0,
                                    )
                                } else {
                                    None
                                };
                                ticket.complete(TicketOutcome {
                                    estimate,
                                    source: EstimateSource::Cached,
                                    batch_size,
                                    batch_seq,
                                    queue_wait,
                                    trace,
                                });
                                replayed += 1;
                            }
                            SlotFate::Miss(miss_slot) => {
                                miss_tickets.push(Arc::clone(ticket));
                                miss_slots.push(miss_slot);
                                miss_waits.push(queue_wait);
                                if hooks.enabled {
                                    miss_traces.push(traces[index]);
                                }
                            }
                        }
                    }
                    counters.completed.fetch_add(replayed, Ordering::Relaxed);
                    hooks.completed.add(replayed);
                    (
                        miss_tickets,
                        miss_slots,
                        miss_unique,
                        miss_hashes,
                        miss_waits,
                        miss_traces,
                    )
                }
                // Cache disabled or every probe missed: the whole batch enters the compute
                // path unchanged (with the cache disabled this is exactly the pre-cache
                // path — no clones, no extra work).
                _ => (tickets, slots, unique, unique_hashes, waits, traces),
            };
        if miss_unique.is_empty() {
            // The cache resolved the entire batch: nothing to serve, nothing in flight
            // to recover.  Retire the batch and continue.
            let mut state = lock_ignoring_poison(&shared.queue);
            state.in_flight -= batch_size;
            if state.total_pending() == 0 && state.in_flight == 0 {
                shared.queue_idle.notify_all();
            }
            continue;
        }
        // Park the miss sub-batch in the recovery slot (with the FULL batch size, so
        // recovery retires the whole pop from the in-flight accounting): if this thread
        // dies anywhere below, the supervision wrapper resolves these tickets and
        // retires the batch.  The already-resolved cache hits are deliberately not in
        // the slot — a ticket resolves exactly once.
        *lock_ignoring_poison(&shared.inflight) = Some(InflightBatch {
            tickets: miss_tickets.clone(),
            slots: miss_slots.clone(),
            unique: miss_unique.clone(),
            size: batch_size,
        });
        // Scripted scheduler kill: OUTSIDE every containment, mid-batch — the genuine
        // thread-death path the supervisor exists for.
        shared.injector.fire(FaultSite::SchedulerLoop);
        // The worker pool propagates shard panics to its submitter — here, this thread.
        // Contain them: a panicked batch must neither strand its waiters (they resolve
        // through the degraded path below) nor kill the scheduler (later batches still
        // serve).
        let serve_start_us = if hooks.enabled { hooks.obs.now_us() } else { 0 };
        let response = catch_unwind(AssertUnwindSafe(|| {
            shared.injector.fire(FaultSite::BatchExecute);
            shared.service.serve(&miss_unique)
        }));

        // Phase 4 — resolve every remaining ticket (the close-time bookkeeping already
        // happened above, before the cache consult).
        match response {
            Ok(response) => {
                debug_assert_eq!(response.estimates.len(), miss_unique.len());
                // The backend may have answered some slots through its own
                // reduced-fidelity path (`ServeResponse::degraded` — e.g. a cluster
                // coordinator covering a lost worker's shards from the fallback
                // estimator).  Those slots' tickets resolve `Degraded`, count in the
                // degraded totals, and never enter the estimate cache.
                let degraded_slots: Vec<bool> = {
                    let mut flags = vec![false; miss_unique.len()];
                    for &slot in &response.degraded {
                        if let Some(flag) = flags.get_mut(slot) {
                            *flag = true;
                        }
                    }
                    flags
                };
                let degraded_tickets = miss_slots
                    .iter()
                    .filter(|&&slot| degraded_slots[slot])
                    .count() as u64;
                let computed_tickets = miss_tickets.len() as u64 - degraded_tickets;
                counters
                    .completed
                    .fetch_add(computed_tickets, Ordering::Relaxed);
                hooks.completed.add(computed_tickets);
                if degraded_tickets > 0 {
                    counters
                        .degraded
                        .fetch_add(degraded_tickets, Ordering::Relaxed);
                    hooks.degraded.add(degraded_tickets);
                }
                lock_ignoring_poison(&shared.serve_stats).accumulate(&response.stats);
                // File the computed rows into the cache under the version pairing the
                // response itself reports — exactly what each estimate was computed
                // under, so a later hit replays it bit-identically.  Degraded results
                // (the Err arm, and any backend-tagged degraded slot) are never cached.
                if let Some(cache) = &shared.cache {
                    let mut evictions = 0u64;
                    let mut filed = 0u64;
                    for (slot, ((query, &hash), &estimate)) in miss_unique
                        .iter()
                        .zip(&miss_hashes)
                        .zip(&response.estimates)
                        .enumerate()
                    {
                        if degraded_slots[slot] {
                            continue;
                        }
                        filed += 1;
                        if cache.insert(
                            query,
                            hash,
                            response.pool_version,
                            response.stats.model_version,
                            estimate,
                        ) {
                            evictions += 1;
                        }
                    }
                    counters
                        .cache_insertions
                        .fetch_add(filed, Ordering::Relaxed);
                    counters
                        .cache_evictions
                        .fetch_add(evictions, Ordering::Relaxed);
                }
                // Span segments for every computed request in this batch: batch-wait is
                // the close→probe gap plus nothing (probe time is its own segment), and
                // compute/merge come from the service's own phase stats.
                let (resolved_us, batch_wait_us, shard_compute_us, merge_us) = if hooks.enabled {
                    (
                        hooks.obs.now_us(),
                        serve_start_us.saturating_sub(close_us.saturating_add(cache_probe_us)),
                        response.stats.compute_time.as_micros() as u64,
                        response.stats.merge_time.as_micros() as u64,
                    )
                } else {
                    (0, 0, 0, 0)
                };
                for (index, ((ticket, &slot), queue_wait)) in miss_tickets
                    .iter()
                    .zip(&miss_slots)
                    .zip(miss_waits)
                    .enumerate()
                {
                    let trace = if hooks.enabled {
                        hooks.record_latency(batch_class, miss_traces[index], resolved_us);
                        finish_trace(
                            miss_traces[index],
                            queue_wait,
                            batch_wait_us,
                            cache_probe_us,
                            shard_compute_us,
                            merge_us,
                        )
                    } else {
                        None
                    };
                    ticket.complete(TicketOutcome {
                        estimate: response.estimates[slot],
                        source: if degraded_slots[slot] {
                            EstimateSource::Degraded
                        } else {
                            EstimateSource::Computed
                        },
                        batch_size,
                        batch_seq,
                        queue_wait,
                        trace,
                    });
                }
            }
            Err(_panic) => {
                // The model panicked on this batch: answer every ticket from the
                // stats/fallback path, tagged Degraded — within budget, never silent.
                resolve_degraded(
                    shared,
                    &miss_tickets,
                    &miss_slots,
                    &miss_unique,
                    batch_size,
                    batch_seq,
                    Some(&miss_waits),
                );
            }
        }
        // Resolution done: the recovery slot no longer owns these tickets.
        lock_ignoring_poison(&shared.inflight).take();

        // Phase 5 — retire the batch; wake `flush` when fully idle.
        let mut state = lock_ignoring_poison(&shared.queue);
        state.in_flight -= batch_size;
        if state.total_pending() == 0 && state.in_flight == 0 {
            shared.queue_idle.notify_all();
        }
    }
}

/// The maintenance lane's supervision wrapper (mirror of [`scheduler_thread`]): a panic
/// that escapes the per-record containment loses at most the in-flight record (counted
/// failed), the queue survives, and the lane restarts — or, past the budget, goes down
/// for good with its backlog counted and shed.
fn maintenance_thread<B: ComputeBackend>(shared: &Arc<Shared<B>>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| maintenance_loop(shared))) {
            Ok(()) => return,
            Err(_panic) => {
                recover_maintenance(shared);
                match shared.supervisor.on_panic(LANE_MAINTENANCE) {
                    SupervisorVerdict::Restart => {
                        shared.hooks.obs.record_event(Event::SupervisorRestart {
                            lane: LANE_MAINTENANCE,
                            restarts: shared.supervisor.restarts(LANE_MAINTENANCE),
                        });
                        continue;
                    }
                    SupervisorVerdict::Degrade => {
                        shared.hooks.obs.record_event(Event::LaneDegraded {
                            lane: LANE_MAINTENANCE,
                        });
                        degrade_maintenance(shared);
                        return;
                    }
                }
            }
        }
    }
}

/// Reconciles the maintenance state after a mid-record kill: the popped record is lost
/// (counted failed), the `applying` flag clears so `flush` cannot wedge.
fn recover_maintenance<B: ComputeBackend>(shared: &Shared<B>) {
    let mut state = lock_ignoring_poison(&shared.maint);
    if state.applying {
        state.applying = false;
        shared
            .counters
            .maintenance_failed
            .fetch_add(1, Ordering::Relaxed);
    }
    let idle = state.pending.is_empty();
    drop(state);
    if idle {
        shared.maint_idle.notify_all();
    }
}

/// The maintenance lane's budget-breach transition: the lane stays down, its backlog is
/// counted failed and dropped, and admission sheds from here on (`dead`).
fn degrade_maintenance<B: ComputeBackend>(shared: &Shared<B>) {
    let mut state = lock_ignoring_poison(&shared.maint);
    state.dead = true;
    let dropped = state.pending.len() as u64;
    state.pending.clear();
    drop(state);
    if dropped > 0 {
        shared
            .counters
            .maintenance_failed
            .fetch_add(dropped, Ordering::Relaxed);
    }
    shared.maint_idle.notify_all();
}

/// One checkpoint attempt through the installed [`CheckpointWriter`] (if any): failures
/// — writer errors, writer panics, injected write faults — are counted and contained;
/// the lane keeps draining and retries after the next interval.
fn run_checkpoint<B: ComputeBackend>(shared: &Shared<B>) {
    let writer = lock_ignoring_poison(&shared.checkpoint_writer).clone();
    let Some(writer) = writer else { return };
    if shared.injector.should_fire(FaultSite::CheckpointWrite) {
        shared
            .counters
            .checkpoints_failed
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    match catch_unwind(AssertUnwindSafe(|| writer.write_checkpoint())) {
        Ok(Ok(())) => {
            let written = shared
                .counters
                .checkpoints_written
                .fetch_add(1, Ordering::Relaxed)
                + 1;
            shared
                .hooks
                .obs
                .record_event(Event::CheckpointCommit { written });
        }
        Ok(Err(_)) | Err(_) => {
            shared
                .counters
                .checkpoints_failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The checkpoint helper thread: waits for the maintenance lane to request a write,
/// runs [`run_checkpoint`] off the lane's critical path, and goes back to sleep.  The
/// writer itself snapshots the pool/model Arcs, so the lane keeps applying upserts
/// concurrently with the (possibly slow) serialization + two-phase rename.  Exits when
/// the runtime closes the cell, after draining a final pending request.
fn checkpoint_thread<B: ComputeBackend>(shared: &Arc<Shared<B>>) {
    loop {
        {
            let mut state = lock_ignoring_poison(&shared.ckpt);
            loop {
                if state.requested {
                    state.requested = false;
                    state.writing = true;
                    break;
                }
                if state.closed {
                    return;
                }
                state = wait_ignoring_poison(&shared.ckpt_ready, state);
            }
        }
        // Lock released: the lane can keep requesting (coalesced into the next pass)
        // while the writer serializes and commits.
        run_checkpoint(shared);
        let mut state = lock_ignoring_poison(&shared.ckpt);
        state.writing = false;
        shared.ckpt_idle.notify_all();
    }
}

/// The maintenance lane: applies feedback records to the pool, one single-swap upsert at
/// a time, concurrently with serving.  Panics escape to [`maintenance_thread`]'s
/// supervision.
fn maintenance_loop<B: ComputeBackend>(shared: &Shared<B>) {
    loop {
        let record = {
            let mut state = lock_ignoring_poison(&shared.maint);
            loop {
                if let Some(record) = state.pending.pop_front() {
                    state.applying = true;
                    break record;
                }
                if state.closed {
                    shared.maint_idle.notify_all();
                    return;
                }
                state = wait_ignoring_poison(&shared.maint_ready, state);
            }
        };
        // Scripted maintenance kill: mid-record (popped, not yet applied), outside the
        // containment below — the record is lost, the supervisor restarts the lane.
        shared.injector.fire(FaultSite::MaintenanceLoop);
        // Same containment as the scheduler: a panicking upsert must not wedge `flush`
        // (the `applying` flag below) or kill the lane for later records.
        let applied = catch_unwind(AssertUnwindSafe(|| {
            shared.injector.fire(FaultSite::MaintenanceUpsert);
            shared
                .service
                .apply_feedback(&record.query, record.cardinality);
        }));
        let counter = match &applied {
            Ok(_) => &shared.counters.maintenance_applied,
            Err(_panic) => &shared.counters.maintenance_failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // Forward the applied triple to the online feedback channel, if one is
        // listening.  After the upsert (an observer reacting to the record — e.g. by
        // reading the pool — must see the refreshed entry), and contained separately:
        // an observer panic must neither kill the lane nor mislabel the (successful)
        // upsert as a maintenance failure.
        if applied.is_ok() {
            if let Some(estimate) = record.estimate {
                // Fold the served estimate's q-error into the (just-refreshed) anchor's
                // retention weight: anchors that keep producing bad estimates sink in
                // the bounded-capacity pool's eviction order.  Same containment rules
                // as the observer below — a panic here must not kill the lane or
                // mislabel the applied upsert.
                let retained = catch_unwind(AssertUnwindSafe(|| {
                    let q_error =
                        crn_nn::q_error(estimate.max(1.0), (record.cardinality.max(1)) as f64, 1.0);
                    shared.service.record_retention(&record.query, q_error)
                }));
                if matches!(retained, Ok(true)) {
                    shared
                        .counters
                        .retention_updates
                        .fetch_add(1, Ordering::Relaxed);
                }
                let observer = lock_ignoring_poison(&shared.feedback_observer).clone();
                if let Some(observer) = observer {
                    let observed = catch_unwind(AssertUnwindSafe(|| {
                        observer.observe(&record.query, record.cardinality, estimate);
                    }));
                    if observed.is_err() {
                        shared
                            .counters
                            .observer_failed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Journal pool evictions as a delta against the pool's own counter: the
            // maintenance lane is the only serving-side writer, so this races with at
            // most the refresh worker's compactions — the swap keeps the delta exact.
            if shared.hooks.enabled {
                let evictions = shared.service.pool_evictions();
                let seen = shared
                    .hooks
                    .journaled_pool_evictions
                    .swap(evictions, Ordering::Relaxed);
                if evictions > seen {
                    shared.hooks.obs.record_event(Event::PoolEviction {
                        evicted: evictions - seen,
                    });
                }
            }
            // Checkpoint cadence: every `checkpoint_every` applied records, hand the
            // write to the checkpoint helper thread — the lane only flips a flag, so a
            // slow writer (fsync stall, big pool) never blocks upsert application.
            // Requests coalesce while a write is pending or in flight.
            if shared.config.checkpoint_every > 0 {
                let due = shared.since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
                if due >= shared.config.checkpoint_every {
                    shared.since_checkpoint.store(0, Ordering::Relaxed);
                    lock_ignoring_poison(&shared.ckpt).requested = true;
                    shared.ckpt_ready.notify_all();
                }
            }
            // Background compaction cadence: every `compact_every` applied records,
            // structurally dedup the pool on this lane — not only after model swaps.
            if shared.config.compact_every > 0 {
                let due = shared.since_compaction.fetch_add(1, Ordering::Relaxed) + 1;
                if due >= shared.config.compact_every {
                    shared.since_compaction.store(0, Ordering::Relaxed);
                    let merged = catch_unwind(AssertUnwindSafe(|| shared.service.compact()));
                    if let Ok(merged) = merged {
                        shared.counters.compactions.fetch_add(1, Ordering::Relaxed);
                        if merged > 0 {
                            shared
                                .hooks
                                .obs
                                .record_event(Event::PoolCompaction { merged });
                        }
                    }
                }
            }
        }
        let mut state = lock_ignoring_poison(&shared.maint);
        state.applying = false;
        if state.pending.is_empty() {
            shared.maint_idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response_with(estimates: Vec<f64>) -> std::thread::Result<ServeResponse> {
        Ok(ServeResponse {
            estimates,
            stats: ServeStats::default(),
            pool_version: 0,
            degraded: Vec::new(),
        })
    }

    #[test]
    fn settle_routes_a_rowless_response_through_the_fallback() {
        // The bug this pins: a response with no estimate row used to be indexed
        // `estimates[0]` on the submitting thread, outside every catch_unwind — a
        // panic at the caller instead of a degraded answer.
        match settle_sync_response(response_with(Vec::new()), || 123.0) {
            SyncResolution::Degraded { estimate } => assert_eq!(estimate, 123.0),
            _ => panic!("a rowless response must degrade, not panic or compute"),
        }
    }

    #[test]
    fn settle_prefers_the_computed_row_when_present() {
        match settle_sync_response(response_with(vec![7.5]), || unreachable!("no fallback")) {
            SyncResolution::Computed { estimate, .. } => assert_eq!(estimate, 7.5),
            _ => panic!("a response with a row is a computed resolution"),
        }
    }

    #[test]
    fn settle_fails_only_when_the_fallback_panics_too() {
        let panicked: std::thread::Result<ServeResponse> = Err(Box::new("batch panicked"));
        match settle_sync_response(panicked, || 9.0) {
            SyncResolution::Degraded { estimate } => assert_eq!(estimate, 9.0),
            _ => panic!("a panicked serve with a live fallback degrades"),
        }
        let panicked: std::thread::Result<ServeResponse> = Err(Box::new("batch panicked"));
        let settled = settle_sync_response(panicked, || panic!("fallback panics too"));
        assert!(matches!(settled, SyncResolution::Failed));
    }

    #[test]
    fn class_deadlines_override_per_class_and_inherit_the_default_when_unset() {
        let config = RuntimeConfig::default()
            .with_deadline_us(1_000)
            .with_class_deadline_us(SloClass::Batch, 50_000);
        assert_eq!(
            config.class_deadline(SloClass::Batch),
            Some(Duration::from_micros(50_000))
        );
        // Classes without an override inherit the base deadline.
        assert_eq!(
            config.class_deadline(SloClass::Interactive),
            Some(Duration::from_micros(1_000))
        );
        // Zero micros clears the override back to inheritance.
        let cleared = config.with_class_deadline_us(SloClass::Batch, 0);
        assert_eq!(
            cleared.class_deadline(SloClass::Batch),
            Some(Duration::from_micros(1_000))
        );
        // With no base deadline either, the class runs undeadlined.
        let bare = RuntimeConfig::default().with_class_deadline_us(SloClass::Interactive, 200);
        assert_eq!(bare.class_deadline(SloClass::Batch), None);
        assert_eq!(
            bare.class_deadline(SloClass::Interactive),
            Some(Duration::from_micros(200))
        );
    }
}
