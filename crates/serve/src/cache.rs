//! The bounded, sharded LRU cross-window estimate cache.
//!
//! PR 5's in-window coalescing only deduplicates queries that land in the *same* batch;
//! hot repeated traffic separated by more than one batching window recomputes every
//! time.  This cache extends the same idea across windows: the scheduler consults it at
//! batch-build time, so a hit resolves its tickets **without entering the compute path**
//! — an answer at memory latency, tagged [`Cached`](crate::EstimateSource::Cached).
//!
//! # Invalidation (version keys, never scans)
//!
//! Entries are keyed on `(canonical query hash, pool version, model version)` — the
//! discipline the per-shard anchor caches in `crn_core::service` already prove.  A
//! query's estimate reads matching anchors from *every* pool shard, so the pool half of
//! the key is the snapshot-wide [`PoolSnapshot::version`] (the strictly-monotonic sum of
//! the per-shard versions), not the query's own shard version: any maintenance upsert
//! anywhere bumps it, and a model hot-swap bumps the model version.  Fills use the
//! versions the serve response itself reports
//! ([`ServeResponse::pool_version`](crn_core::ServeResponse), `ServeStats::model_version`)
//! — the exact pairing the estimate was computed under — and probes use the versions a
//! serve issued now would take, so a hit is **bit-identical to recomputation** by
//! construction and stale entries can never match again; they simply age out of the LRU.
//!
//! Hash collisions cannot break parity either: every entry stores its query and a probe
//! must match it by equality, exactly like the scheduler's in-window coalescing.
//!
//! [`PoolSnapshot::version`]: crn_core::PoolSnapshot::version

use crn_query::ast::Query;
use std::collections::HashMap;
use std::sync::Mutex;

use crn_nn::parallel::lock_ignoring_poison;

/// How many independent shards (mutexes) a cache spreads its entries over — bounds
/// submit-side contention the same way the pool's storage shards do.
const CACHE_SHARDS: usize = 8;

/// One entry's full key: the canonical query hash plus the `(pool, model)` version
/// pairing the estimate was computed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    query_hash: u64,
    pool_version: u64,
    model_version: u64,
}

struct CacheEntry {
    /// The full query, equality-checked on every probe (canonical hashes can collide;
    /// a collision is a miss, never a wrong answer).
    query: Query,
    estimate: f64,
    /// LRU clock value of the last hit or fill (shard-local logical time).
    last_used: u64,
}

struct CacheShard {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    /// Shard-local logical clock, bumped on every touch.
    clock: u64,
}

impl CacheShard {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evicts the least-recently-used entry (capacity is ≥ 1 and the shard is full when
    /// this is called).
    fn evict_lru(&mut self) {
        if let Some(&key) = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(key, _)| key)
        {
            self.entries.remove(&key);
        }
    }
}

/// A bounded, sharded LRU map from `(canonical query hash, pool version, model version)`
/// to a computed estimate — see the [module docs](self) for the invalidation contract.
///
/// All methods take `&self`: probes and fills lock only the one shard the query hash
/// routes to.
pub struct EstimateCache {
    shards: Vec<Mutex<CacheShard>>,
}

impl std::fmt::Debug for EstimateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimateCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl EstimateCache {
    /// A cache bounded at `entries` total entries (≥ 1), spread over up to
    /// [`CACHE_SHARDS`] shards; per-shard capacities sum to exactly `entries`.  Small
    /// caches collapse to fewer shards so every shard keeps a useful LRU depth.
    pub fn new(entries: usize) -> Self {
        let entries = entries.max(1);
        let shards = (entries / 8).clamp(1, CACHE_SHARDS);
        EstimateCache {
            shards: (0..shards)
                .map(|index| {
                    // Distribute the bound: the first `entries % shards` shards hold one
                    // extra entry.
                    let capacity = entries / shards + usize::from(index < entries % shards);
                    Mutex::new(CacheShard {
                        entries: HashMap::with_capacity(capacity),
                        capacity,
                        clock: 0,
                    })
                })
                .collect(),
        }
    }

    fn shard_of(&self, query_hash: u64) -> &Mutex<CacheShard> {
        &self.shards[(query_hash % self.shards.len() as u64) as usize]
    }

    /// Probes for `query`'s estimate under the given version pairing, refreshing its LRU
    /// position on a hit.  `None` on absence, version mismatch, or a hash collision
    /// (the stored query must equal the probed one).
    pub fn lookup(
        &self,
        query: &Query,
        query_hash: u64,
        pool_version: u64,
        model_version: u64,
    ) -> Option<f64> {
        let key = CacheKey {
            query_hash,
            pool_version,
            model_version,
        };
        let mut shard = lock_ignoring_poison(self.shard_of(query_hash));
        let tick = shard.touch();
        let entry = shard.entries.get_mut(&key)?;
        if entry.query != *query {
            return None;
        }
        entry.last_used = tick;
        Some(entry.estimate)
    }

    /// Files a computed estimate under the version pairing its serve response reported,
    /// evicting the least-recently-used entry of the target shard when full.  Returns
    /// whether an eviction happened.  Re-filling an existing key (same query, same
    /// versions — bit-identical by the parity contract) just refreshes its LRU position.
    pub fn insert(
        &self,
        query: &Query,
        query_hash: u64,
        pool_version: u64,
        model_version: u64,
        estimate: f64,
    ) -> bool {
        let key = CacheKey {
            query_hash,
            pool_version,
            model_version,
        };
        let mut shard = lock_ignoring_poison(self.shard_of(query_hash));
        let tick = shard.touch();
        if let Some(entry) = shard.entries.get_mut(&key) {
            // Same key: either the same query (refresh) or a hash collision (newest
            // wins — lookups equality-check, so either resident entry is safe).
            entry.query = query.clone();
            entry.estimate = estimate;
            entry.last_used = tick;
            return false;
        }
        let evict = shard.entries.len() >= shard.capacity;
        if evict {
            shard.evict_lru();
        }
        shard.entries.insert(
            key,
            CacheEntry {
                query: query.clone(),
                estimate,
                last_used: tick,
            },
        );
        evict
    }

    /// Proactively drops every entry whose version pairing differs from the given
    /// current one, returning how many were purged.
    ///
    /// Stale generations can never *hit* (probes carry the current versions), so this
    /// changes no answer — but without it they linger until the LRU ages them out,
    /// wasting capacity that live entries could use.  The scheduler calls this once per
    /// observed `(pool, model)` version movement, so at million-entry pool scale a
    /// maintenance burst does not leave the cache full of dead weight.
    pub fn purge_stale(&self, pool_version: u64, model_version: u64) -> usize {
        let mut purged = 0usize;
        for shard in &self.shards {
            let mut shard = lock_ignoring_poison(shard);
            let before = shard.entries.len();
            shard.entries.retain(|key, _| {
                key.pool_version == pool_version && key.model_version == model_version
            });
            purged += before - shard.entries.len();
        }
        purged
    }

    /// Total entries currently resident (sums the shards; a point-in-time figure).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_ignoring_poison(shard).entries.len())
            .sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: &str) -> Query {
        Query::scan(table)
    }

    #[test]
    fn lookup_requires_exact_versions_and_query_equality() {
        let cache = EstimateCache::new(16);
        let query = scan("title");
        assert!(cache.lookup(&query, 1, 10, 2).is_none());
        cache.insert(&query, 1, 10, 2, 42.5);
        assert_eq!(cache.lookup(&query, 1, 10, 2), Some(42.5));
        // A bumped pool or model version is a miss: upserts and hot-swaps invalidate by
        // construction.
        assert!(cache.lookup(&query, 1, 11, 2).is_none());
        assert!(cache.lookup(&query, 1, 10, 3).is_none());
        // A hash collision (same key, different query) is a miss, never a wrong answer.
        let other = scan("cast_info");
        assert!(cache.lookup(&other, 1, 10, 2).is_none());
        // Newest-wins on a colliding fill; the displaced query stops hitting.
        cache.insert(&other, 1, 10, 2, 7.0);
        assert_eq!(cache.lookup(&other, 1, 10, 2), Some(7.0));
        assert!(cache.lookup(&query, 1, 10, 2).is_none());
    }

    #[test]
    fn capacity_is_bounded_and_eviction_is_lru() {
        // A 2-entry cache collapses to one shard of capacity 2, so the LRU order below
        // is fully deterministic.
        let cache = EstimateCache::new(2);
        let query = scan("title");
        assert!(!cache.insert(&query, 0, 1, 1, 1.0));
        assert!(!cache.insert(&query, 2, 1, 1, 2.0));
        assert_eq!(cache.len(), 2);
        // Touch hash 0 so hash 2 is the LRU victim.
        assert_eq!(cache.lookup(&query, 0, 1, 1), Some(1.0));
        assert!(cache.insert(&query, 4, 1, 1, 3.0), "full shard must evict");
        assert_eq!(cache.len(), 2, "the bound holds");
        assert_eq!(cache.lookup(&query, 0, 1, 1), Some(1.0), "MRU survives");
        assert!(cache.lookup(&query, 2, 1, 1).is_none(), "LRU evicted");
        assert_eq!(cache.lookup(&query, 4, 1, 1), Some(3.0));
        // Re-filling a resident key refreshes, never evicts.
        assert!(!cache.insert(&query, 0, 1, 1, 1.0));
        assert!(!cache.is_empty());
    }

    #[test]
    fn purge_stale_drops_exactly_the_dead_generations() {
        let cache = EstimateCache::new(64);
        let query = scan("title");
        // Three generations: two dead pairings and the live one.
        for hash in 0..5u64 {
            cache.insert(&query, hash, 1, 1, hash as f64);
        }
        for hash in 0..3u64 {
            cache.insert(&query, hash, 2, 1, hash as f64);
        }
        for hash in 0..4u64 {
            cache.insert(&query, hash, 2, 2, hash as f64);
        }
        assert_eq!(cache.len(), 12);
        assert_eq!(cache.purge_stale(2, 2), 8, "both dead generations drop");
        assert_eq!(cache.len(), 4);
        // Live entries still hit; purging again is a no-op.
        for hash in 0..4u64 {
            assert_eq!(cache.lookup(&query, hash, 2, 2), Some(hash as f64));
        }
        assert!(cache.lookup(&query, 0, 1, 1).is_none());
        assert_eq!(cache.purge_stale(2, 2), 0);
    }

    #[test]
    fn per_shard_capacities_sum_to_the_bound() {
        for entries in [1usize, 2, 7, 8, 9, 64, 1000] {
            let cache = EstimateCache::new(entries);
            let query = scan("title");
            // Fill far past the bound with distinct hashes; residency must never exceed
            // the configured total.
            for hash in 0..(entries as u64 * 3) {
                cache.insert(&query, hash, 1, 1, hash as f64);
            }
            assert_eq!(cache.len(), entries, "bound for {entries} entries");
        }
    }
}
