//! The pluggable compute backend the serving runtime schedules onto.
//!
//! PR 3–9 hard-wired [`ServeRuntime`](crate::ServeRuntime) to the in-process
//! [`EstimatorService`].  Distributed serving needs the same scheduler — admission,
//! batching windows, SLO classes, estimate cache, deadline shedding, supervision — over
//! a *cluster client* that scatters the batch to shard-owning worker processes instead
//! of the local worker pool.  [`ComputeBackend`] is that seam: the exact set of
//! operations the runtime's scheduler and maintenance lanes perform against their
//! service, with the in-process service as the canonical implementation.
//!
//! The contract every backend must keep:
//!
//! * [`serve`](ComputeBackend::serve) returns one estimate per input query, in input
//!   order, **bit-identical** to the sequential single-process path for every
//!   non-degraded slot (`ServeResponse::degraded` names the slots that are not).
//! * [`serve`](ComputeBackend::serve) never hangs indefinitely: a distributed backend
//!   bounds its waits (timeouts → degraded slots), so the scheduler thread can always
//!   make progress.
//! * [`fallback_estimate`](ComputeBackend::fallback_estimate) avoids the machinery
//!   `serve` runs on — it is what answers tickets *after* that machinery failed.

use crn_core::{EstimatorService, ServeResponse};
use crn_estimators::ContainmentEstimator;
use crn_query::ast::Query;

/// What the serving runtime requires of its compute tier.  Implemented by the
/// in-process [`EstimatorService`] (the canonical, bit-parity-pinned backend) and by
/// `crn-cluster`'s coordinator-side client (scatter/gather over worker processes).
pub trait ComputeBackend: Send + Sync + 'static {
    /// Serves a slice of concurrent queries: one estimate per query, in input order.
    /// Slots listed in [`ServeResponse::degraded`] were answered by a reduced-fidelity
    /// path (the runtime tags their tickets `Degraded` and keeps them out of the
    /// estimate cache); all other slots are bit-identical to sequential serving.
    fn serve(&self, queries: &[Query]) -> ServeResponse;

    /// The degraded answer for one query, off the main compute path (see
    /// [`EstimatorService::fallback_estimate`]).
    fn fallback_estimate(&self, query: &Query) -> f64;

    /// The `(pool version, model version)` pairing a `serve` issued right now would
    /// compute under — the estimate cache's probe key.
    fn serving_versions(&self) -> (u64, u64);

    /// Applies one observed `(query, true cardinality)` feedback record to the backing
    /// pool (the §5.2 refresh loop).  Called from the maintenance lane only.
    fn apply_feedback(&self, query: &Query, cardinality: u64);

    /// Folds a served estimate's q-error into the query's pool anchor retention weight;
    /// returns whether an anchor was updated.  Backends without retention tracking
    /// return `false`.
    fn record_retention(&self, query: &Query, q_error: f64) -> bool;

    /// Anchors the backing pool evicted so far (0 for unbounded or remote pools).
    fn pool_evictions(&self) -> u64;

    /// Compacts the backing pool (structural dedup, keeping the highest-retention
    /// anchor per shape); returns the number of entries merged away.  Backends that
    /// cannot compact in place return 0.
    fn compact(&self) -> usize;

    /// Human-readable backend name (for `Debug` and reports).
    fn name(&self) -> &str;
}

impl<M: ContainmentEstimator + Send + Sync + 'static> ComputeBackend for EstimatorService<M> {
    fn serve(&self, queries: &[Query]) -> ServeResponse {
        EstimatorService::serve(self, queries)
    }

    fn fallback_estimate(&self, query: &Query) -> f64 {
        EstimatorService::fallback_estimate(self, query)
    }

    fn serving_versions(&self) -> (u64, u64) {
        EstimatorService::serving_versions(self)
    }

    fn apply_feedback(&self, query: &Query, cardinality: u64) {
        self.pool().upsert(query.clone(), cardinality);
    }

    fn record_retention(&self, query: &Query, q_error: f64) -> bool {
        self.pool().record_feedback(query, q_error)
    }

    fn pool_evictions(&self) -> u64 {
        self.pool().evictions()
    }

    fn compact(&self) -> usize {
        self.pool().compact()
    }

    fn name(&self) -> &str {
        EstimatorService::name(self)
    }
}
