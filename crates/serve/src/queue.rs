//! The bounded MPSC submission queue and its admission control.
//!
//! Submitters push [`Request`]s under a mutex; the single scheduler thread pops batches.
//! Admission is *load-shedding*, never blocking: a submission against a full queue (or a
//! caller already at its fairness quota) returns [`SubmitError::Overloaded`] immediately,
//! so a overload surfaces as explicit rejections the caller can retry, shed or report —
//! exactly the behaviour a tail-latency budget wants, instead of unbounded queueing.

use crate::ticket::TicketCell;
use crn_query::ast::Query;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Why a submission was load-shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded submission queue is at its configured depth
    /// ([`RuntimeConfig::queue_depth`](crate::RuntimeConfig::queue_depth)).
    QueueFull,
    /// The submitting caller already has its fairness quota of pending requests
    /// ([`RuntimeConfig::per_caller_depth`](crate::RuntimeConfig::per_caller_depth)) —
    /// other callers' shares of the queue stay admissible.
    CallerQuota,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Load shed: the queue (or the caller's share of it) is full.  Retry later, shed, or
    /// fall back to a synchronous estimate.
    Overloaded {
        /// Which admission bound rejected the submission.
        reason: RejectReason,
        /// Requests pending in the queue at rejection time.
        pending: usize,
    },
    /// The runtime is shutting down and no longer admits work (already-admitted requests
    /// still complete — the scheduler drains the queue before exiting).
    ShuttingDown,
    /// A retrying submission ([`submit_retrying_for`]) exhausted its patience budget
    /// before admission succeeded — the backoff's deadline cap, so a closed-loop caller
    /// under sustained overload gets a bounded-latency "no" instead of parking forever.
    ///
    /// [`submit_retrying_for`]: crate::ServeRuntime::submit_retrying_for
    DeadlineExceeded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { reason, pending } => match reason {
                RejectReason::QueueFull => {
                    write!(f, "overloaded: submission queue full ({pending} pending)")
                }
                RejectReason::CallerQuota => write!(
                    f,
                    "overloaded: caller at its fairness quota ({pending} pending)"
                ),
            },
            SubmitError::ShuttingDown => write!(f, "runtime is shutting down"),
            SubmitError::DeadlineExceeded => {
                write!(f, "submission deadline exceeded while retrying admission")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One admitted request: the query, its completion cell and admission bookkeeping.
pub(crate) struct Request {
    pub(crate) caller: u64,
    pub(crate) query: Query,
    pub(crate) ticket: Arc<TicketCell>,
    pub(crate) enqueued: Instant,
    /// Absolute deadline after which the request must not be executed: the scheduler
    /// sheds it at batch-pop time and its ticket resolves
    /// [`Expired`](crate::ticket::TicketError::Expired).  `None` = no deadline.
    pub(crate) deadline: Option<Instant>,
}

/// The scheduler-facing queue state (guarded by the runtime's queue mutex).
pub(crate) struct QueueState {
    /// Admitted requests in arrival order.
    pub(crate) pending: VecDeque<Request>,
    /// Pending-request count per caller (entries removed at zero), enforcing the quota.
    pub(crate) per_caller: HashMap<u64, usize>,
    /// Requests popped into a batch that has not completed yet (drained by `flush`).
    pub(crate) in_flight: usize,
    /// Set once at shutdown: admissions stop, the scheduler drains and exits.
    pub(crate) closed: bool,
}

impl QueueState {
    pub(crate) fn new() -> Self {
        QueueState {
            pending: VecDeque::new(),
            per_caller: HashMap::new(),
            in_flight: 0,
            closed: false,
        }
    }

    /// Admission control: admits the query (returning its completion cell) or rejects it
    /// with the bound that failed.  `queue_depth` bounds total pending requests,
    /// `per_caller_depth` bounds one caller's share.
    pub(crate) fn admit(
        &mut self,
        caller: u64,
        query: Query,
        deadline: Option<Instant>,
        queue_depth: usize,
        per_caller_depth: usize,
    ) -> Result<Arc<TicketCell>, SubmitError> {
        if self.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if self.pending.len() >= queue_depth {
            return Err(SubmitError::Overloaded {
                reason: RejectReason::QueueFull,
                pending: self.pending.len(),
            });
        }
        let count = self.per_caller.entry(caller).or_insert(0);
        if *count >= per_caller_depth {
            return Err(SubmitError::Overloaded {
                reason: RejectReason::CallerQuota,
                pending: self.pending.len(),
            });
        }
        *count += 1;
        let ticket = TicketCell::new();
        self.pending.push_back(Request {
            caller,
            query,
            ticket: Arc::clone(&ticket),
            enqueued: Instant::now(),
            deadline,
        });
        Ok(ticket)
    }

    /// Releases one caller's quota share (on pop or deadline shed).
    fn release_quota(&mut self, caller: u64) {
        match self.per_caller.get_mut(&caller) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.per_caller.remove(&caller);
            }
        }
    }

    /// Removes every pending request whose deadline has passed at `now`, releasing its
    /// quota share, and returns them (arrival order) for the scheduler to resolve as
    /// expired.  Runs right before a batch pops, so no expired request ever executes.
    pub(crate) fn shed_expired(&mut self, now: Instant) -> Vec<Request> {
        if self
            .pending
            .iter()
            .all(|request| request.deadline.is_none_or(|deadline| deadline > now))
        {
            return Vec::new();
        }
        let mut kept = VecDeque::with_capacity(self.pending.len());
        let mut expired = Vec::new();
        for request in self.pending.drain(..) {
            match request.deadline {
                Some(deadline) if deadline <= now => expired.push(request),
                _ => kept.push_back(request),
            }
        }
        self.pending = kept;
        for request in &expired {
            self.release_quota(request.caller);
        }
        expired
    }

    /// Pops up to `max` requests in arrival order into a batch, releasing their callers'
    /// quota shares and counting them in flight.
    pub(crate) fn pop_batch(&mut self, max: usize) -> Vec<Request> {
        let take = self.pending.len().min(max);
        let batch: Vec<Request> = self.pending.drain(..take).collect();
        for request in &batch {
            self.release_quota(request.caller);
        }
        self.in_flight += batch.len();
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> Query {
        Query::scan("title")
    }

    #[test]
    fn admission_enforces_queue_depth_and_caller_quota() {
        let mut state = QueueState::new();
        // Caller 1 fills its quota of 2; the third submission is shed with CallerQuota
        // while caller 2 is still admissible — per-caller fairness.
        assert!(state.admit(1, query(), None, 4, 2).is_ok());
        assert!(state.admit(1, query(), None, 4, 2).is_ok());
        assert_eq!(
            state.admit(1, query(), None, 4, 2).map(|_| ()).unwrap_err(),
            SubmitError::Overloaded {
                reason: RejectReason::CallerQuota,
                pending: 2,
            }
        );
        assert!(state.admit(2, query(), None, 4, 2).is_ok());
        assert!(state.admit(3, query(), None, 4, 2).is_ok());
        // The queue itself is now at depth 4: even a fresh caller is shed.
        let rejection = state.admit(4, query(), None, 4, 2).map(|_| ()).unwrap_err();
        assert_eq!(
            rejection,
            SubmitError::Overloaded {
                reason: RejectReason::QueueFull,
                pending: 4,
            }
        );
        assert!(rejection.to_string().contains("queue full"));

        // Popping a batch releases quota shares: caller 1 can submit again.
        let batch = state.pop_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(state.in_flight, 3);
        assert_eq!(state.pending.len(), 1);
        assert!(state.admit(1, query(), None, 4, 2).is_ok());

        // Closing stops admission entirely.
        state.closed = true;
        assert_eq!(
            state.admit(9, query(), None, 4, 2).map(|_| ()).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn shed_expired_removes_only_passed_deadlines_and_releases_quota() {
        let mut state = QueueState::new();
        let now = Instant::now();
        let passed = Some(now - std::time::Duration::from_millis(1));
        let future = Some(now + std::time::Duration::from_secs(60));
        state.admit(1, query(), passed, 8, 8).expect("admitted");
        state.admit(1, query(), future, 8, 8).expect("admitted");
        state.admit(2, query(), None, 8, 8).expect("admitted");
        state.admit(2, query(), passed, 8, 8).expect("admitted");

        let expired = state.shed_expired(now);
        assert_eq!(
            expired.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(state.pending.len(), 2);
        assert_eq!(state.per_caller[&1], 1);
        assert_eq!(state.per_caller[&2], 1);
        assert_eq!(state.in_flight, 0, "shed requests never count in flight");
        // Nothing else is due yet: the scan sheds nothing and keeps the order.
        assert!(state
            .shed_expired(now + std::time::Duration::from_secs(1))
            .is_empty());
        assert_eq!(state.pending.len(), 2);
        // Once the future deadline passes, it sheds too; the deadline-free request stays.
        let late = state.shed_expired(now + std::time::Duration::from_secs(61));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].caller, 1);
        assert_eq!(state.pending.len(), 1);
        assert!(!state.per_caller.contains_key(&1));
    }

    #[test]
    fn pop_batch_respects_arrival_order_and_max() {
        let mut state = QueueState::new();
        for caller in 0..5u64 {
            state
                .admit(caller, query(), None, 16, 16)
                .expect("admitted");
        }
        let first = state.pop_batch(2);
        assert_eq!(
            first.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let rest = state.pop_batch(16);
        assert_eq!(
            rest.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(state.per_caller.is_empty(), "all quota shares released");
        assert_eq!(state.in_flight, 5);
        assert!(state.pop_batch(4).is_empty());
    }
}
