//! The bounded MPSC submission queue and its admission control.
//!
//! Submitters push [`Request`]s under a mutex; the single scheduler thread pops batches.
//! Admission is *load-shedding*, never blocking: a submission against a full queue (or a
//! caller already at its fairness quota, or a class at its weighted share) returns
//! [`SubmitError::Overloaded`] immediately, so an overload surfaces as explicit
//! rejections the caller can retry, shed or report — exactly the behaviour a
//! tail-latency budget wants, instead of unbounded queueing.
//!
//! Requests carry an [`SloClass`]: pending requests queue **per class** (each class has
//! its own arrival-ordered lane and its own batching window — see
//! [`RuntimeConfig::class_window`](crate::RuntimeConfig::class_window)), and weighted
//! admission bounds each class's share of the queue depth so batch/replay traffic can
//! never occupy the slots interactive traffic needs.

use crate::ticket::TicketCell;
use crn_query::ast::Query;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// The latency SLO class a caller registers for (see
/// [`ServeRuntime::register_caller`](crate::ServeRuntime::register_caller)).
///
/// Each class gets its **own batching window** (interactive ≈ 100µs — latency first;
/// batch ≈ multi-ms — fusion first) and its **own weighted share of the queue depth**
/// ([`RuntimeConfig::class_weights`](crate::RuntimeConfig::class_weights)), and the
/// scheduler always closes the most urgent eligible class's batch first.  Extensible:
/// everything downstream indexes [`SloClass::ALL`], so adding a class is adding a
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// Latency-sensitive foreground traffic (the default for unregistered callers —
    /// exactly the pre-class behaviour).
    #[default]
    Interactive,
    /// Throughput-oriented background traffic (replay, backfill, analytics): longer
    /// batching windows, a bounded share of the queue, and never able to starve
    /// interactive callers.
    Batch,
}

impl SloClass {
    /// Number of classes (the length of every per-class array in the runtime).
    pub const COUNT: usize = 2;

    /// All classes, in priority order (used for deterministic tie-breaks: when two
    /// classes are equally urgent, the earlier one closes first).
    pub const ALL: [SloClass; SloClass::COUNT] = [SloClass::Interactive, SloClass::Batch];

    /// The class's index into per-class arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// A short stable name for reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Batch => "batch",
        }
    }
}

/// Why a submission was load-shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded submission queue is at its configured depth
    /// ([`RuntimeConfig::queue_depth`](crate::RuntimeConfig::queue_depth)).
    QueueFull,
    /// The submitting caller already has its fairness quota of pending requests
    /// ([`RuntimeConfig::per_caller_depth`](crate::RuntimeConfig::per_caller_depth)) —
    /// other callers' shares of the queue stay admissible.
    CallerQuota,
    /// The submitting caller's [`SloClass`] already holds its weighted share of the
    /// queue depth ([`RuntimeConfig::class_weights`](crate::RuntimeConfig::class_weights))
    /// — other classes' shares stay admissible, which is exactly how batch traffic is
    /// kept from starving interactive callers.
    ClassShare,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Load shed: the queue (or the caller's / the class's share of it) is full.  Retry
    /// later, shed, or fall back to a synchronous estimate.
    Overloaded {
        /// Which admission bound rejected the submission.
        reason: RejectReason,
        /// Requests pending in the queue at rejection time.
        pending: usize,
    },
    /// The runtime is shutting down and no longer admits work (already-admitted requests
    /// still complete — the scheduler drains the queue before exiting).
    ShuttingDown,
    /// A retrying submission ([`submit_retrying_for`]) exhausted its patience budget
    /// before admission succeeded — the backoff's deadline cap, so a closed-loop caller
    /// under sustained overload gets a bounded-latency "no" instead of parking forever.
    ///
    /// [`submit_retrying_for`]: crate::ServeRuntime::submit_retrying_for
    DeadlineExceeded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { reason, pending } => match reason {
                RejectReason::QueueFull => {
                    write!(f, "overloaded: submission queue full ({pending} pending)")
                }
                RejectReason::CallerQuota => write!(
                    f,
                    "overloaded: caller at its fairness quota ({pending} pending)"
                ),
                RejectReason::ClassShare => write!(
                    f,
                    "overloaded: SLO class at its weighted queue share ({pending} pending)"
                ),
            },
            SubmitError::ShuttingDown => write!(f, "runtime is shutting down"),
            SubmitError::DeadlineExceeded => {
                write!(f, "submission deadline exceeded while retrying admission")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One admitted request: the query, its completion cell and admission bookkeeping.
pub(crate) struct Request {
    pub(crate) caller: u64,
    pub(crate) query: Query,
    pub(crate) ticket: Arc<TicketCell>,
    pub(crate) enqueued: Instant,
    /// Absolute deadline after which the request must not be executed: the scheduler
    /// sheds it at batch-pop time and its ticket resolves
    /// [`Expired`](crate::ticket::TicketError::Expired).  `None` = no deadline.
    pub(crate) deadline: Option<Instant>,
    /// The trace minted at submission when observability is enabled (`None` on the
    /// zero-overhead disabled path) — carried to the scheduler, which fills in the
    /// per-segment [`RequestTrace`](crn_obs::RequestTrace) at resolution.
    pub(crate) trace: Option<crn_obs::TraceStart>,
}

/// The scheduler-facing queue state (guarded by the runtime's queue mutex).
pub(crate) struct QueueState {
    /// Admitted requests in arrival order, one lane per [`SloClass`] (indexed by
    /// [`SloClass::index`]): batches are single-class, so each class's window and the
    /// most-urgent-first close decision stay independent.
    pub(crate) pending: [VecDeque<Request>; SloClass::COUNT],
    /// Pending-request count per caller (entries removed at zero), enforcing the quota.
    /// Invariant (proptest-pinned): for every caller, the entry equals its pending
    /// requests summed across class lanes — and there is **no** entry at zero.
    pub(crate) per_caller: HashMap<u64, usize>,
    /// Requests popped into a batch that has not completed yet (drained by `flush`).
    pub(crate) in_flight: usize,
    /// Set once at shutdown: admissions stop, the scheduler drains and exits.
    pub(crate) closed: bool,
}

impl QueueState {
    pub(crate) fn new() -> Self {
        QueueState {
            pending: std::array::from_fn(|_| VecDeque::new()),
            per_caller: HashMap::new(),
            in_flight: 0,
            closed: false,
        }
    }

    /// Total pending requests across all class lanes (what `queue_depth` bounds).
    pub(crate) fn total_pending(&self) -> usize {
        self.pending.iter().map(|lane| lane.len()).sum()
    }

    /// Pending requests in one class's lane.
    pub(crate) fn pending_in(&self, class: SloClass) -> usize {
        self.pending[class.index()].len()
    }

    /// The enqueue instant of the oldest pending request in one class's lane (what that
    /// class's batching window is measured from).
    pub(crate) fn oldest(&self, class: SloClass) -> Option<Instant> {
        self.pending[class.index()].front().map(|r| r.enqueued)
    }

    /// Admission control: admits the query (returning its completion cell) or rejects it
    /// with the bound that failed.  `queue_depth` bounds total pending requests,
    /// `class_share` bounds the class's lane (pass `queue_depth` for an unconstrained
    /// class), `per_caller_depth` bounds one caller's share.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit(
        &mut self,
        caller: u64,
        class: SloClass,
        query: Query,
        deadline: Option<Instant>,
        trace: Option<crn_obs::TraceStart>,
        queue_depth: usize,
        per_caller_depth: usize,
        class_share: usize,
    ) -> Result<Arc<TicketCell>, SubmitError> {
        if self.closed {
            return Err(SubmitError::ShuttingDown);
        }
        let total = self.total_pending();
        if total >= queue_depth {
            return Err(SubmitError::Overloaded {
                reason: RejectReason::QueueFull,
                pending: total,
            });
        }
        if self.pending_in(class) >= class_share {
            return Err(SubmitError::Overloaded {
                reason: RejectReason::ClassShare,
                pending: total,
            });
        }
        // Check the quota BEFORE touching the map: `entry(..).or_insert(0)` here used to
        // leave a permanent zeroed entry behind every rejection, so a rejection storm
        // from many distinct callers grew `per_caller` without bound.
        if self.per_caller.get(&caller).copied().unwrap_or(0) >= per_caller_depth {
            return Err(SubmitError::Overloaded {
                reason: RejectReason::CallerQuota,
                pending: total,
            });
        }
        *self.per_caller.entry(caller).or_insert(0) += 1;
        let ticket = TicketCell::new();
        self.pending[class.index()].push_back(Request {
            caller,
            query,
            ticket: Arc::clone(&ticket),
            enqueued: Instant::now(),
            deadline,
            trace,
        });
        Ok(ticket)
    }

    /// Releases one caller's quota share (on pop or deadline shed).
    fn release_quota(&mut self, caller: u64) {
        match self.per_caller.get_mut(&caller) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.per_caller.remove(&caller);
            }
        }
    }

    /// Removes every pending request whose deadline has passed at `now`, releasing its
    /// quota share, and returns them (class-priority order, arrival order within a
    /// class) for the scheduler to resolve as expired.  Runs right before a batch pops,
    /// so no expired request ever executes.
    pub(crate) fn shed_expired(&mut self, now: Instant) -> Vec<Request> {
        if self
            .pending
            .iter()
            .flatten()
            .all(|request| request.deadline.is_none_or(|deadline| deadline > now))
        {
            return Vec::new();
        }
        let mut expired = Vec::new();
        for lane in &mut self.pending {
            let mut kept = VecDeque::with_capacity(lane.len());
            for request in lane.drain(..) {
                match request.deadline {
                    Some(deadline) if deadline <= now => expired.push(request),
                    _ => kept.push_back(request),
                }
            }
            *lane = kept;
        }
        for request in &expired {
            self.release_quota(request.caller);
        }
        expired
    }

    /// Pops up to `max` requests of one class in arrival order into a batch, releasing
    /// their callers' quota shares and counting them in flight.
    pub(crate) fn pop_batch(&mut self, class: SloClass, max: usize) -> Vec<Request> {
        let lane = &mut self.pending[class.index()];
        let take = lane.len().min(max);
        let batch: Vec<Request> = lane.drain(..take).collect();
        for request in &batch {
            self.release_quota(request.caller);
        }
        self.in_flight += batch.len();
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> Query {
        Query::scan("title")
    }

    /// Interactive-class admission with an unconstrained class share — the pre-class
    /// admission shape every legacy call maps to.
    fn admit_plain(
        state: &mut QueueState,
        caller: u64,
        deadline: Option<Instant>,
        queue_depth: usize,
        per_caller_depth: usize,
    ) -> Result<Arc<TicketCell>, SubmitError> {
        state.admit(
            caller,
            SloClass::Interactive,
            query(),
            deadline,
            None,
            queue_depth,
            per_caller_depth,
            queue_depth,
        )
    }

    #[test]
    fn admission_enforces_queue_depth_and_caller_quota() {
        let mut state = QueueState::new();
        // Caller 1 fills its quota of 2; the third submission is shed with CallerQuota
        // while caller 2 is still admissible — per-caller fairness.
        assert!(admit_plain(&mut state, 1, None, 4, 2).is_ok());
        assert!(admit_plain(&mut state, 1, None, 4, 2).is_ok());
        assert_eq!(
            admit_plain(&mut state, 1, None, 4, 2)
                .map(|_| ())
                .unwrap_err(),
            SubmitError::Overloaded {
                reason: RejectReason::CallerQuota,
                pending: 2,
            }
        );
        assert!(admit_plain(&mut state, 2, None, 4, 2).is_ok());
        assert!(admit_plain(&mut state, 3, None, 4, 2).is_ok());
        // The queue itself is now at depth 4: even a fresh caller is shed.
        let rejection = admit_plain(&mut state, 4, None, 4, 2)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            rejection,
            SubmitError::Overloaded {
                reason: RejectReason::QueueFull,
                pending: 4,
            }
        );
        assert!(rejection.to_string().contains("queue full"));

        // Popping a batch releases quota shares: caller 1 can submit again.
        let batch = state.pop_batch(SloClass::Interactive, 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(state.in_flight, 3);
        assert_eq!(state.total_pending(), 1);
        assert!(admit_plain(&mut state, 1, None, 4, 2).is_ok());

        // Closing stops admission entirely.
        state.closed = true;
        assert_eq!(
            admit_plain(&mut state, 9, None, 4, 2)
                .map(|_| ())
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn rejected_callers_leave_no_quota_entries() {
        // Regression: `admit` used to insert a zeroed `per_caller` entry *before* the
        // quota check, so every rejected caller left a permanent entry behind and the
        // map grew without bound under a rejection storm from distinct callers.
        let mut state = QueueState::new();
        for caller in 0..64u64 {
            assert_eq!(
                admit_plain(&mut state, caller, None, 64, 0)
                    .map(|_| ())
                    .unwrap_err(),
                SubmitError::Overloaded {
                    reason: RejectReason::CallerQuota,
                    pending: 0,
                }
            );
        }
        assert!(
            state.per_caller.is_empty(),
            "zero-quota rejections must not create quota entries"
        );

        // Same under a queue-full storm: fill the queue, then reject a wave of fresh
        // callers — the map keeps exactly the admitted callers.
        for caller in 0..4u64 {
            assert!(admit_plain(&mut state, caller, None, 4, 4).is_ok());
        }
        for caller in 100..164u64 {
            assert!(admit_plain(&mut state, caller, None, 4, 4).is_err());
        }
        assert_eq!(state.per_caller.len(), 4, "only admitted callers tracked");

        // And under class-share rejections: a capped class sheds without touching the
        // quota map either.
        for caller in 200..232u64 {
            assert_eq!(
                state
                    .admit(caller, SloClass::Batch, query(), None, None, 64, 64, 0)
                    .map(|_| ())
                    .unwrap_err(),
                SubmitError::Overloaded {
                    reason: RejectReason::ClassShare,
                    pending: 4,
                }
            );
        }
        assert_eq!(state.per_caller.len(), 4);
    }

    #[test]
    fn class_share_bounds_one_class_while_others_stay_admissible() {
        let mut state = QueueState::new();
        // Batch's share is 2 of depth 8: the third batch submission sheds with
        // ClassShare...
        assert!(state
            .admit(7, SloClass::Batch, query(), None, None, 8, 8, 2)
            .is_ok());
        assert!(state
            .admit(7, SloClass::Batch, query(), None, None, 8, 8, 2)
            .is_ok());
        let rejection = state
            .admit(7, SloClass::Batch, query(), None, None, 8, 8, 2)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            rejection,
            SubmitError::Overloaded {
                reason: RejectReason::ClassShare,
                pending: 2,
            }
        );
        assert!(rejection.to_string().contains("weighted queue share"));
        // ...while interactive traffic still has the rest of the queue: the starvation
        // guarantee in one assertion.
        for caller in 0..6u64 {
            assert!(state
                .admit(caller, SloClass::Interactive, query(), None, None, 8, 8, 6)
                .is_ok());
        }
        assert_eq!(state.total_pending(), 8);
        assert_eq!(state.pending_in(SloClass::Batch), 2);
        assert_eq!(state.pending_in(SloClass::Interactive), 6);
        // Lanes pop independently, in arrival order.
        let batch = state.pop_batch(SloClass::Batch, 8);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|r| r.caller == 7));
        assert_eq!(state.pending_in(SloClass::Interactive), 6);
    }

    #[test]
    fn shed_expired_removes_only_passed_deadlines_and_releases_quota() {
        let mut state = QueueState::new();
        let now = Instant::now();
        let passed = Some(now - std::time::Duration::from_millis(1));
        let future = Some(now + std::time::Duration::from_secs(60));
        admit_plain(&mut state, 1, passed, 8, 8).expect("admitted");
        admit_plain(&mut state, 1, future, 8, 8).expect("admitted");
        admit_plain(&mut state, 2, None, 8, 8).expect("admitted");
        admit_plain(&mut state, 2, passed, 8, 8).expect("admitted");

        let expired = state.shed_expired(now);
        assert_eq!(
            expired.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(state.total_pending(), 2);
        assert_eq!(state.per_caller[&1], 1);
        assert_eq!(state.per_caller[&2], 1);
        assert_eq!(state.in_flight, 0, "shed requests never count in flight");
        // Nothing else is due yet: the scan sheds nothing and keeps the order.
        assert!(state
            .shed_expired(now + std::time::Duration::from_secs(1))
            .is_empty());
        assert_eq!(state.total_pending(), 2);
        // Once the future deadline passes, it sheds too; the deadline-free request stays.
        let late = state.shed_expired(now + std::time::Duration::from_secs(61));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].caller, 1);
        assert_eq!(state.total_pending(), 1);
        assert!(!state.per_caller.contains_key(&1));
    }

    #[test]
    fn shed_expired_covers_every_class_lane() {
        let mut state = QueueState::new();
        let now = Instant::now();
        let passed = Some(now - std::time::Duration::from_millis(1));
        state
            .admit(1, SloClass::Interactive, query(), passed, None, 8, 8, 8)
            .expect("admitted");
        state
            .admit(2, SloClass::Batch, query(), passed, None, 8, 8, 8)
            .expect("admitted");
        state
            .admit(3, SloClass::Batch, query(), None, None, 8, 8, 8)
            .expect("admitted");
        let expired = state.shed_expired(now);
        assert_eq!(
            expired.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![1, 2],
            "class-priority order, arrival order within a class"
        );
        assert_eq!(state.pending_in(SloClass::Batch), 1);
        assert_eq!(state.per_caller.len(), 1);
    }

    #[test]
    fn pop_batch_respects_arrival_order_and_max() {
        let mut state = QueueState::new();
        for caller in 0..5u64 {
            admit_plain(&mut state, caller, None, 16, 16).expect("admitted");
        }
        let first = state.pop_batch(SloClass::Interactive, 2);
        assert_eq!(
            first.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let rest = state.pop_batch(SloClass::Interactive, 16);
        assert_eq!(
            rest.iter().map(|r| r.caller).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(state.per_caller.is_empty(), "all quota shares released");
        assert_eq!(state.in_flight, 5);
        assert!(state.pop_batch(SloClass::Interactive, 4).is_empty());
    }

    /// Satellite property test: the quota map is *exactly* the pending counts under any
    /// interleaving of admissions, deadline sheds and per-class batch pops — no stale
    /// entries, no zero entries, no drift (the invariant the weighted-admission layer is
    /// built on).
    mod quota_props {
        use super::*;
        use proptest::prelude::*;

        /// A tiny deterministic PRNG (splitmix64) deriving an op sequence from one
        /// sampled seed — the vendored `proptest` shim provides range strategies only.
        struct OpRng(u64);

        impl OpRng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }

        proptest! {
            #[test]
            fn per_caller_always_equals_pending_counts(
                seed in 0u64..1_000_000,
                op_count in 1usize..80,
            ) {
                let mut rng = OpRng(seed);
                let mut state = QueueState::new();
                let epoch = Instant::now();
                for _ in 0..op_count {
                    match rng.next() % 4 {
                        // Admissions dominate the mix so pops and sheds have work.
                        0 | 1 => {
                            let caller = rng.next() % 6;
                            let class = SloClass::ALL[(rng.next() % SloClass::COUNT as u64) as usize];
                            // An already-passed deadline makes the request sheddable on
                            // the next `shed_expired`; a far-future one never sheds.
                            let deadline = if rng.next().is_multiple_of(2) {
                                Some(epoch)
                            } else {
                                Some(epoch + std::time::Duration::from_secs(3600))
                            };
                            let _ = state.admit(caller, class, query(), deadline, None, 12, 4, 8);
                        }
                        2 => {
                            let _ = state.shed_expired(Instant::now());
                        }
                        _ => {
                            let class = SloClass::ALL[(rng.next() % SloClass::COUNT as u64) as usize];
                            let max = (rng.next() % 9) as usize;
                            let _ = state.pop_batch(class, max);
                        }
                    }
                    let mut recount: HashMap<u64, usize> = HashMap::new();
                    for request in state.pending.iter().flatten() {
                        *recount.entry(request.caller).or_insert(0) += 1;
                    }
                    // The quota map must equal the recounted pending requests exactly.
                    prop_assert_eq!(&recount, &state.per_caller);
                    prop_assert!(
                        state.per_caller.values().all(|&count| count > 0),
                        "no zero entries may linger"
                    );
                }
            }
        }
    }
}
