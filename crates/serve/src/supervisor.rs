//! Thread supervision: bounded panic-restart budgets for the runtime's background lanes.
//!
//! PR 4's containment strategy (`catch_unwind` around every batch and upsert) keeps a
//! *contained* panic from killing a thread — but a panic that escapes containment (a bug
//! in the loop itself, or an injected [`FaultSite::SchedulerLoop`]-class fault) used to
//! leave the thread dead for the life of the process: queued requests would hang and the
//! pool would silently stop refreshing.  The [`Supervisor`] replaces stay-dead with the
//! classic restart policy: a panicked lane is restarted **with its queues intact** (all
//! lane state lives in the runtime's shared block, not on the dead thread's stack), up
//! to [`SupervisorPolicy::max_restarts`] times per [`SupervisorPolicy::restart_window`].
//! A lane that breaches the budget is declared *degraded* — a crash loop should fail
//! loudly into a reduced mode (the scheduler degrades to synchronous serving, the
//! maintenance lane starts shedding records), never burn CPU restarting forever.
//!
//! The supervisor itself holds no thread handles: each supervised thread wraps its own
//! loop in `catch_unwind` and *asks* the supervisor for a verdict after a panic
//! ([`Supervisor::on_panic`]).  That keeps restart free of spawn races — the thread
//! never actually exits on `Restart`, it re-enters its loop after the runtime's
//! recovery hook reconciled the shared state.
//!
//! [`FaultSite::SchedulerLoop`]: crate::FaultSite::SchedulerLoop

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crn_nn::parallel::lock_ignoring_poison;
use std::sync::Mutex;

/// The scheduler lane's supervision key.
pub const LANE_SCHEDULER: &str = "scheduler";
/// The maintenance lane's supervision key.
pub const LANE_MAINTENANCE: &str = "maintenance";
/// The background refresh worker's supervision key (`crn-online`).
pub const LANE_REFRESH: &str = "refresh";

/// Restart budget of one supervised lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Panics a lane may survive (be restarted after) within one `restart_window`
    /// before it is degraded.  0 degrades on the first escaped panic.
    pub max_restarts: u32,
    /// The sliding budget window.  A panic after a quiet window resets the count — a
    /// lane that panics once an hour is healthy-ish; one that panics three times in a
    /// second is crash-looping.
    pub restart_window: Duration,
}

impl Default for SupervisorPolicy {
    /// Three restarts per 60 s window — generous for real incidents, tight enough that
    /// the chaos suite can breach it deterministically with four scripted kills.
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            restart_window: Duration::from_secs(60),
        }
    }
}

impl SupervisorPolicy {
    /// Sets the per-window restart budget (the `--restart-budget` CLI knob).
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }
}

/// The verdict after an escaped panic: re-enter the loop, or give the lane up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// Within budget: the lane re-enters its loop (queues intact).
    Restart,
    /// Budget breached: the lane stays down and the runtime drops to its degraded mode.
    Degrade,
}

/// Per-lane restart bookkeeping.
#[derive(Debug)]
struct LaneState {
    window_start: Instant,
    in_window: u32,
    restarts: u64,
    panics: u64,
    degraded: bool,
}

/// The restart-policy arbiter shared by the runtime's lanes (and the refresh worker).
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    lanes: Mutex<HashMap<&'static str, LaneState>>,
}

impl Supervisor {
    /// Creates a supervisor with the given policy.
    pub fn new(policy: SupervisorPolicy) -> Self {
        Supervisor {
            policy,
            lanes: Mutex::new(HashMap::new()),
        }
    }

    /// The supervisor's policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Records an escaped panic on `lane` and returns the restart verdict.  Called by
    /// the lane's own supervision wrapper after its loop body unwound (and after the
    /// runtime's recovery hook reconciled shared state).
    pub fn on_panic(&self, lane: &'static str) -> SupervisorVerdict {
        let mut lanes = lock_ignoring_poison(&self.lanes);
        let now = Instant::now();
        let state = lanes.entry(lane).or_insert(LaneState {
            window_start: now,
            in_window: 0,
            restarts: 0,
            panics: 0,
            degraded: false,
        });
        state.panics += 1;
        if state.degraded {
            return SupervisorVerdict::Degrade;
        }
        if now.duration_since(state.window_start) > self.policy.restart_window {
            state.window_start = now;
            state.in_window = 0;
        }
        if state.in_window >= self.policy.max_restarts {
            state.degraded = true;
            SupervisorVerdict::Degrade
        } else {
            state.in_window += 1;
            state.restarts += 1;
            SupervisorVerdict::Restart
        }
    }

    /// Restarts granted to `lane` so far (panics that came back up).
    pub fn restarts(&self, lane: &str) -> u64 {
        lock_ignoring_poison(&self.lanes)
            .get(lane)
            .map_or(0, |state| state.restarts)
    }

    /// Escaped panics observed on `lane` (granted or not).
    pub fn panics(&self, lane: &str) -> u64 {
        lock_ignoring_poison(&self.lanes)
            .get(lane)
            .map_or(0, |state| state.panics)
    }

    /// Restarts granted across all lanes (the "recoveries" figure of `BENCH_chaos.json`).
    pub fn total_restarts(&self) -> u64 {
        lock_ignoring_poison(&self.lanes)
            .values()
            .map(|state| state.restarts)
            .sum()
    }

    /// Whether `lane` has breached its budget and stays down.
    pub fn degraded(&self, lane: &str) -> bool {
        lock_ignoring_poison(&self.lanes)
            .get(lane)
            .is_some_and(|state| state.degraded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_grants_restarts_then_degrades_and_stays_degraded() {
        let supervisor = Supervisor::new(SupervisorPolicy {
            max_restarts: 2,
            restart_window: Duration::from_secs(3600),
        });
        assert_eq!(
            supervisor.on_panic(LANE_SCHEDULER),
            SupervisorVerdict::Restart
        );
        assert_eq!(
            supervisor.on_panic(LANE_SCHEDULER),
            SupervisorVerdict::Restart
        );
        assert_eq!(
            supervisor.on_panic(LANE_SCHEDULER),
            SupervisorVerdict::Degrade
        );
        // Degradation is sticky even though the window is long gone.
        assert_eq!(
            supervisor.on_panic(LANE_SCHEDULER),
            SupervisorVerdict::Degrade
        );
        assert_eq!(supervisor.restarts(LANE_SCHEDULER), 2);
        assert_eq!(supervisor.panics(LANE_SCHEDULER), 4);
        assert!(supervisor.degraded(LANE_SCHEDULER));
        // Lanes budget independently.
        assert!(!supervisor.degraded(LANE_MAINTENANCE));
        assert_eq!(
            supervisor.on_panic(LANE_MAINTENANCE),
            SupervisorVerdict::Restart
        );
        assert_eq!(supervisor.total_restarts(), 3);
    }

    #[test]
    fn a_quiet_window_resets_the_budget() {
        let supervisor = Supervisor::new(SupervisorPolicy {
            max_restarts: 1,
            restart_window: Duration::from_millis(10),
        });
        assert_eq!(
            supervisor.on_panic(LANE_REFRESH),
            SupervisorVerdict::Restart
        );
        std::thread::sleep(Duration::from_millis(25));
        // The earlier panic fell out of the window: the budget is fresh again.
        assert_eq!(
            supervisor.on_panic(LANE_REFRESH),
            SupervisorVerdict::Restart
        );
        assert_eq!(supervisor.restarts(LANE_REFRESH), 2);
        assert!(!supervisor.degraded(LANE_REFRESH));
    }

    #[test]
    fn zero_budget_degrades_on_the_first_panic() {
        let supervisor = Supervisor::new(SupervisorPolicy::default().with_max_restarts(0));
        assert_eq!(
            supervisor.on_panic(LANE_MAINTENANCE),
            SupervisorVerdict::Degrade
        );
        assert_eq!(supervisor.restarts(LANE_MAINTENANCE), 0);
    }
}
