//! Deterministic fault injection: scripted panics and write failures at named sites.
//!
//! Chaos testing a concurrent runtime is only useful when the chaos is *reproducible*:
//! a fault that fires "sometimes, under load" cannot pin an invariant in CI.  Every
//! fault here is therefore triggered by an **occurrence count** at a [`FaultSite`] — the
//! Nth batch execution, the Nth maintenance-record application — never by wall-clock
//! time or randomness, so the same [`FaultPlan`] against the same workload kills the
//! same thread at the same point on every run and at every `THREADS` setting.
//!
//! The runtime consults one [`FaultInjector`] (default: the empty plan, a handful of
//! relaxed atomic increments on the hot paths).  Sites are chosen so that each shipped
//! plan exercises a *different* layer of the resilience stack:
//!
//! * [`FaultSite::BatchExecute`] panics **inside** the scheduler's containment — the
//!   degraded-answer path resolves the tickets;
//! * [`FaultSite::SchedulerLoop`] / [`FaultSite::MaintenanceLoop`] panic **outside** any
//!   containment — the thread genuinely dies and the
//!   [`Supervisor`](crate::Supervisor) restart path is exercised;
//! * [`FaultSite::MaintenanceUpsert`] panics inside the upsert containment — the lane
//!   counts the failure and keeps draining;
//! * [`FaultSite::CheckpointWrite`] fails the write without a panic — the cadence
//!   counts it and retries later;
//! * [`FaultSite::RefreshCycle`] panics the background refresh worker
//!   (`crn-online`) — its supervised loop restarts it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crn_nn::parallel::lock_ignoring_poison;

/// Number of distinct [`FaultSite`]s (sizes the per-site arrival counters).
const SITE_COUNT: usize = 7;

/// Where in the serving stack a scripted fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Inside the scheduler's batch-execution containment (the "model panics on batch
    /// N" fault): tickets resolve through the degraded fallback path.
    BatchExecute,
    /// In the scheduler loop, outside every containment, right after a batch was popped:
    /// the scheduler thread dies mid-batch and the supervisor must restart it with the
    /// queue (and the orphaned batch's tickets) intact.
    SchedulerLoop,
    /// Inside the maintenance lane's upsert containment: the record fails, the lane
    /// survives on its own.
    MaintenanceUpsert,
    /// In the maintenance loop, outside containment, mid-record (after the pop, before
    /// the upsert): the lane thread dies and the supervisor restarts it.
    MaintenanceLoop,
    /// Fails a checkpoint write (no panic — an I/O-error stand-in): counted in
    /// [`RuntimeStats::checkpoints_failed`](crate::RuntimeStats::checkpoints_failed),
    /// the cadence retries after the next interval.
    CheckpointWrite,
    /// Panics the background refresh worker's cycle (`crn-online`): its supervised loop
    /// restarts the worker.
    RefreshCycle,
    /// Drops a cluster connection **mid-frame** (`crn-cluster`): the coordinator writes
    /// a truncated frame and shuts the socket, so the worker sees a torn stream and the
    /// coordinator must degrade that worker's queries — deterministically, no wall
    /// clock involved.
    ClusterFrameDrop,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::BatchExecute => 0,
            FaultSite::SchedulerLoop => 1,
            FaultSite::MaintenanceUpsert => 2,
            FaultSite::MaintenanceLoop => 3,
            FaultSite::CheckpointWrite => 4,
            FaultSite::RefreshCycle => 5,
            FaultSite::ClusterFrameDrop => 6,
        }
    }

    /// The spec-syntax name of the site (what [`FaultPlan::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BatchExecute => "batch-panic",
            FaultSite::SchedulerLoop => "scheduler-kill",
            FaultSite::MaintenanceUpsert => "maint-panic",
            FaultSite::MaintenanceLoop => "maint-kill",
            FaultSite::CheckpointWrite => "checkpoint-fail",
            FaultSite::RefreshCycle => "refresh-panic",
            FaultSite::ClusterFrameDrop => "cluster-frame-drop",
        }
    }
}

/// When a spec fires at its site (occurrences are 1-based arrival counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire exactly once, on the Nth arrival.
    Once(u64),
    /// Fire on every Kth arrival (the "panics on every Kth batch" shape).
    Every(u64),
}

/// One scripted fault: a site plus its trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where the fault fires.
    pub site: FaultSite,
    /// On which arrival(s) it fires.
    pub trigger: FaultTrigger,
}

impl FaultSpec {
    fn matches(&self, arrival: u64) -> bool {
        match self.trigger {
            FaultTrigger::Once(n) => arrival == n.max(1),
            FaultTrigger::Every(k) => arrival.is_multiple_of(k.max(1)),
        }
    }
}

/// A parse failure of a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// The spec fragment that failed to parse.
    pub spec: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic, seedless fault script: a list of [`FaultSpec`]s.
///
/// The text syntax (the `repro serve --chaos` argument) is comma-separated
/// `site:occurrence` specs — `batch-panic:2` (panic the 2nd batch execution),
/// `maint-kill:1,maint-kill:2` (kill the maintenance thread on its 1st and 2nd
/// record), `batch-panic:every3` (every 3rd batch).  A bare site name means `:1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted faults, in spec order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds one scripted fault (builder shape for tests and drivers).
    pub fn with(mut self, site: FaultSite, trigger: FaultTrigger) -> Self {
        self.specs.push(FaultSpec { site, trigger });
        self
    }

    /// Parses the comma-separated `site:occurrence` syntax (see the type docs).
    pub fn parse(text: &str) -> Result<Self, FaultPlanError> {
        let mut specs = Vec::new();
        for fragment in text.split(',') {
            let fragment = fragment.trim();
            if fragment.is_empty() {
                continue;
            }
            let (name, occurrence) = match fragment.split_once(':') {
                Some((name, occurrence)) => (name.trim(), occurrence.trim()),
                None => (fragment, "1"),
            };
            let site = ALL_SITES
                .iter()
                .copied()
                .find(|site| site.name() == name)
                .ok_or_else(|| FaultPlanError {
                    spec: fragment.to_string(),
                    reason: format!(
                        "unknown site {:?} (expected one of {})",
                        name,
                        ALL_SITES
                            .iter()
                            .map(|s| s.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                })?;
            let trigger = if let Some(every) = occurrence.strip_prefix("every") {
                FaultTrigger::Every(parse_count(fragment, every)?)
            } else {
                FaultTrigger::Once(parse_count(fragment, occurrence)?)
            };
            specs.push(FaultSpec { site, trigger });
        }
        Ok(FaultPlan { specs })
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

const ALL_SITES: [FaultSite; SITE_COUNT] = [
    FaultSite::BatchExecute,
    FaultSite::SchedulerLoop,
    FaultSite::MaintenanceUpsert,
    FaultSite::MaintenanceLoop,
    FaultSite::CheckpointWrite,
    FaultSite::RefreshCycle,
    FaultSite::ClusterFrameDrop,
];

fn parse_count(fragment: &str, text: &str) -> Result<u64, FaultPlanError> {
    let count: u64 = text.parse().map_err(|_| FaultPlanError {
        spec: fragment.to_string(),
        reason: format!("occurrence {text:?} is not a positive integer"),
    })?;
    if count == 0 {
        return Err(FaultPlanError {
            spec: fragment.to_string(),
            reason: "occurrences are 1-based (0 never fires)".to_string(),
        });
    }
    Ok(count)
}

/// One fault that actually fired (the injector's audit log, reported in
/// `BENCH_chaos.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Where it fired.
    pub site: FaultSite,
    /// The 1-based arrival at which it fired.
    pub occurrence: u64,
}

/// The runtime's fault oracle: per-site arrival counters against a [`FaultPlan`].
///
/// `should_fire` is the only decision point — one relaxed `fetch_add` plus a scan of
/// the (tiny, usually empty) plan — so an injector with the empty plan costs nothing
/// measurable on the serving path.  All state is monotonic counters: the injector is
/// deterministic for a fixed plan and per-site arrival order (which the runtime's
/// single-scheduler / single-maintenance-thread design guarantees).
pub struct FaultInjector {
    plan: FaultPlan,
    arrivals: [AtomicU64; SITE_COUNT],
    fired: Mutex<Vec<FiredFault>>,
}

impl FaultInjector {
    /// An injector over the empty plan (what [`ServeRuntime::new`](crate::ServeRuntime::new) uses).
    pub fn none() -> Arc<Self> {
        Self::new(FaultPlan::none())
    }

    /// An injector over a scripted plan.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            arrivals: Default::default(),
            fired: Mutex::new(Vec::new()),
        })
    }

    /// The injector's plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts one arrival at `site` and reports whether a scripted fault fires on it
    /// (recording it in the fired log if so).  Non-panicking — the caller decides what
    /// "firing" means at its site (panic, failed write, ...).
    pub fn should_fire(&self, site: FaultSite) -> bool {
        let arrival = self.arrivals[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.is_empty() {
            return false;
        }
        let fires = self
            .plan
            .specs
            .iter()
            .any(|spec| spec.site == site && spec.matches(arrival));
        if fires {
            lock_ignoring_poison(&self.fired).push(FiredFault {
                site,
                occurrence: arrival,
            });
        }
        fires
    }

    /// [`should_fire`](FaultInjector::should_fire), panicking when the fault fires —
    /// the injection shape of every "panic"/"kill" site.
    pub fn fire(&self, site: FaultSite) {
        if self.should_fire(site) {
            panic!(
                "crn-serve injected fault: {} at arrival {}",
                site.name(),
                self.arrivals[site.index()].load(Ordering::Relaxed)
            );
        }
    }

    /// How often `site` has been arrived at (fired or not).
    pub fn arrivals(&self, site: FaultSite) -> u64 {
        self.arrivals[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults that fired so far.
    pub fn faults_injected(&self) -> u64 {
        lock_ignoring_poison(&self.fired).len() as u64
    }

    /// The audit log of fired faults, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        lock_ignoring_poison(&self.fired).clone()
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("faults_injected", &self.faults_injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_shipped_plan_shapes() {
        let plan = FaultPlan::parse("batch-panic:2, maint-kill, checkpoint-fail:every3").unwrap();
        assert_eq!(
            plan.specs,
            vec![
                FaultSpec {
                    site: FaultSite::BatchExecute,
                    trigger: FaultTrigger::Once(2),
                },
                FaultSpec {
                    site: FaultSite::MaintenanceLoop,
                    trigger: FaultTrigger::Once(1),
                },
                FaultSpec {
                    site: FaultSite::CheckpointWrite,
                    trigger: FaultTrigger::Every(3),
                },
            ]
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        for bad in ["nonsense:1", "batch-panic:0", "batch-panic:soon"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn occurrence_counting_is_deterministic_and_per_site() {
        let injector = FaultInjector::new(
            FaultPlan::none()
                .with(FaultSite::BatchExecute, FaultTrigger::Once(2))
                .with(FaultSite::MaintenanceUpsert, FaultTrigger::Every(2)),
        );
        // Site arrivals are independent streams; Once fires exactly once, Every repeats.
        let batch: Vec<bool> = (0..4)
            .map(|_| injector.should_fire(FaultSite::BatchExecute))
            .collect();
        let maint: Vec<bool> = (0..4)
            .map(|_| injector.should_fire(FaultSite::MaintenanceUpsert))
            .collect();
        assert_eq!(batch, vec![false, true, false, false]);
        assert_eq!(maint, vec![false, true, false, true]);
        assert_eq!(injector.faults_injected(), 3);
        assert!(!injector.should_fire(FaultSite::SchedulerLoop));
        assert_eq!(injector.arrivals(FaultSite::SchedulerLoop), 1);
        let fired = injector.fired();
        assert_eq!(fired[0].site, FaultSite::BatchExecute);
        assert_eq!(fired[0].occurrence, 2);
    }

    #[test]
    fn fire_panics_exactly_on_the_scripted_arrival() {
        let injector = FaultInjector::new(
            FaultPlan::none().with(FaultSite::SchedulerLoop, FaultTrigger::Once(1)),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.fire(FaultSite::SchedulerLoop)
        }));
        assert!(result.is_err());
        injector.fire(FaultSite::SchedulerLoop); // later arrivals pass
    }
}
