//! `crn-serve` — the asynchronous request-queue serving runtime over the concurrent
//! [`EstimatorService`](crn_core::EstimatorService).
//!
//! PR 3's `EstimatorService` is *synchronous*: a caller hands over a slice of concurrent
//! queries and blocks until the whole batch is served.  That leaves the batching decision
//! — the thing the fused multi-query head batches feed on — to every caller individually,
//! and a production front-end has neither a natural batch boundary nor the luxury of
//! blocking its request threads.  This crate adds the genuinely async front-end the
//! ROADMAP names: a queue + completion-handle runtime with admission control and
//! cross-call batching windows, hand-rolled on `std::sync` primitives (the vendored-deps
//! policy rules out tokio — everything here is a bounded `VecDeque` behind a mutex plus
//! the worker pool's poison-robust condvar wakeup helpers from `crn_nn::parallel`).
//!
//! The moving parts:
//!
//! * [`ticket`] — [`Ticket`]: the condvar-backed completion handle a submission returns;
//!   `poll` (non-blocking), `wait` and `wait_timeout` resolve to the estimate plus batch
//!   provenance.
//! * [`queue`] — the bounded MPSC submission queue with admission control: a hard
//!   `queue_depth` bound and a per-caller fairness quota, both load-shedding with
//!   [`SubmitError::Overloaded`] instead of blocking the submitter.
//! * [`runtime`] — [`ServeRuntime`]: the scheduler thread that forms batches (closing on
//!   a size threshold *or* a time window, so cross-call traffic fuses into one
//!   multi-query head batch), executes them on the wrapped service, and resolves the
//!   tickets; plus the background *maintenance lane* applying completed queries' true
//!   cardinalities back into the pool via single-swap copy-on-write
//!   [`upsert`](crn_core::ShardedPool::upsert)s — the paper's §5.2 pool-refresh loop,
//!   never blocking concurrent readers.
//!
//! # Bit-parity contract
//!
//! For a fixed set of submitted queries, the estimates the runtime resolves are
//! **bit-identical** to what one synchronous [`EstimatorService::serve`] call over the
//! same queries returns — at *any* batch window, queue depth, caller interleaving or
//! worker count.  This is inherited, not re-proven: the service's per-query results are
//! independent of batch composition (forced-CSR featurization, row-count-independent
//! kernels, canonical-order merges — see `crn_core::service`), so however the scheduler
//! slices the traffic into batches, every query's answer is the one the sequential path
//! computes.  The parity tests in `tests/async_parity.rs` pin the full
//! window × depth × workers matrix.
//!
//! # Fault tolerance
//!
//! PR 6 hardens the runtime against the failure modes a long-lived serving process
//! actually meets:
//!
//! * [`ticket`] resolutions became a `Result`: per-request **deadlines** shed stale
//!   queued requests ([`TicketError::Expired`]), and a panicked batch resolves its
//!   waiters through the service's **degraded** fallback path, tagged in
//!   [`EstimateSource`] — never a hang, never a silent wrong answer.
//! * [`supervisor`] — bounded panic-restart budgets: a panic that escapes per-batch /
//!   per-upsert containment restarts the lane *with its queues intact*; past the budget
//!   the runtime degrades to synchronous serving instead of crash-looping.
//! * [`runtime::CheckpointWriter`] — the crash-safe persistence hook the maintenance
//!   lane invokes on a configurable cadence (`crn-online` implements it with atomic
//!   temp-file + rename checkpoints).
//! * [`fault`] — the deterministic, occurrence-counted [`FaultInjector`] that scripts
//!   exactly these failures for the chaos suite and `repro serve --chaos`.
//!
//! The headline invariant, pinned by `tests/chaos.rs`: **every admitted ticket
//! resolves** — completed, degraded, expired or failed — under every fault plan.
//!
//! [`EstimatorService::serve`]: crn_core::EstimatorService::serve

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;
pub mod queue;
pub mod runtime;
pub mod supervisor;
pub mod ticket;

pub use fault::{
    FaultInjector, FaultPlan, FaultPlanError, FaultSite, FaultSpec, FaultTrigger, FiredFault,
};
pub use queue::{RejectReason, SubmitError};
pub use runtime::{CheckpointWriter, FeedbackObserver, RuntimeConfig, RuntimeStats, ServeRuntime};
pub use supervisor::{
    Supervisor, SupervisorPolicy, SupervisorVerdict, LANE_MAINTENANCE, LANE_REFRESH, LANE_SCHEDULER,
};
pub use ticket::{EstimateSource, Ticket, TicketError, TicketOutcome};
