//! `crn-serve` — the asynchronous request-queue serving runtime over the concurrent
//! [`EstimatorService`](crn_core::EstimatorService).
//!
//! PR 3's `EstimatorService` is *synchronous*: a caller hands over a slice of concurrent
//! queries and blocks until the whole batch is served.  That leaves the batching decision
//! — the thing the fused multi-query head batches feed on — to every caller individually,
//! and a production front-end has neither a natural batch boundary nor the luxury of
//! blocking its request threads.  This crate adds the genuinely async front-end the
//! ROADMAP names: a queue + completion-handle runtime with admission control and
//! cross-call batching windows, hand-rolled on `std::sync` primitives (the vendored-deps
//! policy rules out tokio — everything here is a bounded `VecDeque` behind a mutex plus
//! the worker pool's poison-robust condvar wakeup helpers from `crn_nn::parallel`).
//!
//! The moving parts:
//!
//! * [`ticket`] — [`Ticket`]: the condvar-backed completion handle a submission returns;
//!   `poll` (non-blocking), `wait` and `wait_timeout` resolve to the estimate plus batch
//!   provenance.
//! * [`queue`] — the bounded MPSC submission queue with admission control: a hard
//!   `queue_depth` bound, a per-caller fairness quota, and a per-[`SloClass`] weighted
//!   share of the depth, all load-shedding with [`SubmitError::Overloaded`] instead of
//!   blocking the submitter.
//! * [`runtime`] — [`ServeRuntime`]: the scheduler thread that forms batches (closing on
//!   a size threshold *or* a time window, so cross-call traffic fuses into one
//!   multi-query head batch), executes them on the wrapped service, and resolves the
//!   tickets; plus the background *maintenance lane* applying completed queries' true
//!   cardinalities back into the pool via single-swap copy-on-write
//!   [`upsert`](crn_core::ShardedPool::upsert)s — the paper's §5.2 pool-refresh loop,
//!   never blocking concurrent readers.
//! * [`cache`] — [`EstimateCache`]: the bounded, sharded LRU **cross-window estimate
//!   cache**, keyed `(canonical query hash, pool version, model version)` and consulted
//!   at batch-build time, so hot repeated queries resolve at memory latency without
//!   entering the compute path.  Invalidation is by version key: maintenance upserts
//!   bump the pool version and hot-swaps bump the model version, so a hit is
//!   bit-identical to recomputation by construction.  `cache_entries: 0` (the default)
//!   disables it and restores the uncached scheduler path exactly.
//!
//! # Latency SLO classes
//!
//! Callers register an [`SloClass`] ([`ServeRuntime::register_caller`]):
//! latency-sensitive `Interactive` traffic and throughput-oriented `Batch` traffic
//! queue in separate lanes, each with its **own batching window**
//! ([`RuntimeConfig::class_windows`] — interactive ≈ 100µs, batch ≈ multi-ms) and a
//! **weighted share of the queue depth** ([`RuntimeConfig::class_weights`]), and the
//! scheduler always closes the most urgent eligible class's batch first.  Weighted
//! admission caps how much of the queue batch/replay floods can occupy, so they can
//! never starve interactive callers.  A runtime that registers no `Batch` caller (and
//! the default all-zero weights) behaves exactly like the single-window runtime.
//!
//! # Bit-parity contract
//!
//! For a fixed set of submitted queries, the estimates the runtime resolves are
//! **bit-identical** to what one synchronous [`EstimatorService::serve`] call over the
//! same queries returns — at *any* batch window, queue depth, caller interleaving,
//! worker count, class-window/weight assignment or cache size.  This is inherited, not
//! re-proven: the service's per-query results are independent of batch composition
//! (forced-CSR featurization, row-count-independent kernels, canonical-order merges —
//! see `crn_core::service`), so however the scheduler slices the traffic into batches,
//! every query's answer is the one the sequential path computes — and a cache hit
//! replays a computed answer under the exact `(pool, model)` version pairing a serve
//! issued now would use.  The parity tests in `tests/async_parity.rs` pin the full
//! window × depth × workers × class × cache matrix.
//!
//! # Fault tolerance
//!
//! PR 6 hardens the runtime against the failure modes a long-lived serving process
//! actually meets:
//!
//! * [`ticket`] resolutions became a `Result`: per-request **deadlines** shed stale
//!   queued requests ([`TicketError::Expired`]), and a panicked batch resolves its
//!   waiters through the service's **degraded** fallback path, tagged in
//!   [`EstimateSource`] — never a hang, never a silent wrong answer.
//! * [`supervisor`] — bounded panic-restart budgets: a panic that escapes per-batch /
//!   per-upsert containment restarts the lane *with its queues intact*; past the budget
//!   the runtime degrades to synchronous serving instead of crash-looping.
//! * [`runtime::CheckpointWriter`] — the crash-safe persistence hook the maintenance
//!   lane invokes on a configurable cadence (`crn-online` implements it with atomic
//!   temp-file + rename checkpoints).
//! * [`fault`] — the deterministic, occurrence-counted [`FaultInjector`] that scripts
//!   exactly these failures for the chaos suite and `repro serve --chaos`.
//!
//! The headline invariant, pinned by `tests/chaos.rs`: **every admitted ticket
//! resolves** — completed, degraded, expired or failed — under every fault plan.
//!
//! [`EstimatorService::serve`]: crn_core::EstimatorService::serve

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod cache;
pub mod fault;
pub mod queue;
pub mod runtime;
pub mod supervisor;
pub mod ticket;

pub use backend::ComputeBackend;
pub use cache::EstimateCache;
pub use fault::{
    FaultInjector, FaultPlan, FaultPlanError, FaultSite, FaultSpec, FaultTrigger, FiredFault,
};
pub use queue::{RejectReason, SloClass, SubmitError};
pub use runtime::{
    CheckpointWriter, FeedbackObserver, RuntimeConfig, RuntimeStats, ServeRuntime,
    RETRY_BACKOFF_CEIL, RETRY_BACKOFF_FLOOR,
};
pub use supervisor::{
    Supervisor, SupervisorPolicy, SupervisorVerdict, LANE_MAINTENANCE, LANE_REFRESH, LANE_SCHEDULER,
};
pub use ticket::{EstimateSource, Ticket, TicketError, TicketOutcome};
