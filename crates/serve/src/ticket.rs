//! Completion handles: the condvar-backed future-like half of a submission.
//!
//! A successful [`submit`](crate::ServeRuntime::submit) returns a [`Ticket`].  The
//! scheduler resolves it exactly once — when the batch containing the request has been
//! served (or during the shutdown drain) — and every resolution wakes all waiters through
//! the same poison-robust condvar discipline the worker pool uses.

use crn_nn::parallel::{lock_ignoring_poison, wait_ignoring_poison, wait_timeout_ignoring_poison};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a completed request resolved to: the estimate plus batch provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TicketOutcome {
    /// The cardinality estimate — bit-identical to what a synchronous
    /// [`EstimatorService::serve`](crn_core::EstimatorService::serve) over any batch
    /// containing this query returns.
    pub estimate: f64,
    /// How many requests the batch that served this request fused (cross-call batching
    /// evidence: under concurrent callers and a non-zero window this exceeds 1).
    pub batch_size: usize,
    /// The runtime-wide sequence number of that batch (0-based).
    pub batch_seq: u64,
    /// How long the request waited in the submission queue before its batch closed.
    pub queue_wait: Duration,
}

/// The ticket's resolution state.
enum TicketState {
    /// Queued or in flight.
    Pending,
    /// Served.
    Done(TicketOutcome),
    /// The batch's execution panicked; observing the ticket re-raises the panic (the
    /// runtime's analogue of the worker pool propagating shard panics to the submitter).
    Failed,
}

/// The shared completion cell: written once by the scheduler, read by the ticket holder.
pub(crate) struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(TicketState::Pending),
            done: Condvar::new(),
        })
    }

    /// Resolves the ticket.  Called exactly once, by whichever thread served the batch.
    pub(crate) fn complete(&self, outcome: TicketOutcome) {
        let mut state = lock_ignoring_poison(&self.state);
        debug_assert!(
            matches!(*state, TicketState::Pending),
            "a ticket resolves exactly once"
        );
        *state = TicketState::Done(outcome);
        self.done.notify_all();
    }

    /// Marks the ticket's batch as panicked; waiters re-raise instead of hanging.
    pub(crate) fn fail(&self) {
        let mut state = lock_ignoring_poison(&self.state);
        debug_assert!(
            matches!(*state, TicketState::Pending),
            "a ticket resolves exactly once"
        );
        *state = TicketState::Failed;
        self.done.notify_all();
    }
}

/// The completion handle of one submitted query.
///
/// Cheap to move across threads; the submitting caller typically `wait`s (closed-loop
/// clients) or `poll`s from an event loop.  Dropping an unresolved ticket is fine — the
/// scheduler still serves the request, the outcome is simply never observed.
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = !matches!(
            *lock_ignoring_poison(&self.cell.state),
            TicketState::Pending
        );
        f.debug_struct("Ticket")
            .field("resolved", &resolved)
            .finish()
    }
}

/// Shared panic message of every observation of a failed ticket.
const BATCH_PANICKED: &str =
    "crn-serve: the batch executing this request panicked (see the scheduler's report)";

impl Ticket {
    pub(crate) fn new(cell: Arc<TicketCell>) -> Self {
        Ticket { cell }
    }

    /// Non-blocking completion check: `Some` once the request's batch has been served.
    ///
    /// # Panics
    /// Re-raises if the batch's execution panicked (the runtime survives; this waiter
    /// must not silently miss its answer).
    pub fn poll(&self) -> Option<TicketOutcome> {
        match *lock_ignoring_poison(&self.cell.state) {
            TicketState::Pending => None,
            TicketState::Done(outcome) => Some(outcome),
            TicketState::Failed => panic!("{BATCH_PANICKED}"),
        }
    }

    /// Blocks until the request has been served and returns the outcome.
    ///
    /// Every admitted request eventually resolves — the scheduler drains the queue even
    /// on shutdown and marks batches that panicked — so this cannot wait forever against
    /// a live or shutting-down runtime.
    ///
    /// # Panics
    /// Re-raises if the batch's execution panicked.
    pub fn wait(&self) -> TicketOutcome {
        let mut state = lock_ignoring_poison(&self.cell.state);
        loop {
            match *state {
                TicketState::Pending => state = wait_ignoring_poison(&self.cell.done, state),
                TicketState::Done(outcome) => return outcome,
                TicketState::Failed => panic!("{BATCH_PANICKED}"),
            }
        }
    }

    /// [`wait`](Ticket::wait) with a deadline: `None` if the request is still queued or
    /// in flight when `timeout` elapses.
    ///
    /// # Panics
    /// Re-raises if the batch's execution panicked.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<TicketOutcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock_ignoring_poison(&self.cell.state);
        loop {
            match *state {
                TicketState::Pending => {}
                TicketState::Done(outcome) => return Some(outcome),
                TicketState::Failed => panic!("{BATCH_PANICKED}"),
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _timed_out) =
                wait_timeout_ignoring_poison(&self.cell.done, state, deadline - now);
            state = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_wait_and_timeout_observe_one_completion() {
        let cell = TicketCell::new();
        let ticket = Ticket::new(Arc::clone(&cell));
        assert!(ticket.poll().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(5)).is_none());
        assert!(format!("{ticket:?}").contains("resolved: false"));

        let outcome = TicketOutcome {
            estimate: 42.5,
            batch_size: 3,
            batch_seq: 7,
            queue_wait: Duration::from_micros(120),
        };
        let completer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                cell.complete(outcome);
            })
        };
        // A blocking waiter wakes on completion.
        assert_eq!(ticket.wait(), outcome);
        completer.join().expect("completer exits");
        // Completion is sticky: every subsequent observation sees the same outcome.
        assert_eq!(ticket.poll(), Some(outcome));
        assert_eq!(ticket.wait_timeout(Duration::ZERO), Some(outcome));
        assert_eq!(ticket.wait(), outcome);
    }

    #[test]
    fn failed_tickets_reraise_instead_of_hanging() {
        let cell = TicketCell::new();
        let ticket = Ticket::new(Arc::clone(&cell));
        cell.fail();
        for observation in [
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ticket.poll();
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ticket.wait();
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ticket.wait_timeout(Duration::ZERO);
            })),
        ] {
            assert!(observation.is_err(), "a failed ticket must re-raise");
        }
    }
}
