//! Completion handles: the condvar-backed future-like half of a submission.
//!
//! A successful [`submit`](crate::ServeRuntime::submit) returns a [`Ticket`].  The
//! scheduler resolves it exactly once — when the batch containing the request has been
//! served, when its deadline expired in the queue, or during the shutdown drain — and
//! every resolution wakes all waiters through the same poison-robust condvar discipline
//! the worker pool uses.
//!
//! Resolution is a `Result`: [`TicketOutcome`] carries the estimate plus its
//! [`EstimateSource`] provenance (a fallback answer after a panicked batch is tagged
//! [`Degraded`](EstimateSource::Degraded) — never a silent wrong answer), and
//! [`TicketError`] distinguishes a queue-expired deadline from a batch whose even the
//! fallback path failed.  Nothing here panics at the waiter anymore: under every fault
//! the runtime injects or survives, observing a ticket yields a value the caller can
//! route on.

use crn_nn::parallel::{lock_ignoring_poison, wait_ignoring_poison, wait_timeout_ignoring_poison};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Provenance of a resolved estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// The estimate came from the full serving path — bit-identical to a synchronous
    /// [`EstimatorService::serve`](crn_core::EstimatorService::serve) over any batch
    /// containing this query.
    Computed,
    /// The estimate was replayed from the runtime's cross-window estimate cache
    /// ([`crate::cache`]): full fidelity at memory latency.  The cached value was
    /// computed by the full serving path and is keyed on the exact
    /// `(pool version, model version)` pairing it was computed under, so it is
    /// **bit-identical** to what recomputing the query right now would return — only
    /// the compute was skipped, never the answer changed.
    Cached,
    /// The batch's execution panicked and the estimate came from the service's
    /// stats/fallback path ([`EstimatorService::fallback_estimate`]) instead: a usable
    /// answer within budget, explicitly *not* the model's — callers that must not act
    /// on reduced-fidelity estimates route on this tag.
    ///
    /// [`EstimatorService::fallback_estimate`]: crn_core::EstimatorService::fallback_estimate
    Degraded,
}

/// What a completed request resolved to: the estimate plus batch provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TicketOutcome {
    /// The cardinality estimate (see [`source`](TicketOutcome::source) for whether it
    /// came from the full serving path or the degraded fallback).
    pub estimate: f64,
    /// Where the estimate came from.
    pub source: EstimateSource,
    /// How many requests the batch that served this request fused (cross-call batching
    /// evidence: under concurrent callers and a non-zero window this exceeds 1).
    pub batch_size: usize,
    /// The runtime-wide sequence number of that batch (0-based).
    pub batch_seq: u64,
    /// How long the request waited in the submission queue before its batch closed.
    pub queue_wait: Duration,
    /// The request's per-segment span (queue-wait / batch-wait / cache-probe /
    /// shard-compute / merge, in clock microseconds), recorded only when the runtime's
    /// observability layer is enabled — `None` on the zero-overhead disabled path and
    /// on degraded resolutions.
    pub trace: Option<crn_obs::RequestTrace>,
}

impl TicketOutcome {
    /// Whether the estimate is a full-fidelity serving-path answer — directly computed,
    /// or replayed bit-identically from the estimate cache.  `false` only for the
    /// degraded fallback path.
    pub fn is_computed(&self) -> bool {
        matches!(
            self.source,
            EstimateSource::Computed | EstimateSource::Cached
        )
    }
}

/// Why a ticket resolved without an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketError {
    /// The request's deadline passed while it was still queued; the scheduler shed it
    /// before execution (counted in [`RuntimeStats::expired`](crate::RuntimeStats::expired)).
    Expired,
    /// The batch's execution panicked *and* the degraded fallback path panicked too —
    /// the runtime survives, but this request has no answer of any fidelity.
    BatchFailed,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketError::Expired => {
                write!(f, "request deadline expired before its batch executed")
            }
            TicketError::BatchFailed => write!(
                f,
                "the batch executing this request panicked and the degraded fallback failed"
            ),
        }
    }
}

impl std::error::Error for TicketError {}

/// The ticket's resolution state.
enum TicketState {
    /// Queued or in flight.
    Pending,
    /// Resolved: served (possibly degraded), expired, or failed.
    Resolved(Result<TicketOutcome, TicketError>),
}

/// The shared completion cell: written once by the scheduler, read by the ticket holder.
pub(crate) struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(TicketState::Pending),
            done: Condvar::new(),
        })
    }

    /// Resolves the ticket.  Called exactly once, by whichever thread settled the
    /// request (scheduler, recovery hook, or degraded-sync submitter).
    pub(crate) fn resolve(&self, resolution: Result<TicketOutcome, TicketError>) {
        let mut state = lock_ignoring_poison(&self.state);
        debug_assert!(
            matches!(*state, TicketState::Pending),
            "a ticket resolves exactly once"
        );
        *state = TicketState::Resolved(resolution);
        self.done.notify_all();
    }

    /// Resolves with a served outcome.
    pub(crate) fn complete(&self, outcome: TicketOutcome) {
        self.resolve(Ok(outcome));
    }

    /// Resolves as deadline-expired.
    pub(crate) fn expire(&self) {
        self.resolve(Err(TicketError::Expired));
    }

    /// Resolves as failed (panicked batch whose fallback also failed).
    pub(crate) fn fail(&self) {
        self.resolve(Err(TicketError::BatchFailed));
    }
}

/// The completion handle of one submitted query.
///
/// Cheap to move across threads; the submitting caller typically `wait`s (closed-loop
/// clients) or `poll`s from an event loop.  Dropping an unresolved ticket is fine — the
/// scheduler still serves the request, the outcome is simply never observed.
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = !matches!(
            *lock_ignoring_poison(&self.cell.state),
            TicketState::Pending
        );
        f.debug_struct("Ticket")
            .field("resolved", &resolved)
            .finish()
    }
}

impl Ticket {
    pub(crate) fn new(cell: Arc<TicketCell>) -> Self {
        Ticket { cell }
    }

    /// Non-blocking completion check: `Some` once the request has resolved — to an
    /// outcome (computed or degraded) or a [`TicketError`].
    pub fn poll(&self) -> Option<Result<TicketOutcome, TicketError>> {
        match *lock_ignoring_poison(&self.cell.state) {
            TicketState::Pending => None,
            TicketState::Resolved(resolution) => Some(resolution),
        }
    }

    /// Blocks until the request has resolved and returns the resolution.
    ///
    /// Every admitted request eventually resolves — the scheduler drains the queue even
    /// on shutdown, panicked batches resolve through the degraded path, expired
    /// deadlines resolve as [`TicketError::Expired`], and the supervisor's recovery
    /// hook resolves batches orphaned by a killed scheduler — so this cannot wait
    /// forever against a live or shutting-down runtime (the chaos suite's headline
    /// invariant).
    pub fn wait(&self) -> Result<TicketOutcome, TicketError> {
        let mut state = lock_ignoring_poison(&self.cell.state);
        loop {
            match *state {
                TicketState::Pending => state = wait_ignoring_poison(&self.cell.done, state),
                TicketState::Resolved(resolution) => return resolution,
            }
        }
    }

    /// [`wait`](Ticket::wait) with a wait bound: `None` if the request is still queued
    /// or in flight when `timeout` elapses (the ticket stays valid — this bounds the
    /// *observation*, the request's own queue-residency bound is its submit deadline).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<TicketOutcome, TicketError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock_ignoring_poison(&self.cell.state);
        loop {
            if let TicketState::Resolved(resolution) = *state {
                return Some(resolution);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _timed_out) =
                wait_timeout_ignoring_poison(&self.cell.done, state, deadline - now);
            state = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_wait_and_timeout_observe_one_completion() {
        let cell = TicketCell::new();
        let ticket = Ticket::new(Arc::clone(&cell));
        assert!(ticket.poll().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(5)).is_none());
        assert!(format!("{ticket:?}").contains("resolved: false"));

        let outcome = TicketOutcome {
            estimate: 42.5,
            source: EstimateSource::Computed,
            batch_size: 3,
            batch_seq: 7,
            queue_wait: Duration::from_micros(120),
            trace: None,
        };
        let completer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                cell.complete(outcome);
            })
        };
        // A blocking waiter wakes on completion.
        assert_eq!(ticket.wait(), Ok(outcome));
        completer.join().expect("completer exits");
        // Completion is sticky: every subsequent observation sees the same outcome.
        assert_eq!(ticket.poll(), Some(Ok(outcome)));
        assert_eq!(ticket.wait_timeout(Duration::ZERO), Some(Ok(outcome)));
        assert!(ticket.wait().expect("resolved").is_computed());
    }

    #[test]
    fn failed_and_expired_tickets_resolve_with_errors_instead_of_hanging() {
        let failed = TicketCell::new();
        let failed_ticket = Ticket::new(Arc::clone(&failed));
        failed.fail();
        assert_eq!(failed_ticket.wait(), Err(TicketError::BatchFailed));
        assert_eq!(failed_ticket.poll(), Some(Err(TicketError::BatchFailed)));

        let expired = TicketCell::new();
        let expired_ticket = Ticket::new(Arc::clone(&expired));
        expired.expire();
        assert_eq!(expired_ticket.wait(), Err(TicketError::Expired));
        assert_eq!(
            expired_ticket.wait_timeout(Duration::ZERO),
            Some(Err(TicketError::Expired))
        );
        assert!(TicketError::Expired.to_string().contains("deadline"));
    }

    #[test]
    fn degraded_outcomes_carry_their_provenance() {
        let cell = TicketCell::new();
        let ticket = Ticket::new(Arc::clone(&cell));
        cell.complete(TicketOutcome {
            estimate: 1000.0,
            source: EstimateSource::Degraded,
            batch_size: 4,
            batch_seq: 0,
            queue_wait: Duration::ZERO,
            trace: None,
        });
        let outcome = ticket.wait().expect("resolved");
        assert!(!outcome.is_computed());
        assert_eq!(outcome.source, EstimateSource::Degraded);
    }

    #[test]
    fn cached_outcomes_count_as_full_fidelity() {
        let cell = TicketCell::new();
        let ticket = Ticket::new(Arc::clone(&cell));
        cell.complete(TicketOutcome {
            estimate: 512.0,
            source: EstimateSource::Cached,
            batch_size: 2,
            batch_seq: 5,
            queue_wait: Duration::from_micros(40),
            trace: None,
        });
        let outcome = ticket.wait().expect("resolved");
        // A cache replay is bit-identical to recomputation: callers routing on
        // `is_computed` must treat it as the full path, not a degraded answer.
        assert!(outcome.is_computed());
        assert_eq!(outcome.source, EstimateSource::Cached);
    }
}
