//! Integration tests of the versioned cross-window estimate cache: hits must be
//! **bit-identical** to recomputing the query right now — including across pool
//! maintenance churn and a live model hot-swap, the two events that change what
//! "recomputing right now" would return.  The cache is keyed on
//! `(canonical query hash, pool version, model version)`, so both events invalidate
//! exactly by construction; these tests pin that contract end to end through the
//! runtime, alongside the hit/miss accounting identity.

use crn_core::{CrnModel, EstimatorService, QueriesPool, ShardedPool};
use crn_exec::label_containment_pairs;
use crn_nn::parallel::WorkerPool;
use crn_nn::TrainConfig;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use crn_query::Query;
use crn_serve::{EstimateSource, RuntimeConfig, ServeRuntime};
use std::sync::Arc;

fn trained_crn(db: &crn_db::Database, seed: u64) -> CrnModel {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let pairs = gen.generate_pairs(30, 120);
    let samples = label_containment_pairs(db, &pairs, 4);
    let mut crn = CrnModel::new(db, TrainConfig::fast_test());
    crn.fit(&samples);
    crn
}

/// Generates `count` queries with pairwise-distinct canonical hashes — the per-round
/// source assertions rely on no query warming the cache for a later twin in the same
/// round.
fn workload(db: &crn_db::Database, seed: u64, count: usize) -> Vec<Query> {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let mut seen = std::collections::HashSet::new();
    let mut queries: Vec<Query> = gen
        .generate_queries(count * 4)
        .into_iter()
        .filter(|query| seen.insert(crn_core::query_hash(query)))
        .collect();
    assert!(
        queries.len() >= count,
        "generator too repetitive for {count} distinct queries"
    );
    queries.truncate(count);
    queries
}

use crn_db::imdb::{generate_imdb, ImdbConfig};

/// Serves the workload through the runtime one closed-loop round (window 0: every
/// request is its own batch), asserting each outcome's provenance, and returns the
/// estimates in workload order.
fn serve_round<M: crn_estimators::ContainmentEstimator + Send + Sync + 'static>(
    runtime: &ServeRuntime<EstimatorService<M>>,
    queries: &[Query],
    expect: EstimateSource,
) -> Vec<f64> {
    queries
        .iter()
        .enumerate()
        .map(|(index, query)| {
            let outcome = runtime
                .submit_retrying(0, query)
                .expect("admitted")
                .wait()
                .expect("served");
            assert_eq!(
                outcome.source, expect,
                "query {index}: expected {expect:?}, got {:?}",
                outcome.source
            );
            outcome.estimate
        })
        .collect()
}

fn bit_equal(actual: &[f64], expected: &[f64], label: &str) {
    for (index, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!(a == e, "{label}: query {index} diverged: {a} vs {e}");
    }
}

/// The acceptance criterion: repeat serves hit the cache with bit-identical estimates,
/// and both a burst of maintenance upserts and a model hot-swap force recomputation
/// (fresh versions miss the old keys) whose results then re-cache bit-identically.
#[test]
fn cache_hits_stay_bit_identical_across_churn_and_a_hot_swap() {
    let db = generate_imdb(&ImdbConfig::tiny(90));
    let pool = QueriesPool::generate(&db, 50, 2, 90);
    let crn = trained_crn(&db, 90);
    let queries = workload(&db, 91, 12);

    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(2),
    ));
    let runtime = ServeRuntime::new(
        Arc::clone(&service),
        RuntimeConfig::default()
            .with_window_us(0)
            .with_cache_entries(128),
    );

    // Round 1 computes and fills; the estimates must match the synchronous reference.
    let round1 = serve_round(&runtime, &queries, EstimateSource::Computed);
    bit_equal(
        &round1,
        &service.serve(&queries).estimates,
        "round 1 vs sync",
    );
    // Round 2 replays every query from the cache, bit-identically.
    let round2 = serve_round(&runtime, &queries, EstimateSource::Cached);
    bit_equal(&round2, &round1, "cached round vs computed round");

    // Maintenance churn: upsert fresh queries through the feedback lane.  Every apply
    // bumps a shard version, so the snapshot-wide pool version moves past the cached
    // keys and the next round must recompute against the grown pool.
    for (offset, update) in workload(&db, 92, 6).into_iter().enumerate() {
        runtime
            .record_feedback(update, 50 + offset as u64)
            .expect("maintenance lane open");
    }
    runtime.flush();
    let round3 = serve_round(&runtime, &queries, EstimateSource::Computed);
    bit_equal(
        &round3,
        &service.serve(&queries).estimates,
        "post-churn round vs post-churn sync",
    );
    let round4 = serve_round(&runtime, &queries, EstimateSource::Cached);
    bit_equal(&round4, &round3, "post-churn cached round");

    // Model hot-swap: a differently-trained model takes over serving atomically; the
    // model version bump invalidates every cached key the same way.
    let replacement = trained_crn(&db, 93);
    let swapped_version = service.swap_model(replacement);
    assert!(swapped_version > 1, "hot-swap advances the model version");
    let round5 = serve_round(&runtime, &queries, EstimateSource::Computed);
    bit_equal(
        &round5,
        &service.serve(&queries).estimates,
        "post-swap round vs post-swap sync",
    );
    let round6 = serve_round(&runtime, &queries, EstimateSource::Cached);
    bit_equal(&round6, &round5, "post-swap cached round");

    // Accounting: 6 closed-loop rounds of 12 → 36 misses (computed) + 36 hits, and the
    // identity `serve.queries + coalesced + cache_hits == completed` balances exactly.
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 72);
    assert_eq!(stats.cache_hits, 36);
    assert_eq!(stats.cache_misses, 36);
    assert_eq!(stats.cache_insertions, 36);
    assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
    assert_eq!(
        stats.serve.queries as u64 + stats.coalesced + stats.cache_hits,
        stats.completed
    );
    assert!(stats.fully_resolved(), "{stats:?}");
}

/// `cache_entries: 0` (the default) must restore the pre-cache runtime exactly: every
/// outcome is freshly computed, no cache counter ever moves, and the pre-cache
/// accounting identity holds without the cache term.
#[test]
fn a_disabled_cache_never_intercepts_or_counts() {
    let db = generate_imdb(&ImdbConfig::tiny(94));
    let pool = QueriesPool::generate(&db, 40, 2, 94);
    let crn = trained_crn(&db, 94);
    let queries = workload(&db, 95, 8);

    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(1),
    ));
    let runtime = ServeRuntime::new(
        Arc::clone(&service),
        RuntimeConfig::default().with_window_us(0),
    );

    let round1 = serve_round(&runtime, &queries, EstimateSource::Computed);
    // The repeat round recomputes too — identical answers, but via the full path.
    let round2 = serve_round(&runtime, &queries, EstimateSource::Computed);
    bit_equal(&round2, &round1, "repeat round without a cache");

    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0);
    assert_eq!(stats.cache_insertions, 0);
    assert_eq!(stats.cache_evictions, 0);
    assert_eq!(stats.cache_hit_rate(), 0.0);
    assert_eq!(
        stats.serve.queries as u64 + stats.coalesced,
        stats.completed
    );
    assert!(stats.fully_resolved(), "{stats:?}");
}

/// A capacity-starved cache evicts instead of growing: serving more distinct queries
/// than the cache holds keeps it bounded and surfaces evictions in the stats.
#[test]
fn a_tiny_cache_stays_bounded_under_a_wide_workload() {
    let db = generate_imdb(&ImdbConfig::tiny(96));
    let pool = QueriesPool::generate(&db, 40, 2, 96);
    let crn = trained_crn(&db, 96);
    let queries = workload(&db, 97, 10);

    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(1),
    ));
    let runtime = ServeRuntime::new(
        Arc::clone(&service),
        RuntimeConfig::default()
            .with_window_us(0)
            .with_cache_entries(2),
    );

    // Ten distinct queries through a 2-entry cache: everything computes, the overflow
    // evicts, and the cache never reports a hit it could not have stored.
    serve_round(&runtime, &queries, EstimateSource::Computed);
    let stats = runtime.shutdown();
    assert_eq!(stats.cache_misses, 10);
    assert_eq!(stats.cache_insertions, 10);
    assert_eq!(stats.cache_evictions, 8);
    assert_eq!(stats.cache_hits, 0);
    assert!(stats.fully_resolved(), "{stats:?}");
}
