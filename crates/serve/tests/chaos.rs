//! The chaos suite: deterministic fault plans against a live runtime.
//!
//! Every test scripts a [`FaultPlan`] (occurrence-counted, no wall clock, no
//! randomness — the same plan kills the same thread at the same point on every run)
//! and pins the resilience layer's headline invariant: **every admitted ticket
//! resolves** — completed, degraded, expired or failed — under every plan, plus the
//! plan-specific behaviour (restart with queues intact, budget breach degrades to
//! sync serving, checkpoint failures counted and retried).

use crn_core::{EstimatorService, ShardedPool};
use crn_estimators::ContainmentEstimator;
use crn_nn::parallel::WorkerPool;
use crn_query::Query;
use crn_serve::{
    EstimateSource, FaultInjector, FaultPlan, FaultSite, FaultTrigger, RuntimeConfig, ServeRuntime,
    SupervisorPolicy, LANE_MAINTENANCE, LANE_SCHEDULER,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A trivial containment model — all chaos here comes from the injector, not the model.
struct ConstModel;

impl ContainmentEstimator for ConstModel {
    fn name(&self) -> &str {
        "const"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        0.5
    }
}

fn chaos_runtime(
    plan: FaultPlan,
    config: RuntimeConfig,
) -> ServeRuntime<EstimatorService<ConstModel>> {
    // The pool covers `title`, so title scans route through the full model path (the
    // path BatchExecute interrupts); everything still resolves through fallbacks when
    // a batch degrades.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let service = Arc::new(EstimatorService::new(
        ConstModel,
        pool,
        WorkerPool::shared(1),
    ));
    ServeRuntime::with_faults(service, config, FaultInjector::new(plan))
}

#[test]
fn batch_panic_resolves_the_batch_degraded_and_later_batches_compute() {
    let plan = FaultPlan::none().with(FaultSite::BatchExecute, FaultTrigger::Once(2));
    let runtime = chaos_runtime(
        plan,
        RuntimeConfig::default().with_batch_max(1).with_window_us(0),
    );
    let query = Query::scan("title");
    let mut sources = Vec::new();
    for _ in 0..4 {
        // Closed loop: each submission is its own batch, so the injected fault hits
        // exactly the 2nd one.
        let outcome = runtime
            .submit(0, query.clone())
            .expect("admitted")
            .wait()
            .expect("resolved with an estimate");
        assert!(outcome.estimate > 0.0);
        sources.push(outcome.source);
    }
    assert_eq!(
        sources,
        vec![
            EstimateSource::Computed,
            EstimateSource::Degraded,
            EstimateSource::Computed,
            EstimateSource::Computed,
        ],
        "exactly the scripted batch degraded"
    );
    let stats = runtime.shutdown();
    assert!(stats.fully_resolved(), "{stats:?}");
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(
        stats.scheduler_restarts, 0,
        "a contained batch panic never reaches the supervisor"
    );
}

#[test]
fn model_panicking_every_kth_batch_still_resolves_every_ticket() {
    // Satellite: the repeated-panic shape — every 3rd batch execution panics, for the
    // whole run.  The runtime must keep alternating computed/degraded forever without
    // thread restarts or hangs.
    let plan = FaultPlan::none().with(FaultSite::BatchExecute, FaultTrigger::Every(3));
    let runtime = chaos_runtime(
        plan,
        RuntimeConfig::default().with_batch_max(1).with_window_us(0),
    );
    let query = Query::scan("title");
    let mut degraded = 0u64;
    for index in 0..12u64 {
        let outcome = runtime
            .submit(0, query.clone())
            .expect("admitted")
            .wait()
            .expect("resolved");
        if outcome.source == EstimateSource::Degraded {
            degraded += 1;
            assert_eq!((index + 1) % 3, 0, "only every 3rd batch degrades");
        }
    }
    assert_eq!(degraded, 4);
    let stats = runtime.shutdown();
    assert!(stats.fully_resolved(), "{stats:?}");
    assert_eq!(stats.degraded, 4);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.scheduler_restarts, 0);
}

#[test]
fn scheduler_kill_restarts_the_lane_with_the_queue_intact() {
    let plan = FaultPlan::none().with(FaultSite::SchedulerLoop, FaultTrigger::Once(1));
    let runtime = chaos_runtime(
        plan,
        RuntimeConfig::default().with_batch_max(1).with_window_us(0),
    );
    let query = Query::scan("title");
    // Queue several requests up front: the kill orphans the first popped batch
    // mid-flight, and the *queued* remainder must survive the restart untouched.
    let tickets: Vec<_> = (0..4u64)
        .map(|caller| runtime.submit(caller, query.clone()).expect("admitted"))
        .collect();
    let mut degraded = 0u64;
    let mut computed = 0u64;
    for ticket in &tickets {
        match ticket
            .wait_timeout(Duration::from_secs(10))
            .expect("no admitted ticket may hang across a scheduler kill")
        {
            Ok(outcome) if outcome.source == EstimateSource::Degraded => degraded += 1,
            Ok(_) => computed += 1,
            Err(error) => panic!("unexpected ticket error {error:?}"),
        }
    }
    // Exactly the orphaned batch resolved degraded (via the recovery hook); everything
    // that was still queued when the thread died was served normally after the restart.
    assert_eq!(degraded, 1);
    assert_eq!(computed, 3);
    // The restarted lane is fully live: a fresh submission computes.
    let fresh = runtime
        .submit(9, query.clone())
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(fresh.is_computed());
    let stats = runtime.shutdown();
    assert!(stats.fully_resolved(), "{stats:?}");
    assert_eq!(stats.scheduler_restarts, 1);
    assert!(!stats.degraded_sync_mode);
    assert_eq!(runtime_supervisor_panics(&stats), 1);
}

fn runtime_supervisor_panics(stats: &crn_serve::RuntimeStats) -> u64 {
    // Restarts == panics while within budget (each escaped panic was granted).
    stats.scheduler_restarts + stats.maintenance_restarts
}

#[test]
fn scheduler_budget_breach_degrades_to_sync_serving_and_nothing_hangs() {
    // Every batch pop kills the scheduler; with a budget of 2 restarts the 3rd kill
    // breaches it and the runtime must flip to degraded-sync serving — still answering,
    // on the submitting thread, and saying so in the stats.
    let plan = FaultPlan::none().with(FaultSite::SchedulerLoop, FaultTrigger::Every(1));
    let runtime = chaos_runtime(
        plan,
        RuntimeConfig::default()
            .with_batch_max(1)
            .with_window_us(0)
            .with_restart_policy(SupervisorPolicy::default().with_max_restarts(2)),
    );
    let query = Query::scan("title");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut resolved = 0u64;
    // Closed loop until the runtime reports the breach: every ticket must resolve
    // (degraded via the recovery hook while the lane crash-loops, computed-sync after).
    while !runtime.stats().degraded_sync_mode {
        assert!(
            Instant::now() < deadline,
            "budget breach must be reached deterministically"
        );
        let ticket = runtime.submit(0, query.clone()).expect("admitted");
        assert!(
            ticket.wait_timeout(Duration::from_secs(10)).is_some(),
            "no ticket may hang across the crash loop"
        );
        resolved += 1;
    }
    assert!(resolved >= 3, "three kills before the breach");
    // Degraded-sync mode: submissions serve synchronously, full fidelity (the service
    // itself is healthy — only the scheduler lane is gone).
    let outcome = runtime
        .submit(1, query.clone())
        .expect("degraded-sync still admits")
        .wait()
        .expect("served synchronously");
    assert!(outcome.is_computed());
    assert_eq!(outcome.batch_size, 1);
    let stats = runtime.shutdown();
    assert!(stats.fully_resolved(), "{stats:?}");
    assert!(stats.degraded_sync_mode);
    assert_eq!(stats.scheduler_restarts, 2, "budget of 2 was spent");
    assert!(stats.sync_served >= 1);
    assert!(stats.degraded >= 3, "each kill degraded its orphaned batch");
}

#[test]
fn maintenance_kill_restarts_the_lane_and_the_backlog_applies() {
    let plan = FaultPlan::none().with(FaultSite::MaintenanceLoop, FaultTrigger::Once(1));
    let runtime = chaos_runtime(plan, RuntimeConfig::default());
    // Three distinct records: the first is lost mid-record to the kill, the other two
    // must survive the restart (the queue lives in shared state, not the dead thread).
    for table in ["cast_info", "movie_companies", "movie_keyword"] {
        runtime
            .record_feedback(Query::scan(table), 42)
            .expect("maintenance admits");
    }
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(stats.maintenance_restarts, 1);
    assert_eq!(
        stats.maintenance_failed, 1,
        "exactly the killed record lost"
    );
    assert_eq!(stats.maintenance_applied, 2);
    assert!(!stats.maintenance_down);
    // 1 seeded `title` entry + the records that applied.  Which record the kill eats
    // depends on pop order (deterministic: arrival order), but the count is pinned.
    assert_eq!(runtime.service().pool().len(), 3);
    runtime.shutdown();
}

#[test]
fn maintenance_panicking_every_upsert_is_contained_without_restarts() {
    // Satellite: the repeated-panic shape on the maintenance lane — every single upsert
    // panics *inside* containment.  The lane must count every failure and keep
    // draining; the supervisor is never involved.
    let plan = FaultPlan::none().with(FaultSite::MaintenanceUpsert, FaultTrigger::Every(1));
    let runtime = chaos_runtime(plan, RuntimeConfig::default());
    for index in 0..8u64 {
        runtime
            .record_feedback(Query::scan("cast_info"), index)
            .expect("maintenance admits");
    }
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(stats.maintenance_failed, 8, "every upsert failed");
    assert_eq!(stats.maintenance_applied, 0);
    assert_eq!(
        stats.maintenance_restarts, 0,
        "contained panics never escalate"
    );
    assert!(!stats.maintenance_down);
    assert_eq!(runtime.service().pool().len(), 1, "only the seeded entry");
    // Serving was never disturbed.
    let outcome = runtime
        .submit(0, Query::scan("title"))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(outcome.is_computed());
    runtime.shutdown();
}

#[test]
fn maintenance_budget_breach_takes_the_lane_down_and_sheds_loudly() {
    // A kill on every record with a zero restart budget: the first escaped panic
    // breaches, the lane stays down, and both the backlog and later submissions are
    // shed as explicit counts — serving itself is untouched.
    let plan = FaultPlan::none().with(FaultSite::MaintenanceLoop, FaultTrigger::Every(1));
    let runtime = chaos_runtime(
        plan,
        RuntimeConfig::default()
            .with_restart_policy(SupervisorPolicy::default().with_max_restarts(0)),
    );
    // The first record always admits (the lane can only die after popping one); later
    // ones race the breach — either queued (then dropped by the breach drain) or
    // already shed against the dead lane.  Both resolve to explicit counts.
    let mut admitted = 0u64;
    for table in ["cast_info", "movie_companies"] {
        if runtime.record_feedback(Query::scan(table), 7).is_ok() {
            admitted += 1;
        }
    }
    assert!(admitted >= 1, "the first record precedes any kill");
    // The lane dies on the first record; wait until the breach is visible.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !runtime.stats().maintenance_down {
        assert!(Instant::now() < deadline, "breach must surface");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = runtime.stats();
    assert_eq!(stats.maintenance_restarts, 0);
    assert_eq!(
        stats.maintenance_failed, admitted,
        "every admitted record ends up counted failed: killed in-flight or dropped backlog"
    );
    // New feedback sheds instead of queueing into a dead lane.
    assert!(runtime
        .record_feedback(Query::scan("movie_keyword"), 9)
        .is_err());
    assert!(runtime.stats().maintenance_rejected >= 1);
    // flush() must not wedge on a dead lane, and serving still works.
    runtime.flush();
    let outcome = runtime
        .submit(0, Query::scan("title"))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(outcome.is_computed());
    runtime.shutdown();
}

#[test]
fn checkpoint_cadence_counts_injected_write_failures_and_retries() {
    struct CountingWriter(AtomicU64);
    impl crn_serve::CheckpointWriter for CountingWriter {
        fn write_checkpoint(&self) -> Result<(), String> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    // Cadence every 2 applied records; the 1st checkpoint attempt fails by injection
    // (before the writer is even invoked — an I/O-failure stand-in), later ones write.
    let plan = FaultPlan::none().with(FaultSite::CheckpointWrite, FaultTrigger::Once(1));
    let runtime = chaos_runtime(plan, RuntimeConfig::default().with_checkpoint_every(2));
    let writer = Arc::new(CountingWriter(AtomicU64::new(0)));
    runtime.set_checkpoint_writer(Arc::clone(&writer) as Arc<dyn crn_serve::CheckpointWriter>);
    let tables = [
        "cast_info",
        "movie_companies",
        "movie_keyword",
        "movie_info",
        "movie_info_idx",
        "company_name",
    ];
    for (index, table) in tables.iter().enumerate() {
        runtime
            .record_feedback(Query::scan(table), 5)
            .expect("maintenance admits");
        // Checkpoints write on a helper thread off the maintenance lane, and
        // back-to-back cadence hits coalesce into one write — flushing at each cadence
        // boundary pins exactly one attempt per cadence for this accounting test.
        if index % 2 == 1 {
            runtime.flush();
        }
    }
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(stats.maintenance_applied, 6);
    assert_eq!(stats.checkpoints_failed, 1, "the injected failure");
    assert_eq!(
        stats.checkpoints_written, 2,
        "the 4th and 6th records' cadences"
    );
    assert_eq!(writer.0.load(Ordering::Relaxed), 2);
    assert_eq!(stats.faults_injected, 1);
    runtime.shutdown();
}

#[test]
fn a_combined_plan_upholds_the_headline_invariant() {
    // Everything at once: a batch panic, a scheduler kill, a maintenance kill and a
    // failing checkpoint in one run.  The single invariant that must survive arbitrary
    // composition: every admitted ticket resolves, and the runtime shuts down cleanly.
    let plan = FaultPlan::none()
        .with(FaultSite::BatchExecute, FaultTrigger::Once(3))
        .with(FaultSite::SchedulerLoop, FaultTrigger::Once(5))
        .with(FaultSite::MaintenanceLoop, FaultTrigger::Once(2))
        .with(FaultSite::CheckpointWrite, FaultTrigger::Every(1));
    let runtime = chaos_runtime(
        plan,
        RuntimeConfig::default()
            .with_batch_max(1)
            .with_window_us(0)
            .with_checkpoint_every(1),
    );
    struct NeverCalled;
    impl crn_serve::CheckpointWriter for NeverCalled {
        fn write_checkpoint(&self) -> Result<(), String> {
            panic!("the injected CheckpointWrite fault must pre-empt the writer");
        }
    }
    runtime.set_checkpoint_writer(Arc::new(NeverCalled));
    let query = Query::scan("title");
    for index in 0..10u64 {
        let ticket = runtime.submit(index, query.clone()).expect("admitted");
        assert!(
            ticket.wait_timeout(Duration::from_secs(10)).is_some(),
            "ticket {index} must resolve under the combined plan"
        );
        runtime
            .record_feedback(Query::scan("cast_info"), index)
            .expect("maintenance admits");
    }
    runtime.flush();
    let supervisor = Arc::clone(runtime.supervisor());
    let stats = runtime.shutdown();
    assert!(stats.fully_resolved(), "{stats:?}");
    assert!(stats.faults_injected >= 3, "{stats:?}");
    assert_eq!(stats.scheduler_restarts, 1);
    assert_eq!(stats.maintenance_restarts, 1);
    assert!(stats.checkpoints_failed >= 1);
    assert_eq!(stats.checkpoints_written, 0);
    assert!(!stats.degraded_sync_mode);
    // The supervisor's lane view matches the stats snapshot.
    assert_eq!(supervisor.restarts(LANE_SCHEDULER), 1);
    assert_eq!(supervisor.restarts(LANE_MAINTENANCE), 1);
    assert_eq!(supervisor.total_restarts(), 2);
}
