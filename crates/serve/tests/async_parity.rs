//! Integration tests of the async serving runtime against the synchronous
//! [`EstimatorService`] — above all the acceptance-criterion **bit-parity matrix**: for a
//! fixed submitted query set, the runtime's estimates must be bit-identical to one
//! synchronous `serve` call at window-us = {0, 100, 5000} × queue-depth = {1, 64} ×
//! workers = {1, 4}.

use crn_core::{CrnModel, EstimatorService, QueriesPool, ShardedPool};
use crn_exec::label_containment_pairs;
use crn_nn::parallel::WorkerPool;
use crn_nn::TrainConfig;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use crn_query::Query;
use crn_serve::{RuntimeConfig, ServeRuntime, SloClass, Ticket};
use std::sync::Arc;

use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_db::Database;

fn trained_crn(db: &Database, seed: u64) -> CrnModel {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let pairs = gen.generate_pairs(30, 120);
    let samples = label_containment_pairs(db, &pairs, 4);
    let mut crn = CrnModel::new(db, TrainConfig::fast_test());
    crn.fit(&samples);
    crn
}

fn workload(db: &Database, seed: u64, count: usize) -> Vec<Query> {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let mut queries = gen.generate_queries(count);
    queries.truncate(count);
    queries
}

/// The acceptance matrix: async estimates are bit-identical to the synchronous service
/// path at every (window × depth × workers) grid point, under concurrent submitters.
#[test]
fn async_runtime_is_bit_identical_to_synchronous_service() {
    let db = generate_imdb(&ImdbConfig::tiny(70));
    let pool = QueriesPool::generate(&db, 60, 2, 70);
    let crn = trained_crn(&db, 70);
    let queries = workload(&db, 71, 24);

    // The synchronous reference: one serve call over the whole set (its per-query results
    // are independent of batch composition, which is exactly what the matrix re-checks
    // through the runtime's arbitrary batch slicing).
    let reference = EstimatorService::new(
        crn.clone(),
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(2),
    );
    let expected = reference.serve(&queries).estimates;
    assert_eq!(expected.len(), queries.len());

    for window_us in [0u64, 100, 5000] {
        for queue_depth in [1usize, 64] {
            for workers in [1usize, 4] {
                let service = Arc::new(EstimatorService::new(
                    crn.clone(),
                    ShardedPool::from_pool(&pool, 4),
                    WorkerPool::shared(workers),
                ));
                let config = RuntimeConfig::default()
                    .with_window_us(window_us)
                    .with_queue_depth(queue_depth);
                let runtime = ServeRuntime::new(service, config);

                // Three concurrent callers interleave the workload round-robin.
                let mut actual = vec![f64::NAN; queries.len()];
                std::thread::scope(|scope| {
                    let runtime = &runtime;
                    let queries = &queries;
                    let handles: Vec<_> = (0..3u64)
                        .map(|caller| {
                            scope.spawn(move || {
                                let mut tickets = Vec::new();
                                for (index, query) in queries.iter().enumerate() {
                                    if index as u64 % 3 == caller {
                                        let ticket = runtime
                                            .submit_retrying(caller, query)
                                            .expect("runtime alive");
                                        tickets.push((index, ticket));
                                    }
                                }
                                tickets
                                    .into_iter()
                                    .map(|(index, ticket)| {
                                        (index, ticket.wait().expect("served").estimate)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (index, estimate) in handle.join().expect("caller thread") {
                            actual[index] = estimate;
                        }
                    }
                });

                for (index, (a, e)) in actual.iter().zip(&expected).enumerate() {
                    assert!(
                        a == e,
                        "window={window_us}us depth={queue_depth} workers={workers} \
                         query {index}: async {a} vs sync {e}"
                    );
                }
                let stats = runtime.shutdown();
                assert_eq!(stats.submitted, queries.len() as u64);
                assert_eq!(stats.completed, queries.len() as u64);
                assert_eq!(stats.serve.pool_hits + stats.serve.fallbacks, 24);
            }
        }
    }
}

/// The SLO-class / estimate-cache acceptance matrix: with a registered `Batch` caller,
/// per-class windows, weighted admission shares and the cross-window cache in every
/// combination, the estimates stay bit-identical to one synchronous `serve` — the class
/// scheduler only re-slices batches (per-query results are batch-independent) and a
/// cache hit only replays a computed answer under the live version pairing.
#[test]
fn class_windows_weights_and_cache_preserve_bit_parity() {
    let db = generate_imdb(&ImdbConfig::tiny(78));
    let pool = QueriesPool::generate(&db, 50, 2, 78);
    let crn = trained_crn(&db, 78);
    let queries = workload(&db, 79, 18);
    let reference = EstimatorService::new(
        crn.clone(),
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(2),
    );
    let expected = reference.serve(&queries).estimates;

    for batch_window_us in [0u64, 3000] {
        for weights in [[0u32, 0], [3, 1]] {
            for cache_entries in [0usize, 64] {
                let service = Arc::new(EstimatorService::new(
                    crn.clone(),
                    ShardedPool::from_pool(&pool, 4),
                    WorkerPool::shared(2),
                ));
                let config = RuntimeConfig::default()
                    .with_window_us(100)
                    .with_class_window_us(SloClass::Batch, batch_window_us)
                    .with_class_weights(weights)
                    .with_cache_entries(cache_entries);
                let runtime = ServeRuntime::new(service, config);
                // Caller 2 is throughput-class: its third of the workload rides the
                // batch lane while callers 0 and 1 stay interactive.
                runtime.register_caller(2, SloClass::Batch);

                // Two rounds over the same workload: with the cache on, the second
                // round replays round one's computed answers — which must be invisible
                // in the estimates.
                for round in 0..2 {
                    let mut actual = vec![f64::NAN; queries.len()];
                    std::thread::scope(|scope| {
                        let runtime = &runtime;
                        let queries = &queries;
                        let handles: Vec<_> = (0..3u64)
                            .map(|caller| {
                                scope.spawn(move || {
                                    let mut tickets = Vec::new();
                                    for (index, query) in queries.iter().enumerate() {
                                        if index as u64 % 3 == caller {
                                            let ticket = runtime
                                                .submit_retrying(caller, query)
                                                .expect("runtime alive");
                                            tickets.push((index, ticket));
                                        }
                                    }
                                    tickets
                                        .into_iter()
                                        .map(|(index, ticket)| {
                                            (index, ticket.wait().expect("served").estimate)
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        for handle in handles {
                            for (index, estimate) in handle.join().expect("caller thread") {
                                actual[index] = estimate;
                            }
                        }
                    });
                    for (index, (a, e)) in actual.iter().zip(&expected).enumerate() {
                        assert!(
                            a == e,
                            "batch-window={batch_window_us}us weights={weights:?} \
                             cache={cache_entries} round={round} query {index}: \
                             async {a} vs sync {e}"
                        );
                    }
                }
                let stats = runtime.shutdown();
                assert_eq!(stats.completed, 2 * queries.len() as u64);
                assert!(stats.fully_resolved(), "{stats:?}");
                // The work accounting closes exactly: every completed request was
                // computed, coalesced onto a computed row, or replayed from the cache.
                assert_eq!(
                    stats.serve.queries as u64 + stats.coalesced + stats.cache_hits,
                    stats.completed,
                    "{stats:?}"
                );
                if cache_entries == 0 {
                    assert_eq!(stats.cache_hits + stats.cache_misses, 0, "{stats:?}");
                } else {
                    assert!(
                        stats.cache_hits > 0,
                        "round two repeats the workload verbatim: {stats:?}"
                    );
                }
            }
        }
    }
}

/// The maintenance lane: feedback records apply to the live pool exactly like synchronous
/// single-swap upserts, and subsequent async estimates match a synchronous service over
/// the identically-updated pool bit for bit.
#[test]
fn maintenance_lane_matches_synchronous_upserts() {
    let db = generate_imdb(&ImdbConfig::tiny(72));
    let pool = QueriesPool::generate(&db, 50, 1, 72);
    let crn = trained_crn(&db, 72);
    let queries = workload(&db, 73, 12);

    let service = Arc::new(EstimatorService::new(
        crn.clone(),
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(2),
    ));
    let runtime = ServeRuntime::new(
        Arc::clone(&service),
        RuntimeConfig::default().with_window_us(100),
    );

    // Feed "executed query" feedback: refreshed cardinalities for existing entries plus a
    // brand-new entry per workload query.
    let executor = crn_exec::Executor::new(&db);
    let mut updated = pool.clone();
    for entry in pool.entries().iter().take(4) {
        let refreshed = entry.cardinality + 17;
        runtime
            .record_feedback(entry.query.clone(), refreshed)
            .expect("maintenance admits");
        updated.upsert(entry.query.clone(), refreshed);
    }
    for query in queries.iter().take(3) {
        let cardinality = executor.cardinality(query);
        runtime
            .record_feedback(query.clone(), cardinality)
            .expect("maintenance admits");
        updated.upsert(query.clone(), cardinality);
    }
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(stats.maintenance_applied, 7);
    assert_eq!(service.pool().len(), updated.len());

    // Async estimates over the maintained pool == sync service over the same upserts.
    let reference = EstimatorService::new(
        crn.clone(),
        ShardedPool::from_pool(&updated, 4),
        WorkerPool::shared(2),
    );
    let expected = reference.serve(&queries).estimates;
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|query| runtime.submit_retrying(0, query).expect("runtime alive"))
        .collect();
    for (index, (ticket, e)) in tickets.iter().zip(&expected).enumerate() {
        let a = ticket.wait().expect("served").estimate;
        assert!(
            a == *e,
            "query {index} after maintenance: async {a} vs sync-upserted {e}"
        );
    }
    runtime.shutdown();
}

/// Cross-call batching: concurrent closed-loop callers fuse into shared batches when the
/// window is open wide enough, and every fused estimate still matches the reference.
#[test]
fn concurrent_callers_fuse_into_shared_batches() {
    let db = generate_imdb(&ImdbConfig::tiny(74));
    let pool = QueriesPool::generate(&db, 40, 1, 74);
    let crn = trained_crn(&db, 74);
    let queries = workload(&db, 75, 6);
    let reference = EstimatorService::new(
        crn.clone(),
        ShardedPool::from_pool(&pool, 2),
        WorkerPool::shared(2),
    );
    let expected = reference.serve(&queries).estimates;

    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 2),
        WorkerPool::shared(2),
    ));
    let runtime = ServeRuntime::new(
        Arc::clone(&service),
        RuntimeConfig::default().with_window_us(20_000),
    );
    std::thread::scope(|scope| {
        for caller in 0..4u64 {
            let runtime = &runtime;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                // Closed loop: wait for each outcome before the next submission.
                for (query, e) in queries.iter().zip(expected) {
                    let outcome = runtime
                        .submit_retrying(caller, query)
                        .expect("runtime alive")
                        .wait()
                        .expect("served");
                    assert!(outcome.estimate == *e, "fused estimate must match");
                    assert!(outcome.batch_size >= 1);
                }
            });
        }
    });
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 24);
    assert!(
        stats.max_batch >= 2,
        "4 concurrent callers inside a 20ms window must fuse: {stats:?}"
    );
    assert!(
        stats.batches < stats.completed,
        "cross-call batching must need fewer batches than requests: {stats:?}"
    );
    assert!(stats.mean_batch() > 1.0);
}

/// Duplicate in-window queries coalesce into one computed row fanned out to every
/// duplicate's ticket — and the answers stay bit-identical to the synchronous reference
/// (the dedupe must be invisible except in the work counters).
#[test]
fn duplicate_in_window_queries_coalesce_with_bit_parity() {
    let db = generate_imdb(&ImdbConfig::tiny(76));
    let pool = QueriesPool::generate(&db, 40, 1, 76);
    let crn = trained_crn(&db, 76);
    let distinct = workload(&db, 77, 4);
    let reference = EstimatorService::new(
        crn.clone(),
        ShardedPool::from_pool(&pool, 2),
        WorkerPool::shared(2),
    );
    let expected = reference.serve(&distinct).estimates;

    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 2),
        WorkerPool::shared(2),
    ));
    // A wide window so every caller's duplicate of the same query lands in one batch.
    let runtime = ServeRuntime::new(
        Arc::clone(&service),
        RuntimeConfig::default().with_window_us(50_000),
    );
    let rounds = 3usize;
    std::thread::scope(|scope| {
        for caller in 0..4u64 {
            let runtime = &runtime;
            let distinct = &distinct;
            let expected = &expected;
            scope.spawn(move || {
                // Every caller submits the SAME queries: each window holds up to 4
                // duplicates of each, which must fan out from one computed row.
                for _ in 0..rounds {
                    let tickets: Vec<Ticket> = distinct
                        .iter()
                        .map(|query| runtime.submit_retrying(caller, query).expect("alive"))
                        .collect();
                    for (index, (ticket, e)) in tickets.iter().zip(expected).enumerate() {
                        let outcome = ticket.wait().expect("served");
                        assert!(
                            outcome.estimate == *e,
                            "caller {caller} query {index}: coalesced {} vs reference {e}",
                            outcome.estimate
                        );
                    }
                }
            });
        }
    });
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, (4 * rounds * distinct.len()) as u64);
    assert!(
        stats.coalesced > 0,
        "4 callers submitting identical queries into 50ms windows must coalesce: {stats:?}"
    );
    // The service computed strictly fewer rows than the runtime resolved tickets — the
    // aggregate serve stats count unique rows, the completion counter counts requests.
    assert!(
        stats.serve.queries < stats.completed as usize,
        "coalescing must shrink the computed batches: {stats:?}"
    );
    assert_eq!(
        stats.serve.queries as u64 + stats.coalesced,
        stats.completed,
        "every request is either computed or coalesced onto a computed row"
    );
}
