//! Behavioural tests of the latency SLO classes: per-class batching windows (the
//! scheduler closes the most urgent class first), weighted admission shares (batch
//! traffic can never occupy interactive slots), and the config math both are built on.
//! Like `runtime_behavior.rs`, these run over trivial models so they exercise pure
//! scheduler/admission behaviour.

use crn_core::{EstimatorService, ShardedPool};
use crn_estimators::ContainmentEstimator;
use crn_nn::parallel::WorkerPool;
use crn_query::Query;
use crn_serve::{RejectReason, RuntimeConfig, ServeRuntime, SloClass, SubmitError};
use std::sync::Arc;
use std::time::Duration;

/// A trivial containment model: constant rate, no precomputation.
struct ConstModel;

impl ContainmentEstimator for ConstModel {
    fn name(&self) -> &str {
        "const"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        0.5
    }
}

/// A model that sleeps on every pair — pins the scheduler in a slow batch so pending
/// requests accumulate and the admission bounds become observable.
struct SlowModel(Duration);

impl ContainmentEstimator for SlowModel {
    fn name(&self) -> &str {
        "slow"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        std::thread::sleep(self.0);
        0.5
    }
}

fn runtime_over<M: ContainmentEstimator + Send + Sync + 'static>(
    model: M,
    pool: ShardedPool,
    config: RuntimeConfig,
) -> ServeRuntime<EstimatorService<M>> {
    let service = Arc::new(EstimatorService::new(model, pool, WorkerPool::shared(1)));
    ServeRuntime::new(service, config)
}

#[test]
fn class_share_math_and_window_inheritance() {
    let config = RuntimeConfig::default()
        .with_queue_depth(8)
        .with_class_weights([3, 1]);
    // ceil(8·3/4) = 6 and ceil(8·1/4) = 2: the weighted split of the depth.
    assert_eq!(config.class_share(SloClass::Interactive), 6);
    assert_eq!(config.class_share(SloClass::Batch), 2);
    // All-zero weights (the default) disable shares: every class may use the full depth.
    let unweighted = RuntimeConfig::default().with_queue_depth(8);
    assert_eq!(unweighted.class_share(SloClass::Interactive), 8);
    assert_eq!(unweighted.class_share(SloClass::Batch), 8);
    // A zero-weight class among non-zero weights still gets the floor of 1 — weighted
    // admission throttles, it never bricks a class outright.
    let lopsided = RuntimeConfig::default()
        .with_queue_depth(8)
        .with_class_weights([1, 0]);
    assert_eq!(lopsided.class_share(SloClass::Batch), 1);

    // Windows: interactive inherits the base window by default, batch defaults to 2ms,
    // and setting a class window to 0µs restores inheritance.
    let windows = RuntimeConfig::default().with_window_us(100);
    assert_eq!(
        windows.class_window(SloClass::Interactive),
        Duration::from_micros(100)
    );
    assert_eq!(
        windows.class_window(SloClass::Batch),
        Duration::from_millis(2)
    );
    let inherited = windows.with_class_window_us(SloClass::Batch, 0);
    assert_eq!(
        inherited.class_window(SloClass::Batch),
        Duration::from_micros(100)
    );
    let explicit = RuntimeConfig::default().with_class_window_us(SloClass::Batch, 7_000);
    assert_eq!(
        explicit.class_window(SloClass::Batch),
        Duration::from_micros(7_000)
    );
}

#[test]
fn interactive_requests_close_before_an_open_batch_window() {
    // Batch-class traffic batches under a long 300ms window; interactive traffic keeps
    // the base 100µs window.  An interactive request arriving while a batch request is
    // still accumulating must close (and resolve) first — the most-urgent-class-first
    // close decision.
    let runtime = runtime_over(
        ConstModel,
        ShardedPool::new(2),
        RuntimeConfig::default()
            .with_window_us(100)
            .with_class_window_us(SloClass::Batch, 300_000),
    );
    runtime.register_caller(8, SloClass::Batch);
    assert_eq!(runtime.caller_class(8), SloClass::Batch);
    assert_eq!(runtime.caller_class(1), SloClass::Interactive);

    let background = runtime.submit(8, Query::scan("title")).expect("admitted");
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        background.poll().is_none(),
        "the batch-class window holds its batch open"
    );
    let foreground = runtime
        .submit(1, Query::scan("cast_info"))
        .expect("admitted");
    let fg = foreground.wait().expect("served");
    assert!(
        background.poll().is_none(),
        "the interactive batch closed and served while the batch window was still open"
    );
    let bg = background.wait().expect("served");
    assert!(
        fg.batch_seq < bg.batch_seq,
        "the later-submitted interactive request must close first: \
         interactive seq {} vs batch seq {}",
        fg.batch_seq,
        bg.batch_seq
    );
    assert!(
        bg.queue_wait >= Duration::from_millis(100),
        "the batch request waited out (most of) its class window: {:?}",
        bg.queue_wait
    );
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.batches, 2, "single-class batches: one per class");
    assert!(stats.fully_resolved(), "{stats:?}");
}

#[test]
fn weighted_admission_caps_batch_traffic_but_not_interactive() {
    // Queue depth 8 split [3, 1]: the batch class may hold at most ceil(8/4) = 2
    // pending requests, interactive up to 6.  A slow plug batch pins the scheduler so
    // the queue actually accumulates.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let runtime = runtime_over(
        SlowModel(Duration::from_millis(300)),
        pool,
        RuntimeConfig::default()
            .with_queue_depth(8)
            .with_batch_max(1)
            .with_window_us(0)
            .with_class_weights([3, 1]),
    );
    runtime.register_caller(50, SloClass::Batch);
    runtime.register_caller(51, SloClass::Batch);

    // The plug: popped immediately (window 0, batch max 1), then ~300ms in flight.
    let plug = runtime.submit(0, Query::scan("title")).expect("admitted");
    std::thread::sleep(Duration::from_millis(20));

    // The batch class fills its share of 2 and is then shed with ClassShare — even
    // though the queue itself has plenty of room.
    let b1 = runtime
        .submit(50, Query::scan("cast_info"))
        .expect("admitted");
    let b2 = runtime
        .submit(51, Query::scan("cast_info"))
        .expect("admitted");
    match runtime.submit(50, Query::scan("cast_info")) {
        Err(SubmitError::Overloaded {
            reason: RejectReason::ClassShare,
            ..
        }) => {}
        other => panic!("expected a class-share rejection, got {other:?}"),
    }

    // Interactive callers still find their whole share admissible: the starvation
    // guarantee weighted admission exists for.
    let interactive: Vec<_> = (1..=6u64)
        .map(|caller| {
            runtime
                .submit(caller, Query::scan("cast_info"))
                .expect("interactive slots stay open despite the batch flood")
        })
        .collect();
    // Now the queue really is at depth: a further interactive submission sheds with
    // QueueFull, not ClassShare.
    match runtime.submit(7, Query::scan("cast_info")) {
        Err(SubmitError::Overloaded {
            reason: RejectReason::QueueFull,
            ..
        }) => {}
        other => panic!("expected a queue-full rejection, got {other:?}"),
    }

    assert!(plug.wait().is_ok());
    assert!(b1.wait().is_ok());
    assert!(b2.wait().is_ok());
    for ticket in &interactive {
        assert!(ticket.wait().is_ok());
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 9);
    assert_eq!(stats.rejected_class_share, 1);
    assert_eq!(stats.rejected_queue_full, 1);
    assert!(stats.fully_resolved(), "{stats:?}");
}

#[test]
fn unregistered_runtime_behaves_like_the_single_window_runtime() {
    // No registered callers, default all-zero weights: every request is interactive,
    // no class share ever rejects, and the batch-class default window is irrelevant.
    let runtime = runtime_over(
        ConstModel,
        ShardedPool::new(2),
        RuntimeConfig::default()
            .with_queue_depth(4)
            .with_window_us(0),
    );
    for caller in 0..12u64 {
        let outcome = runtime
            .submit_retrying(caller, &Query::scan("title"))
            .expect("admitted")
            .wait()
            .expect("served");
        assert!(outcome.is_computed());
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.rejected_class_share, 0);
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        0,
        "cache off by default"
    );
    assert!(stats.fully_resolved(), "{stats:?}");
}
