//! Accounting-integrity tests of the runtime's observability surface: the
//! end-of-run summary must enumerate every [`RuntimeStats`] field (a counter
//! added without reporting fails here, not in production), the resolution
//! accounting identity `serve.queries + coalesced + cache_hits == completed`
//! must close under arbitrary interleavings of coalescing, cache hits,
//! deadline expiry and class-share admission, and the `crn-obs` layer must be
//! invisible when disabled yet complete when enabled — same estimates either
//! way.

use crn_core::{EstimatorService, ShardedPool};
use crn_estimators::ContainmentEstimator;
use crn_nn::parallel::WorkerPool;
use crn_obs::{Event, Obs, ObsConfig};
use crn_query::Query;
use crn_serve::{RuntimeConfig, RuntimeStats, ServeRuntime, SloClass, SubmitError};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// A trivial containment model: constant rate, no precomputation.
struct ConstModel;

impl ContainmentEstimator for ConstModel {
    fn name(&self) -> &str {
        "const"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        0.5
    }
}

fn instant_runtime(config: RuntimeConfig) -> ServeRuntime<EstimatorService<ConstModel>> {
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let service = Arc::new(EstimatorService::new(
        ConstModel,
        pool,
        WorkerPool::shared(1),
    ));
    ServeRuntime::new(service, config)
}

/// Field names of a struct's `{:#?}`-free Debug output at nesting depth 1:
/// identifiers immediately followed by `:` while exactly one brace/bracket is
/// open.  Nested struct fields (depth 2+) and the type name (depth 0) are
/// excluded.
fn debug_fields_at_depth_one(debug: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut token = String::new();
    for ch in debug.chars() {
        match ch {
            '{' | '[' => {
                depth += 1;
                token.clear();
            }
            '}' | ']' => {
                depth -= 1;
                token.clear();
            }
            ':' if depth == 1 && !token.is_empty() => {
                fields.push(token.clone());
                token.clear();
            }
            c if c.is_ascii_alphanumeric() || c == '_' => token.push(c),
            _ => token.clear(),
        }
    }
    fields
}

/// Satellite: the end-of-run summary prints from [`RuntimeStats::counter_fields`];
/// this pins that the enumeration is complete.  A counter added to the struct
/// without extending `counter_fields` fails here — reporting can never silently
/// fall behind the struct.
#[test]
fn counter_fields_covers_every_runtime_stats_field() {
    let stats = RuntimeStats::default();
    let struct_fields = debug_fields_at_depth_one(&format!("{stats:?}"));
    assert!(
        struct_fields.len() >= 30,
        "Debug parsing collapsed — got only {struct_fields:?}"
    );
    let reported: Vec<&str> = stats
        .counter_fields()
        .iter()
        .map(|(name, _)| *name)
        .collect();
    for field in &struct_fields {
        // The nested per-layer serve stats have their own render path.
        if field == "serve" {
            continue;
        }
        let covered = reported
            .iter()
            .any(|name| name == field || name.starts_with(&format!("{field}.")));
        assert!(
            covered,
            "RuntimeStats field `{field}` missing from counter_fields(): {reported:?}"
        );
    }
    // And nothing is reported that the struct does not carry (guards renames).
    for name in &reported {
        let root = name.split('.').next().unwrap();
        assert!(
            struct_fields.iter().any(|field| field == root),
            "counter_fields() entry `{name}` has no RuntimeStats field"
        );
    }
}

mod accounting_identity {
    use super::*;
    use proptest::prelude::*;

    /// A tiny deterministic PRNG (splitmix64) deriving an op sequence from one
    /// sampled seed — the vendored `proptest` shim provides range strategies only.
    struct OpRng(u64);

    impl OpRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The resolution-accounting identity documented on
        /// [`RuntimeStats::cache_hits`]: with no degraded/failed traffic, every
        /// completed request is accounted exactly once — computed by the service
        /// (`serve.queries`), coalesced onto an in-batch duplicate, or replayed
        /// from the estimate cache.  Interleaves duplicate-heavy submissions,
        /// already-expired deadlines, flushes (the cache's second-pass hits) and
        /// weighted two-class admission; the identity and `fully_resolved` must
        /// close at quiescence regardless of the interleaving.
        #[test]
        fn resolution_accounting_closes_under_interleaved_traffic(
            seed in 0u64..1_000_000,
            op_count in 20usize..120,
            cache_entries in 0usize..48,
        ) {
            const TABLES: [&str; 3] = ["title", "cast_info", "movie_companies"];
            let mut rng = OpRng(seed);
            let runtime = instant_runtime(
                RuntimeConfig::default()
                    .with_queue_depth(16)
                    .with_batch_max(4)
                    .with_window_us(200)
                    .with_class_weights([3, 1])
                    .with_cache_entries(cache_entries),
            );
            // Odd callers ride the batch class: admission runs the weighted
            // class-share path (rejections allowed, never miscounted).
            for caller in 0..4u64 {
                let class = if caller % 2 == 1 { SloClass::Batch } else { SloClass::Interactive };
                runtime.register_caller(caller, class);
            }
            let mut tickets = Vec::new();
            for _ in 0..op_count {
                let caller = rng.next() % 4;
                let query = Query::scan(TABLES[(rng.next() % TABLES.len() as u64) as usize]);
                match rng.next() % 8 {
                    // Submissions dominate; a 3-table query set makes in-batch
                    // duplicates (coalescing) and cross-batch repeats (cache
                    // hits) common.
                    0..=5 => match runtime.submit(caller, query) {
                        Ok(ticket) => tickets.push(ticket),
                        Err(SubmitError::Overloaded { .. }) => {}
                        Err(other) => prop_assert!(false, "unexpected submit error {other:?}"),
                    },
                    // An already-expired deadline: shed unexecuted at pop time.
                    6 => match runtime.submit_with_deadline(caller, query, Some(Duration::ZERO)) {
                        Ok(ticket) => tickets.push(ticket),
                        Err(SubmitError::Overloaded { .. }) => {}
                        Err(other) => prop_assert!(false, "unexpected submit error {other:?}"),
                    },
                    // Quiesce mid-stream so later repeats replay from the cache.
                    _ => runtime.flush(),
                }
            }
            for ticket in tickets {
                match ticket.wait() {
                    Ok(outcome) => prop_assert!(outcome.is_computed()),
                    Err(crn_serve::TicketError::Expired) => {}
                    Err(other) => prop_assert!(false, "unexpected resolution {other:?}"),
                }
            }
            runtime.flush();
            let stats = runtime.shutdown();
            prop_assert!(stats.fully_resolved(), "unbalanced resolution: {stats:?}");
            prop_assert_eq!(stats.degraded, 0);
            prop_assert_eq!(stats.failed, 0);
            prop_assert!(
                stats.serve.queries as u64 + stats.coalesced + stats.cache_hits
                    == stats.completed,
                "accounting identity broken: {stats:?}"
            );
            if cache_entries == 0 {
                prop_assert_eq!(stats.cache_hits + stats.cache_misses, 0);
            }
        }
    }
}

fn run_closed_loop(
    runtime: &ServeRuntime<EstimatorService<ConstModel>>,
) -> Vec<(f64, Option<crn_obs::RequestTrace>)> {
    const TABLES: [&str; 3] = ["title", "cast_info", "movie_companies"];
    (0..12)
        .map(|index| {
            let outcome = runtime
                .submit(0, Query::scan(TABLES[index % TABLES.len()]))
                .expect("admitted")
                .wait()
                .expect("served");
            (outcome.estimate, outcome.trace)
        })
        .collect()
}

/// Disabled obs (the default) must be invisible — no traces minted, no journal —
/// and, run against the identical workload with obs enabled, the estimates must
/// be bit-identical while every completion carries a trace, lands in the latency
/// histogram, and every closed batch lands in the journal.
#[test]
fn obs_disabled_is_invisible_and_enabled_is_complete_at_identical_estimates() {
    // Disabled path: the default config, exactly the pre-obs runtime.
    let runtime = instant_runtime(RuntimeConfig::default().with_window_us(0));
    let disabled = run_closed_loop(&runtime);
    runtime.shutdown();
    for (_, trace) in &disabled {
        assert!(trace.is_none(), "disabled obs must not mint traces");
    }

    // Enabled path: same workload, full instrumentation.
    let obs = Obs::new(ObsConfig::enabled());
    let runtime = instant_runtime(
        RuntimeConfig::default()
            .with_window_us(0)
            .with_obs(obs.clone()),
    );
    let enabled = run_closed_loop(&runtime);
    let stats = runtime.shutdown();

    let disabled_estimates: Vec<f64> = disabled.iter().map(|(estimate, _)| *estimate).collect();
    let enabled_estimates: Vec<f64> = enabled.iter().map(|(estimate, _)| *estimate).collect();
    assert_eq!(
        disabled_estimates, enabled_estimates,
        "instrumentation changed the estimates"
    );

    let mut trace_ids = HashSet::new();
    for (_, trace) in &enabled {
        let trace = trace.as_ref().expect("enabled obs traces every completion");
        assert!(trace_ids.insert(trace.trace_id), "trace IDs must be unique");
    }

    // Every completion is in the per-class latency histogram (caller 0 is
    // unregistered, i.e. Interactive), and every closed batch is journaled.
    let hist = obs.hist("serve.latency_us.interactive");
    assert_eq!(hist.count(), stats.completed);
    let closes = obs
        .events_since(0)
        .iter()
        .filter(|entry| matches!(entry.event, Event::BatchClosed { .. }))
        .count() as u64;
    assert_eq!(closes, stats.batches);
}
