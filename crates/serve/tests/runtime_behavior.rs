//! Behavioural tests of the runtime machinery itself — admission control, graceful
//! drain, window semantics — over a trivial containment model (an empty pool resolves
//! every query to the configured default estimate, so serving is near-instant and the
//! tests exercise pure queue/scheduler behaviour).

use crn_core::{EstimatorService, ShardedPool};
use crn_estimators::ContainmentEstimator;
use crn_nn::parallel::WorkerPool;
use crn_query::Query;
use crn_serve::{RejectReason, RuntimeConfig, ServeRuntime, SubmitError};
use std::sync::Arc;
use std::time::Duration;

/// A trivial containment model: constant rate, no precomputation.
struct ConstModel;

impl ContainmentEstimator for ConstModel {
    fn name(&self) -> &str {
        "const"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        0.5
    }
}

/// A model that sleeps on every pair — pins a batch in flight so the admission bounds
/// *behind* the executing batch are observable.
struct SlowModel(Duration);

impl ContainmentEstimator for SlowModel {
    fn name(&self) -> &str {
        "slow"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        std::thread::sleep(self.0);
        0.5
    }
}

/// A model that panics on every pair — exercises the runtime's panic containment.
struct PanicModel;

impl ContainmentEstimator for PanicModel {
    fn name(&self) -> &str {
        "panicky"
    }

    fn estimate_containment(&self, _q1: &Query, _q2: &Query) -> f64 {
        panic!("injected model panic")
    }
}

fn runtime_over<M: ContainmentEstimator + Send + Sync + 'static>(
    model: M,
    pool: ShardedPool,
    config: RuntimeConfig,
) -> ServeRuntime<EstimatorService<M>> {
    let service = Arc::new(EstimatorService::new(model, pool, WorkerPool::shared(1)));
    ServeRuntime::new(service, config)
}

fn instant_runtime(config: RuntimeConfig) -> ServeRuntime<EstimatorService<ConstModel>> {
    runtime_over(ConstModel, ShardedPool::new(2), config)
}

#[test]
fn admission_sheds_load_and_drain_resolves_every_ticket() {
    // The pool covers only `title` scans, and the model sleeps per pair — so the first
    // (title-scan) request pins the scheduler in a slow batch while the queue fills with
    // instant (uncovered) requests behind it, making the admission bounds observable.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let runtime = runtime_over(
        SlowModel(Duration::from_millis(100)),
        pool,
        RuntimeConfig::default()
            .with_queue_depth(4)
            .with_per_caller_depth(2)
            .with_batch_max(1)
            .with_window_us(0),
    );
    let covered = Query::scan("title");
    let uncovered = Query::scan("cast_info");

    // The plug: popped immediately (window 0, batch max 1), then ~200ms in flight.
    let plug = runtime.submit(9, covered.clone()).expect("admitted");
    std::thread::sleep(Duration::from_millis(20));
    assert!(plug.poll().is_none(), "the plug batch is still executing");

    let a1 = runtime.submit(1, uncovered.clone()).expect("admitted");
    let a2 = runtime.submit(1, uncovered.clone()).expect("admitted");
    // Caller 1 is at its quota; caller 2 still gets its share.
    match runtime.submit(1, uncovered.clone()) {
        Err(SubmitError::Overloaded {
            reason: RejectReason::CallerQuota,
            ..
        }) => {}
        other => panic!("expected a caller-quota rejection, got {other:?}"),
    }
    let b1 = runtime.submit(2, uncovered.clone()).expect("admitted");
    let b2 = runtime.submit(2, uncovered.clone()).expect("admitted");
    // The queue is at depth: even a fresh caller is shed.
    match runtime.submit(3, uncovered.clone()) {
        Err(SubmitError::Overloaded {
            reason: RejectReason::QueueFull,
            ..
        }) => {}
        other => panic!("expected a queue-full rejection, got {other:?}"),
    }

    // Initiating the drain stops admission but still serves everything queued.
    runtime.begin_shutdown();
    assert!(matches!(
        runtime.submit(2, uncovered.clone()),
        Err(SubmitError::ShuttingDown)
    ));
    assert!(matches!(
        runtime.record_feedback(uncovered, 9),
        Err(SubmitError::ShuttingDown)
    ));
    for resolution in [plug.wait(), a1.wait(), a2.wait(), b1.wait(), b2.wait()] {
        let outcome = resolution.expect("served");
        assert_eq!(outcome.batch_size, 1, "batch max 1: served one by one");
        assert!(outcome.estimate > 0.0);
    }
    // The queued requests waited at least as long as the plug batch executed.
    assert!(a1.wait().expect("served").queue_wait > Duration::ZERO);

    let stats = runtime.shutdown();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.rejected_caller_quota, 1);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.batches, 5);
    assert_eq!(stats.max_batch, 1);
}

#[test]
fn batch_max_is_clamped_to_queue_depth() {
    // A size threshold above the queue depth could never be met (admission caps pending
    // there) — the runtime normalizes it down so a full queue closes immediately instead
    // of waiting out the window.
    let runtime = instant_runtime(
        RuntimeConfig::default()
            .with_queue_depth(4)
            .with_batch_max(100)
            .with_window_us(10_000_000),
    );
    assert_eq!(runtime.config().batch_max, 4);
    let query = Query::scan("title");
    let tickets: Vec<_> = (0..4u64)
        .map(|caller| runtime.submit(caller, query.clone()).expect("admitted"))
        .collect();
    // The 4th submission fills the queue = meets the clamped threshold: the batch closes
    // by SIZE long before the 10s window.
    for ticket in &tickets {
        assert!(
            ticket.wait_timeout(Duration::from_secs(5)).is_some(),
            "a full queue must not wait out the window"
        );
    }
    let stats = runtime.shutdown();
    assert!(stats.size_closes >= 1, "{stats:?}");
}

#[test]
fn panicked_batches_resolve_degraded_and_the_runtime_survives() {
    // The pool covers `title` scans, so a title-scan query routes through the panicking
    // model; uncovered queries take the fallback path and never touch it.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let runtime = runtime_over(PanicModel, pool, RuntimeConfig::default().with_window_us(0));
    let doomed = runtime.submit(0, Query::scan("title")).expect("admitted");
    // The waiter gets a *degraded* answer, not a hang and not a re-raised panic: the
    // batch's panic was contained and the ticket resolved through the fallback path,
    // tagged with its provenance.
    let outcome = doomed.wait().expect("resolved degraded, not failed");
    assert!(!outcome.is_computed());
    assert_eq!(outcome.source, crn_serve::EstimateSource::Degraded);
    assert!(outcome.estimate > 0.0, "the default estimate is usable");

    // The scheduler survived: the fallback path still serves (Computed — the panicking
    // model was never consulted), flush() does not hang on the panicked batch's
    // accounting, and shutdown is clean.
    let ok = runtime
        .submit(0, Query::scan("cast_info"))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(ok.is_computed());
    assert!(ok.estimate > 0.0);
    runtime.flush();
    let stats = runtime.shutdown();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.failed, 0, "the fallback path answered");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.batches, 2);
    assert!(stats.fully_resolved(), "{stats:?}");
    assert_eq!(
        stats.scheduler_restarts, 0,
        "a contained batch panic never escalates to the supervisor"
    );
}

#[test]
fn queued_requests_past_their_deadline_expire_instead_of_executing() {
    // The pool covers `title`, and the model sleeps 50ms per pair — so a first title
    // scan pins the scheduler while short-deadline requests go stale in the queue
    // behind it.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let runtime = runtime_over(
        SlowModel(Duration::from_millis(50)),
        pool,
        RuntimeConfig::default().with_batch_max(1).with_window_us(0),
    );
    let plug = runtime.submit(0, Query::scan("title")).expect("admitted");
    std::thread::sleep(Duration::from_millis(10));
    // Admitted behind the plug with a 1ms deadline: stale long before the plug's ~100ms
    // batch finishes.
    let stale = runtime
        .submit_with_deadline(1, Query::scan("title"), Some(Duration::from_millis(1)))
        .expect("admitted");
    // And one without a deadline, which must still execute normally afterwards.
    let patient = runtime
        .submit(2, Query::scan("cast_info"))
        .expect("admitted");

    assert!(plug.wait().is_ok());
    assert_eq!(
        stale.wait(),
        Err(crn_serve::TicketError::Expired),
        "the stale request was shed unexecuted"
    );
    let outcome = patient.wait().expect("served");
    assert!(outcome.is_computed());
    let stats = runtime.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 2);
    assert!(stats.fully_resolved(), "{stats:?}");
}

#[test]
fn submit_retrying_for_gives_up_after_its_patience() {
    // Queue depth 1 and a slow plug batch: admission stays full well past the 20ms
    // patience, so the bounded backoff must give up with DeadlineExceeded instead of
    // parking forever.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let runtime = runtime_over(
        SlowModel(Duration::from_millis(200)),
        pool,
        RuntimeConfig::default()
            .with_queue_depth(1)
            .with_batch_max(1)
            .with_window_us(0),
    );
    let plug = runtime.submit(0, Query::scan("title")).expect("admitted");
    std::thread::sleep(Duration::from_millis(10));
    // The scheduler popped the plug; fill the single queue slot so admission is full.
    let filler = runtime.submit(1, Query::scan("title")).expect("admitted");
    let started = std::time::Instant::now();
    match runtime.submit_retrying_for(2, &Query::scan("title"), Some(Duration::from_millis(20))) {
        Err(SubmitError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let gave_up_after = started.elapsed();
    assert!(
        gave_up_after < Duration::from_millis(150),
        "patience bounds the retry loop: {gave_up_after:?}"
    );
    assert!(plug.wait().is_ok());
    assert!(filler.wait().is_ok());
    runtime.shutdown();
}

#[test]
fn retrying_submission_deadline_anchors_at_the_first_attempt() {
    // Regression: `submit_retrying_for` used to recompute the request deadline on every
    // retry, so each shed attempt slid the expiry window forward and a request admitted
    // after a long backoff could execute arbitrarily later than its configured bound.
    // The deadline must anchor at the FIRST attempt: here admission stays full (queue
    // depth 1 behind a ~300ms plug batch) until long after the 40ms default deadline,
    // so once the retrying submission finally admits, it is already stale and must
    // resolve Expired — never execute.
    let pool = ShardedPool::new(2);
    pool.insert(Query::scan("title"), 10);
    let runtime = runtime_over(
        SlowModel(Duration::from_millis(300)),
        pool,
        RuntimeConfig::default()
            .with_queue_depth(1)
            .with_batch_max(1)
            .with_window_us(0)
            .with_deadline_us(40_000),
    );
    let plug = runtime.submit(0, Query::scan("title")).expect("admitted");
    std::thread::sleep(Duration::from_millis(10));
    // The scheduler popped the plug; this filler occupies the single queue slot for the
    // whole plug batch (~300ms), keeping the retry loop shedding well past 40ms.
    let filler = runtime
        .submit(1, Query::scan("cast_info"))
        .expect("admitted");
    let target = runtime
        .submit_retrying_for(2, &Query::scan("cast_info"), Some(Duration::from_secs(5)))
        .expect("admitted once the plug batch retired");
    assert_eq!(
        target.wait(),
        Err(crn_serve::TicketError::Expired),
        "a deadline anchored at the first attempt has long passed by admission time"
    );
    assert!(plug.wait().is_ok());
    // The filler went stale in the queue too (same 40ms bound) — the point is only that
    // the retrying submission did not get a fresh deadline per retry.
    assert_eq!(filler.wait(), Err(crn_serve::TicketError::Expired));
    let stats = runtime.shutdown();
    assert_eq!(stats.expired, 2);
    assert!(stats.fully_resolved(), "{stats:?}");
}

#[test]
fn zero_window_serves_a_closed_loop_caller_one_by_one() {
    let runtime = instant_runtime(RuntimeConfig::default().with_window_us(0));
    let query = Query::scan("title");
    let mut estimates = Vec::new();
    for _ in 0..10 {
        // Closed loop: at most one request is ever pending, so every batch is size 1.
        let outcome = runtime
            .submit(7, query.clone())
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(outcome.batch_size, 1);
        estimates.push(outcome.estimate);
    }
    assert!(estimates.windows(2).all(|w| w[0] == w[1]));
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.batches, 10);
    assert_eq!(stats.max_batch, 1);
    assert_eq!(
        stats.size_closes + stats.window_closes + stats.drain_closes,
        stats.batches
    );
}

#[test]
fn size_threshold_closes_batches_before_the_window() {
    let runtime = instant_runtime(
        RuntimeConfig::default()
            .with_batch_max(2)
            .with_window_us(10_000_000),
    );
    let query = Query::scan("title");
    // Two submissions hit the size threshold immediately — the 10s window never matters.
    let t1 = runtime.submit(0, query.clone()).expect("admitted");
    let t2 = runtime.submit(1, query.clone()).expect("admitted");
    let (o1, o2) = (t1.wait().expect("served"), t2.wait().expect("served"));
    assert_eq!(o1.batch_size, 2);
    assert_eq!(o1.batch_seq, o2.batch_seq);
    let stats = runtime.shutdown();
    assert!(stats.size_closes >= 1, "{stats:?}");
}

#[test]
fn dropping_the_runtime_drains_gracefully() {
    let runtime = instant_runtime(
        RuntimeConfig::default()
            .with_batch_max(100)
            .with_window_us(10_000_000),
    );
    let ticket = runtime.submit(0, Query::scan("title")).expect("admitted");
    runtime
        .record_feedback(Query::scan("cast_info"), 123)
        .expect("maintenance admits");
    let pool_len_handle = Arc::clone(runtime.service());
    drop(runtime);
    // The queued request resolved and the feedback record applied before the threads
    // were joined.
    assert!(ticket.poll().is_some());
    assert_eq!(pool_len_handle.pool().len(), 1);
}

#[test]
fn maintenance_lane_sheds_at_depth() {
    let config = RuntimeConfig {
        maintenance_depth: 2,
        ..RuntimeConfig::default()
    };
    // Stall the maintenance thread? Not needed: fill faster than it can drain is racy,
    // so instead verify the bound with the runtime quiesced via flush() in between.
    let runtime = instant_runtime(config);
    for i in 0..20u64 {
        // Either admitted or shed with QueueFull — never a panic, never blocking.
        match runtime.record_feedback(Query::scan("title"), i) {
            Ok(()) | Err(SubmitError::Overloaded { .. }) => {}
            other => panic!("unexpected feedback result {other:?}"),
        }
    }
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(
        stats.maintenance_applied + stats.maintenance_rejected,
        20,
        "every record either applied or was shed: {stats:?}"
    );
    // Upserting the same query repeatedly keeps exactly one entry.
    assert_eq!(runtime.service().pool().len(), 1);
    runtime.shutdown();
}

/// The feedback channel: `record_observed` triples reach the configured observer in
/// application order and only after their upsert applied; plain `record_feedback`
/// records (no estimate) never reach it; a panicking observer is contained exactly like
/// a panicking upsert.
#[test]
fn feedback_observer_receives_applied_triples_in_order() {
    struct Collector(std::sync::Mutex<Vec<(String, u64, f64)>>);
    impl crn_serve::FeedbackObserver for Collector {
        fn observe(&self, query: &Query, true_cardinality: u64, estimate: f64) {
            self.0
                .lock()
                .unwrap()
                .push((format!("{query}"), true_cardinality, estimate));
        }
    }

    let runtime = instant_runtime(RuntimeConfig::default());
    let collector = Arc::new(Collector(std::sync::Mutex::new(Vec::new())));
    runtime.set_feedback_observer(Arc::clone(&collector) as Arc<dyn crn_serve::FeedbackObserver>);

    let scans = ["title", "cast_info", "movie_companies"];
    for (index, table) in scans.iter().enumerate() {
        runtime
            .record_observed(Query::scan(table), 100 + index as u64, 50.0 + index as f64)
            .expect("maintenance admits");
    }
    // A record without an estimate refreshes the pool but is not part of the channel.
    runtime
        .record_feedback(Query::scan("movie_info"), 7)
        .expect("maintenance admits");
    runtime.flush();

    let stats = runtime.stats();
    assert_eq!(stats.maintenance_applied, 4, "all four records applied");
    assert_eq!(runtime.service().pool().len(), 4);
    let observed = collector.0.lock().unwrap().clone();
    assert_eq!(observed.len(), 3, "only observed records reach the channel");
    for (index, (query, cardinality, estimate)) in observed.iter().enumerate() {
        assert!(query.contains(scans[index]), "application order preserved");
        assert_eq!(*cardinality, 100 + index as u64);
        assert_eq!(*estimate, 50.0 + index as f64);
    }

    // A panicking observer is contained separately from the upsert: the upsert itself
    // applied (and stays counted as applied), the panic lands in observer_failed, and
    // the lane survives.
    struct PanickyObserver;
    impl crn_serve::FeedbackObserver for PanickyObserver {
        fn observe(&self, _query: &Query, _true_cardinality: u64, _estimate: f64) {
            panic!("injected observer panic");
        }
    }
    runtime.set_feedback_observer(Arc::new(PanickyObserver));
    runtime
        .record_observed(Query::scan("movie_keyword"), 9, 3.0)
        .expect("maintenance admits");
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(stats.observer_failed, 1, "observer panic contained");
    assert_eq!(stats.maintenance_failed, 0, "the upsert itself succeeded");
    assert_eq!(
        stats.maintenance_applied, 5,
        "the applied counter tracks the pool"
    );
    assert_eq!(runtime.service().pool().len(), 5);
    // The lane keeps draining afterwards.
    runtime.set_feedback_observer(collector);
    runtime
        .record_observed(Query::scan("movie_info_idx"), 11, 4.0)
        .expect("maintenance admits");
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(
        stats.maintenance_applied, 6,
        "4 initial + panicky-observer + 1 more"
    );
    runtime.shutdown();
}

#[test]
fn a_slow_checkpoint_write_does_not_stall_the_maintenance_lane() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Condvar, Mutex};

    // A writer that parks until the test releases it: while it is parked, the
    // maintenance lane must keep applying upserts — the write happens on the checkpoint
    // helper thread, off the lane's critical path.
    struct GatedWriter {
        gate: Mutex<bool>,
        open: Condvar,
        writes: AtomicU64,
    }
    impl crn_serve::CheckpointWriter for GatedWriter {
        fn write_checkpoint(&self) -> Result<(), String> {
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.open.wait(open).unwrap();
            }
            self.writes.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    let runtime = instant_runtime(RuntimeConfig::default().with_checkpoint_every(1));
    let writer = Arc::new(GatedWriter {
        gate: Mutex::new(false),
        open: Condvar::new(),
        writes: AtomicU64::new(0),
    });
    runtime.set_checkpoint_writer(Arc::clone(&writer) as Arc<dyn crn_serve::CheckpointWriter>);

    // First record: its cadence hands a write to the helper, which blocks in the gate.
    runtime
        .record_feedback(Query::scan("title"), 5)
        .expect("maintenance admits");
    let parked_at = std::time::Instant::now();
    while writer.writes.load(Ordering::Relaxed) == 0
        && runtime.stats().maintenance_applied < 1
        && parked_at.elapsed() < Duration::from_secs(5)
    {
        std::thread::yield_now();
    }

    // The writer is still parked (gate closed) — and the lane keeps applying.
    let tables = [
        "cast_info",
        "movie_companies",
        "movie_keyword",
        "movie_info",
    ];
    for table in tables {
        runtime
            .record_feedback(Query::scan(table), 7)
            .expect("maintenance admits");
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while runtime.stats().maintenance_applied < 5 {
        assert!(
            std::time::Instant::now() < deadline,
            "upserts stalled behind a slow checkpoint write: \
             applied = {} after 5s with the writer parked",
            runtime.stats().maintenance_applied
        );
        std::thread::yield_now();
    }
    assert_eq!(
        writer.writes.load(Ordering::Relaxed),
        0,
        "the write is still parked while the lane advanced"
    );

    // Release the gate: the parked write (plus the coalesced later cadences) completes
    // and `flush` observes a quiescent checkpoint helper.
    {
        let mut open = writer.gate.lock().unwrap();
        *open = true;
    }
    writer.open.notify_all();
    runtime.flush();
    let stats = runtime.stats();
    assert!(
        stats.checkpoints_written >= 1,
        "the released write committed (then coalesced successors may add more)"
    );
    assert_eq!(stats.maintenance_applied, 5);
    runtime.shutdown();
}

#[test]
fn periodic_compaction_runs_on_the_maintenance_lane() {
    // Five inserts of structurally-identical scans (same shape, different literals would
    // share a structure key; identical queries upsert in place, so use distinct tables
    // to grow then duplicates to compact).  The cadence is in *applied records*.
    let pool = ShardedPool::new(2);
    let runtime = runtime_over(
        ConstModel,
        pool,
        RuntimeConfig::default().with_compact_every(3),
    );
    for table in ["title", "cast_info", "movie_keyword", "movie_info", "name"] {
        runtime
            .record_feedback(Query::scan(table), 11)
            .expect("maintenance admits");
    }
    runtime.flush();
    let stats = runtime.stats();
    assert_eq!(stats.maintenance_applied, 5);
    assert_eq!(
        stats.compactions, 1,
        "one cadence hit at the 3rd applied record (the 6th has not arrived)"
    );
    // Disabled cadence never compacts.
    let quiet = instant_runtime(RuntimeConfig::default());
    quiet
        .record_feedback(Query::scan("title"), 3)
        .expect("maintenance admits");
    quiet.flush();
    assert_eq!(quiet.stats().compactions, 0);
    quiet.shutdown();
    runtime.shutdown();
}
