//! Training-cost benchmarks (Figures 3 and 4) and the ablation benches called out in
//! DESIGN.md.
//!
//! * `fig3_hidden_size` — cost of one training epoch as a function of the hidden layer size
//!   (the paper's Figure 3 trades accuracy against exactly this cost).
//! * `fig4_training_epoch` — cost of one epoch at the default size (Figure 4's x-axis unit).
//! * `parallel_epoch_{crn,mscn}` — one epoch at H = 64 / batch = 128 swept over the
//!   data-parallel engine's worker-thread count (plus the deterministic mode), against the
//!   PR-1 single-thread batched baseline.
//! * `ablation_*` — forward-pass cost of the design variants (pooling, Expand, featurization)
//!   and of the final functions of the queries-pool technique.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use crn_bench::shared_context;
use crn_core::{
    Cnt2Crd, Cnt2CrdConfig, CrnFeaturizer, CrnModel, CrnOptions, ExpandMode, FinalFunction, Pooling,
};
use crn_estimators::{CardinalityEstimator, ContainmentEstimator, MscnFeaturizer, MscnModel};
use crn_eval::experiments::training::hidden_size_sweep;
use crn_nn::{ThreadPoolConfig, TrainConfig};

/// Figure 3 — training cost vs hidden layer size (one short fit per size).
fn bench_fig3_hidden_size(c: &mut Criterion) {
    let ctx = shared_context();
    let mut group = c.benchmark_group("fig3_hidden_size_training_cost");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    // A small slice of the training corpus keeps one iteration short while preserving the
    // relative cost across hidden sizes.
    let slice = &ctx.containment_training[..ctx.containment_training.len().min(60)];
    for hidden in hidden_size_sweep(ctx.config.train.hidden_size) {
        group.bench_with_input(
            BenchmarkId::from_parameter(hidden),
            &hidden,
            |b, &hidden| {
                b.iter(|| {
                    let config = TrainConfig {
                        hidden_size: hidden,
                        epochs: 1,
                        patience: None,
                        ..ctx.config.train.clone()
                    };
                    let mut model = CrnModel::new(&ctx.db, config);
                    black_box(model.fit(slice))
                })
            },
        );
    }
    group.finish();
}

/// Figure 4 — cost of a single training epoch at the default configuration.
fn bench_fig4_training_epoch(c: &mut Criterion) {
    let ctx = shared_context();
    let slice = &ctx.containment_training[..ctx.containment_training.len().min(80)];
    let mut group = c.benchmark_group("fig4_training_epoch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("crn_one_epoch", |b| {
        b.iter(|| {
            let config = TrainConfig {
                epochs: 1,
                patience: None,
                ..ctx.config.train.clone()
            };
            let mut model = CrnModel::new(&ctx.db, config);
            black_box(model.fit(slice))
        })
    });
    group.finish();
}

/// Data-parallel epoch engine — one CRN / MSCN training epoch at the paper's H = 64 /
/// batch = 128 shape, swept over the worker-thread count of `crn_nn::parallel`.
///
/// `threads_1` is exactly the PR-1 single-thread batched path (one shard per mini-batch);
/// the acceptance bar is ≥ 2.5× at `threads_4` over it.  `threads_4_det` measures the
/// deterministic mode (canonical 8-shard splitting + sequential reduction) at the same
/// worker count — the price of bit-identical results across thread counts.
fn bench_parallel_epoch_threads(c: &mut Criterion) {
    let ctx = shared_context();
    let sweep: [(&str, ThreadPoolConfig); 5] = [
        ("threads_1", ThreadPoolConfig::single_threaded()),
        ("threads_2", ThreadPoolConfig::with_threads(2)),
        ("threads_4", ThreadPoolConfig::with_threads(4)),
        ("threads_8", ThreadPoolConfig::with_threads(8)),
        ("threads_4_det", ThreadPoolConfig::deterministic(4)),
    ];

    let mut group = c.benchmark_group("parallel_epoch_crn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    for (label, parallel) in sweep {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = TrainConfig {
                    hidden_size: 64,
                    batch_size: 128,
                    epochs: 1,
                    patience: None,
                    parallel,
                    ..ctx.config.train.clone()
                };
                let mut model = CrnModel::new(&ctx.db, config);
                black_box(model.fit(&ctx.containment_training))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel_epoch_mscn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    for (label, parallel) in sweep {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = TrainConfig {
                    hidden_size: 64,
                    batch_size: 128,
                    epochs: 1,
                    patience: None,
                    parallel,
                    ..ctx.config.train.clone()
                };
                let mut model = MscnModel::new(&ctx.db, config);
                black_box(model.fit(&ctx.cardinality_training))
            })
        });
    }
    group.finish();
}

/// Ablation — CRN prediction cost under the architecture variants (pooling / Expand).
fn bench_ablation_architecture(c: &mut Criterion) {
    let ctx = shared_context();
    let sample = &ctx.containment_training[0];
    let variants = [
        (
            "mean_pool_full_expand",
            CrnOptions {
                pooling: Pooling::Mean,
                expand: ExpandMode::Full,
            },
        ),
        (
            "sum_pool_full_expand",
            CrnOptions {
                pooling: Pooling::Sum,
                expand: ExpandMode::Full,
            },
        ),
        (
            "mean_pool_concat",
            CrnOptions {
                pooling: Pooling::Mean,
                expand: ExpandMode::Concat,
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_crn_architecture_forward");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (name, options) in variants {
        let model = CrnModel::with_options(&ctx.db, ctx.config.train.clone(), options);
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.estimate_containment(&sample.q1, &sample.q2)))
        });
    }
    group.finish();
}

/// Ablation — shared CRN featurization vs MSCN's per-set featurization.
fn bench_ablation_featurization(c: &mut Criterion) {
    let ctx = shared_context();
    let sample = &ctx.containment_training[0];
    let crn_featurizer = CrnFeaturizer::new(&ctx.db);
    let mscn_featurizer = MscnFeaturizer::new(&ctx.db);
    let mut group = c.benchmark_group("ablation_featurization");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("crn_shared_format_pair", |b| {
        b.iter(|| black_box(crn_featurizer.featurize_pair(&sample.q1, &sample.q2)))
    });
    group.bench_function("mscn_separate_sets_single", |b| {
        b.iter(|| black_box(mscn_featurizer.featurize(&sample.q1)))
    });
    group.finish();
}

/// Ablation — the final function of the queries-pool technique (§5.3.1).
fn bench_ablation_final_function(c: &mut Criterion) {
    let ctx = shared_context();
    let query = &ctx.containment_training[0].q1;
    let mut group = c.benchmark_group("ablation_final_function");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (name, final_function) in [
        ("median", FinalFunction::Median),
        ("mean", FinalFunction::Mean),
        ("trimmed_mean", FinalFunction::TrimmedMean(0.25)),
    ] {
        let estimator = Cnt2Crd::new(&ctx.crn, ctx.pool.clone()).with_config(Cnt2CrdConfig {
            final_function,
            ..Cnt2CrdConfig::default()
        });
        group.bench_function(name, |b| b.iter(|| black_box(estimator.estimate(query))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3_hidden_size,
    bench_fig4_training_epoch,
    bench_parallel_epoch_threads,
    bench_ablation_architecture,
    bench_ablation_featurization,
    bench_ablation_final_function
);
criterion_main!(benches);
