//! `serving_async` — the async request-queue runtime under closed-loop load.
//!
//! Sweeps the cross-call batching configuration over window sizes and caller counts,
//! always pushing the same 32-query workload through a persistent [`ServeRuntime`] with
//! `callers` closed-loop threads (submit → wait → next).  The interesting comparison is
//! **one-call-per-query submission** (`batch_max = 1`, window 0 — every request becomes
//! its own batch, the overhead profile of a front-end that never batches) against the
//! **fused** configurations (`batch_max = callers` with a straggler window), where
//! concurrent callers' requests merge into one multi-query head batch per round:
//!
//! * at 1 caller the two are equivalent (nothing to fuse) — that pair measures the pure
//!   runtime overhead (queue, condvars, scheduler) over direct `serve` calls;
//! * at ≥ 4 concurrent callers the fused configurations amortize the per-call serving
//!   overhead (snapshot, grouping, GEMM setup) across the round's callers, so per-query
//!   wall clock must drop vs `one_per_query_callers4` — the acceptance criterion this
//!   bench exists to witness.  Window size then only bounds the straggler wait: 200µs
//!   vs 2000µs should measure alike in steady closed-loop state.
//!
//! The `obs_*` pair repeats the busiest configuration with the `crn-obs` layer off
//! (the default — disabled obs takes the exact pre-obs code path) and fully on
//! (spans + histograms + journal): the enabled/disabled delta is the observability
//! overhead, which must stay within a few percent for the layer to be left on in
//! production serving.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use crn_bench::shared_context;
use crn_core::{EstimatorService, ShardedPool};
use crn_nn::parallel::WorkerPool;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use crn_query::Query;
use crn_serve::{RuntimeConfig, ServeRuntime};

/// The workload: the same 32 queries every configuration serves.
fn workload(ctx: &crn_eval::ExperimentContext, count: usize) -> Vec<Query> {
    let mut generator = QueryGenerator::new(&ctx.db, GeneratorConfig::paper(ctx.config.seed ^ 91));
    let mut queries = generator.generate_queries(count);
    queries.truncate(count);
    queries
}

/// One closed-loop pass: `callers` threads interleave the workload round-robin, each
/// waiting for every outcome before its next submission (retrying when admission sheds).
fn run_closed_loop(
    runtime: &ServeRuntime<crn_core::EstimatorService<crn_core::CrnModel>>,
    queries: &[Query],
    callers: usize,
) {
    std::thread::scope(|scope| {
        for caller in 0..callers {
            scope.spawn(move || {
                for (index, query) in queries.iter().enumerate() {
                    if index % callers != caller {
                        continue;
                    }
                    let ticket = runtime
                        .submit_retrying(caller as u64, query)
                        .expect("the bench owns the runtime");
                    black_box(ticket.wait().expect("served"));
                }
            });
        }
    });
}

/// The sweep: one-call-per-query baselines vs fused windows, at 1/2/4 callers.
fn bench_async_sweep(c: &mut Criterion) {
    let ctx = shared_context();
    let queries = workload(ctx, 32);
    let mut group = c.benchmark_group("serving_async");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (label, callers, window_us, batch_max, obs_on) in [
        // One batch per request: the no-batching overhead profile.
        ("one_per_query_callers1", 1usize, 0u64, 1usize, false),
        ("one_per_query_callers4", 4, 0, 1, false),
        // Cross-call fusion: a round of concurrent callers closes one batch by size,
        // the window only bounds stragglers.
        ("fused_callers2_window200", 2, 200, 2, false),
        ("fused_callers4_window200", 4, 200, 4, false),
        ("fused_callers4_window2000", 4, 2000, 4, false),
        // The observability overhead pair: the busiest fused configuration with obs
        // explicitly disabled (bit-identical to the row above — the parity witness)
        // and fully enabled (the ≤ a-few-percent overhead witness).
        ("obs_off_callers4_window200", 4, 200, 4, false),
        ("obs_on_callers4_window200", 4, 200, 4, true),
    ] {
        let service = Arc::new(EstimatorService::new(
            ctx.crn.clone(),
            ShardedPool::from_pool(&ctx.pool, 2),
            WorkerPool::shared(2),
        ));
        let mut config = RuntimeConfig::default()
            .with_window_us(window_us)
            .with_batch_max(batch_max)
            .with_queue_depth(64);
        if obs_on {
            config = config.with_obs(crn_obs::Obs::new(crn_obs::ObsConfig::enabled()));
        }
        let runtime = ServeRuntime::new(service, config);
        // Warm the per-shard anchor caches so steady-state serving is measured.
        run_closed_loop(&runtime, &queries, callers);
        group.bench_function(label, |b| {
            b.iter(|| run_closed_loop(&runtime, &queries, callers))
        });
        let stats = runtime.shutdown();
        if batch_max > 1 && callers >= 2 {
            assert!(
                stats.max_batch >= 2,
                "{label}: concurrent callers must have fused at least once: {stats:?}"
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_async_sweep);
criterion_main!(benches);
