//! One benchmark per evaluation table/figure of the paper (Tables 2–15, Figure 13).
//!
//! Each benchmark measures the performance-critical loop behind the corresponding paper
//! artifact: workload generation for the distribution tables, model evaluation throughput for
//! the q-error tables, per-query prediction latency for the timing tables.  The matching
//! accuracy numbers are produced by `cargo run -p crn-eval --bin repro -- <id>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use crn_bench::shared_context;
use crn_core::{Cnt2Crd, ImprovedEstimator};
use crn_estimators::{CardinalityEstimator, ContainmentEstimator, PostgresEstimator};
use crn_eval::experiments::common::{
    cardinality_ground_truth, containment_ground_truth, evaluate_cardinality_model,
    evaluate_containment_model,
};
use crn_eval::workloads::{cnt_test1, cnt_test2, crd_test1, crd_test2, scale, WorkloadSizes};

/// Table 2 & Table 5 — workload generation cost.
fn bench_workload_generation(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let mut group = c.benchmark_group("table2_table5_workload_generation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("cnt_test1", |b| {
        b.iter(|| black_box(cnt_test1(&ctx.db, &sizes, 11)))
    });
    group.bench_function("cnt_test2", |b| {
        b.iter(|| black_box(cnt_test2(&ctx.db, &sizes, 12)))
    });
    group.bench_function("crd_test2", |b| {
        b.iter(|| black_box(crd_test2(&ctx.db, &sizes, 22)))
    });
    group.bench_function("scale", |b| {
        b.iter(|| black_box(scale(&ctx.db, &sizes, 23)))
    });
    group.finish();
}

/// Table 3 / Figure 5 and Table 4 / Figure 6 — containment-rate estimation throughput.
fn bench_containment_tables(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let mut group = c.benchmark_group("table3_table4_containment_estimation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (id, workload) in [
        ("table3_cnt_test1", cnt_test1(&ctx.db, &sizes, 11)),
        ("table4_cnt_test2", cnt_test2(&ctx.db, &sizes, 12)),
    ] {
        let truth = containment_ground_truth(&ctx.db, &workload);
        let crd2cnt_pg = crn_core::Crd2Cnt::new(&ctx.postgres);
        group.bench_with_input(BenchmarkId::new("CRN", id), &workload, |b, w| {
            b.iter(|| black_box(evaluate_containment_model(&ctx.crn, w, &truth)))
        });
        group.bench_with_input(
            BenchmarkId::new("Crd2Cnt_PostgreSQL", id),
            &workload,
            |b, w| b.iter(|| black_box(evaluate_containment_model(&crd2cnt_pg, w, &truth))),
        );
    }
    group.finish();
}

/// Tables 6–9 / Figures 9–11 — cardinality estimation throughput of the headline models.
fn bench_cardinality_tables(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let mut group = c.benchmark_group("table6_to_table9_cardinality_estimation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (id, workload) in [
        ("table6_crd_test1", crd_test1(&ctx.db, &sizes, 21)),
        ("table7_crd_test2", crd_test2(&ctx.db, &sizes, 22)),
    ] {
        let truth = cardinality_ground_truth(&ctx.db, &workload);
        let cnt2crd = Cnt2Crd::new(&ctx.crn, ctx.pool.clone());
        group.bench_with_input(BenchmarkId::new("PostgreSQL", id), &workload, |b, w| {
            b.iter(|| black_box(evaluate_cardinality_model(&ctx.postgres, w, &truth)))
        });
        group.bench_with_input(BenchmarkId::new("MSCN", id), &workload, |b, w| {
            b.iter(|| black_box(evaluate_cardinality_model(&ctx.mscn, w, &truth)))
        });
        group.bench_with_input(BenchmarkId::new("Cnt2Crd_CRN", id), &workload, |b, w| {
            b.iter(|| black_box(evaluate_cardinality_model(&cnt2crd, w, &truth)))
        });
    }
    group.finish();
}

/// Table 10 / Figures 12–13 — scale workload evaluation and the all-models comparison.
fn bench_scale_and_all_models(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let workload = scale(&ctx.db, &sizes, 23);
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let cnt2crd = Cnt2Crd::new(&ctx.crn, ctx.pool.clone());
    let improved_pg = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let mut group = c.benchmark_group("table10_fig13_scale_and_all_models");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("table10_scale_Cnt2Crd_CRN", |b| {
        b.iter(|| black_box(evaluate_cardinality_model(&cnt2crd, &workload, &truth)))
    });
    group.bench_function("fig13_improved_postgres", |b| {
        b.iter(|| black_box(evaluate_cardinality_model(&improved_pg, &workload, &truth)))
    });
    group.finish();
}

/// Tables 11–13 — the improvement technique applied to existing estimators.
fn bench_improved_models(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let workload = crd_test2(&ctx.db, &sizes, 22);
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let improved_pg = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let improved_mscn = ImprovedEstimator::new(&ctx.mscn, ctx.pool.clone());
    let mut group = c.benchmark_group("table11_to_table13_improved_models");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("table11_improved_postgres", |b| {
        b.iter(|| black_box(evaluate_cardinality_model(&improved_pg, &workload, &truth)))
    });
    group.bench_function("table12_improved_mscn", |b| {
        b.iter(|| {
            black_box(evaluate_cardinality_model(
                &improved_mscn,
                &workload,
                &truth,
            ))
        })
    });
    group.bench_function("table13_cnt2crd_crn", |b| {
        let cnt2crd = Cnt2Crd::new(&ctx.crn, ctx.pool.clone());
        b.iter(|| black_box(evaluate_cardinality_model(&cnt2crd, &workload, &truth)))
    });
    group.finish();
}

/// Table 14 — prediction cost as a function of the queries-pool size.
fn bench_pool_size_sweep(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let workload = crd_test2(&ctx.db, &sizes, 22);
    let mut group = c.benchmark_group("table14_pool_size_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    let pool_sizes = crn_eval::experiments::timing::pool_size_sweep(ctx.pool.len());
    for size in pool_sizes {
        let estimator = Cnt2Crd::new(&ctx.crn, ctx.pool_of_size(size));
        group.bench_with_input(BenchmarkId::from_parameter(size), &estimator, |b, est| {
            b.iter(|| {
                for query in &workload.queries {
                    black_box(est.estimate(query));
                }
            })
        });
    }
    group.finish();
}

/// Table 15 — average prediction time of a single query per model.
fn bench_single_prediction_time(c: &mut Criterion) {
    let ctx = shared_context();
    let sizes = WorkloadSizes::tiny();
    let workload = crd_test2(&ctx.db, &sizes, 22);
    let query = workload
        .queries
        .iter()
        .find(|q| q.num_joins() >= 2)
        .unwrap_or(&workload.queries[0])
        .clone();
    let cnt2crd = Cnt2Crd::new(&ctx.crn, ctx.pool.clone());
    let improved_pg = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let improved_mscn = ImprovedEstimator::new(&ctx.mscn, ctx.pool.clone());
    let pair = (&workload.queries[0], &query);

    let mut group = c.benchmark_group("table15_single_query_prediction");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("PostgreSQL", |b| {
        b.iter(|| black_box(ctx.postgres.estimate(&query)))
    });
    group.bench_function("MSCN", |b| b.iter(|| black_box(ctx.mscn.estimate(&query))));
    group.bench_function("Cnt2Crd_CRN", |b| {
        b.iter(|| black_box(cnt2crd.estimate(&query)))
    });
    group.bench_function("Improved_PostgreSQL", |b| {
        b.iter(|| black_box(improved_pg.estimate(&query)))
    });
    group.bench_function("Improved_MSCN", |b| {
        b.iter(|| black_box(improved_mscn.estimate(&query)))
    });
    group.bench_function("CRN_single_containment", |b| {
        b.iter(|| black_box(ctx.crn.estimate_containment(pair.0, pair.1)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_workload_generation,
    bench_containment_tables,
    bench_cardinality_tables,
    bench_scale_and_all_models,
    bench_improved_models,
    bench_pool_size_sweep,
    bench_single_prediction_time
);
criterion_main!(benches);
