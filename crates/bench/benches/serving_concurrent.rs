//! `serving_concurrent` — the concurrent estimator service under load.
//!
//! Measures the layered serving subsystem end to end: batches of concurrent queries through
//! [`EstimatorService`] at several `(shards × threads)` points, against the per-query
//! sequential `Cnt2Crd` baseline over the same pool.
//!
//! Reading the sweep: on a multi-core host the per-shard work items of one serve call (and
//! the queries of concurrent callers) distribute across the worker threads, so
//! `shards4_threads4` should approach the per-shard fraction of `shards1_threads1`.  On a
//! single-core container only the *overhead* of sharding/merging is visible — the regression
//! gate for that environment is "sharded serving stays within a bounded overhead of
//! sequential", exactly like the PR-2 `parallel_epoch_*` benches.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use crn_bench::shared_context;
use crn_core::{Cnt2Crd, EstimatorService, ShardedPool};
use crn_estimators::CardinalityEstimator;
use crn_nn::parallel::WorkerPool;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use crn_query::Query;

/// The concurrent workload: one batch of queries as a front-end would hand them over.
fn workload(ctx: &crn_eval::ExperimentContext, count: usize) -> Vec<Query> {
    let mut generator = QueryGenerator::new(&ctx.db, GeneratorConfig::paper(ctx.config.seed ^ 77));
    let mut queries = generator.generate_queries(count);
    queries.truncate(count);
    queries
}

/// Sequential baseline: the single-query batched `Cnt2Crd` path, one call per query.
fn bench_sequential_baseline(c: &mut Criterion) {
    let ctx = shared_context();
    let queries = workload(ctx, 32);
    let estimator = Cnt2Crd::new(ctx.crn.clone(), ctx.pool.clone());
    // Warm the per-FROM-clause anchor caches so steady-state serving is measured.
    for query in &queries {
        black_box(estimator.estimate(query));
    }
    let mut group = c.benchmark_group("serving_concurrent");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sequential_batch32", |b| {
        b.iter(|| {
            for query in &queries {
                black_box(estimator.estimate(query));
            }
        })
    });
    group.finish();
}

/// The service sweep: batch-of-32 serving at `(shards × threads)` grid points.
fn bench_service_sweep(c: &mut Criterion) {
    let ctx = shared_context();
    let queries = workload(ctx, 32);
    let mut group = c.benchmark_group("serving_concurrent");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (shards, threads) in [(1usize, 1usize), (2, 2), (4, 4), (8, 4)] {
        let service = EstimatorService::new(
            ctx.crn.clone(),
            ShardedPool::from_pool(&ctx.pool, shards),
            WorkerPool::shared(threads),
        );
        // Warm the per-shard anchor caches.
        black_box(service.serve(&queries));
        group.bench_function(
            format!("service_batch32_shards{shards}_threads{threads}"),
            |b| b.iter(|| black_box(service.serve(&queries))),
        );
    }
    group.finish();
}

/// Concurrent submitters: four caller threads pushing batches through one shared service —
/// the serving-layer contention profile (snapshot reads, worker-pool job serialization,
/// prepared-anchor cache hits).
fn bench_concurrent_callers(c: &mut Criterion) {
    let ctx = shared_context();
    let queries = workload(ctx, 32);
    let service = EstimatorService::new(
        ctx.crn.clone(),
        ShardedPool::from_pool(&ctx.pool, 4),
        WorkerPool::shared(2),
    );
    black_box(service.serve(&queries));
    let mut group = c.benchmark_group("serving_concurrent");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("four_callers_batch32_shards4_threads2", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| black_box(service.serve(&queries)));
                }
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_baseline,
    bench_service_sweep,
    bench_concurrent_callers
);
criterion_main!(benches);
