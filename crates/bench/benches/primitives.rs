//! Benchmarks of the substrate primitives the experiments are built on: exact execution,
//! containment-rate labelling, statistics collection and the neural-network kernels.
//!
//! These are not paper artifacts; they exist so that regressions in the substrates (which
//! dominate the wall-clock time of the full reproduction) are visible in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use crn_bench::shared_context;
use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_estimators::{DatabaseStats, StatsConfig};
use crn_exec::{Executor, TableSamples};
use crn_nn::{Dense, Matrix};
use crn_query::generator::{GeneratorConfig, QueryGenerator};

/// Exact cardinality computation per join count (the ground-truth oracle cost).
fn bench_executor_cardinality(c: &mut Criterion) {
    let ctx = shared_context();
    let executor = Executor::new(&ctx.db);
    let mut generator = QueryGenerator::new(&ctx.db, GeneratorConfig::with_max_joins(7, 5));
    let mut group = c.benchmark_group("executor_cardinality_by_joins");
    group.sample_size(20).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(3));
    for joins in [0usize, 2, 5] {
        let queries = generator.generate_initial_with_joins(10, joins);
        group.bench_with_input(BenchmarkId::from_parameter(joins), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(executor.cardinality(q));
                }
            })
        });
    }
    group.finish();
}

/// Containment-rate ground truth for one pair.
fn bench_containment_rate(c: &mut Criterion) {
    let ctx = shared_context();
    let executor = Executor::new(&ctx.db);
    let sample = &ctx.containment_training[0];
    let mut group = c.benchmark_group("executor_containment_rate");
    group.sample_size(30).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(3));
    group.bench_function("single_pair", |b| {
        b.iter(|| black_box(executor.containment_rate(&sample.q1, &sample.q2)))
    });
    group.finish();
}

/// Synthetic database generation and ANALYZE-style profiling.
fn bench_database_generation_and_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("database_generation_and_stats");
    group.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(3));
    group.bench_function("generate_imdb_tiny", |b| {
        b.iter(|| black_box(generate_imdb(&ImdbConfig::tiny(1))))
    });
    let db = generate_imdb(&ImdbConfig::tiny(1));
    group.bench_function("collect_statistics", |b| {
        b.iter(|| black_box(DatabaseStats::collect(&db, &StatsConfig::default())))
    });
    group.bench_function("materialize_samples_64", |b| {
        b.iter(|| black_box(TableSamples::new(&db, 64, 3)))
    });
    group.finish();
}

/// Neural-network kernels: dense forward/backward and matrix multiplication.
fn bench_nn_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_kernels");
    group.sample_size(50).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    let layer = Dense::new(128, 128, 1);
    let input = Matrix::xavier_seeded(8, 128, 2);
    group.bench_function("dense_forward_8x128x128", |b| {
        b.iter(|| black_box(layer.forward(&input)))
    });
    let a = Matrix::xavier_seeded(64, 128, 3);
    let bm = Matrix::xavier_seeded(128, 64, 4);
    group.bench_function("matmul_64x128x64", |b| b.iter(|| black_box(a.matmul(&bm))));
    let mut trainable = Dense::new(128, 64, 5);
    let grad = Matrix::xavier_seeded(8, 64, 6);
    let x = Matrix::xavier_seeded(8, 128, 7);
    group.bench_function("dense_backward_8x128x64", |b| {
        b.iter(|| black_box(trainable.backward(&x, &grad)))
    });
    group.finish();
}

/// CRN prediction latency (featurization + forward pass), the unit of §3.5.2.
fn bench_crn_prediction(c: &mut Criterion) {
    let ctx = shared_context();
    let sample = &ctx.containment_training[0];
    let mut group = c.benchmark_group("crn_prediction");
    group.sample_size(50).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    group.bench_function("predict_single_pair", |b| {
        b.iter(|| black_box(ctx.crn.predict(&sample.q1, &sample.q2)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_cardinality,
    bench_containment_rate,
    bench_database_generation_and_stats,
    bench_nn_kernels,
    bench_crn_prediction
);
criterion_main!(benches);
