//! Benchmarks of the substrate primitives the experiments are built on: exact execution,
//! containment-rate labelling, statistics collection and the neural-network kernels.
//!
//! These are not paper artifacts; they exist so that regressions in the substrates (which
//! dominate the wall-clock time of the full reproduction) are visible in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use crn_bench::shared_context;
use crn_core::{Cnt2Crd, CrnModel, QueriesPool};
use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_estimators::{DatabaseStats, MscnModel, StatsConfig};
use crn_exec::{Executor, TableSamples};
use crn_nn::{Dense, Matrix, TrainConfig};
use crn_query::generator::{GeneratorConfig, QueryGenerator};

/// Exact cardinality computation per join count (the ground-truth oracle cost).
fn bench_executor_cardinality(c: &mut Criterion) {
    let ctx = shared_context();
    let executor = Executor::new(&ctx.db);
    let mut generator = QueryGenerator::new(&ctx.db, GeneratorConfig::with_max_joins(7, 5));
    let mut group = c.benchmark_group("executor_cardinality_by_joins");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for joins in [0usize, 2, 5] {
        let queries = generator.generate_initial_with_joins(10, joins);
        group.bench_with_input(BenchmarkId::from_parameter(joins), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(executor.cardinality(q));
                }
            })
        });
    }
    group.finish();
}

/// Containment-rate ground truth for one pair.
fn bench_containment_rate(c: &mut Criterion) {
    let ctx = shared_context();
    let executor = Executor::new(&ctx.db);
    let sample = &ctx.containment_training[0];
    let mut group = c.benchmark_group("executor_containment_rate");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("single_pair", |b| {
        b.iter(|| black_box(executor.containment_rate(&sample.q1, &sample.q2)))
    });
    group.finish();
}

/// Synthetic database generation and ANALYZE-style profiling.
fn bench_database_generation_and_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("database_generation_and_stats");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("generate_imdb_tiny", |b| {
        b.iter(|| black_box(generate_imdb(&ImdbConfig::tiny(1))))
    });
    let db = generate_imdb(&ImdbConfig::tiny(1));
    group.bench_function("collect_statistics", |b| {
        b.iter(|| black_box(DatabaseStats::collect(&db, &StatsConfig::default())))
    });
    group.bench_function("materialize_samples_64", |b| {
        b.iter(|| black_box(TableSamples::new(&db, 64, 3)))
    });
    group.finish();
}

/// Neural-network kernels: dense forward/backward and matrix multiplication.
fn bench_nn_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_kernels");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    let layer = Dense::new(128, 128, 1);
    let input = Matrix::xavier_seeded(8, 128, 2);
    group.bench_function("dense_forward_8x128x128", |b| {
        b.iter(|| black_box(layer.forward(&input)))
    });
    let a = Matrix::xavier_seeded(64, 128, 3);
    let bm = Matrix::xavier_seeded(128, 64, 4);
    group.bench_function("matmul_64x128x64", |b| b.iter(|| black_box(a.matmul(&bm))));
    let mut trainable = Dense::new(128, 64, 5);
    let grad = Matrix::xavier_seeded(8, 64, 6);
    let x = Matrix::xavier_seeded(8, 128, 7);
    group.bench_function("dense_backward_8x128x64", |b| {
        b.iter(|| black_box(trainable.backward(&x, &grad)))
    });

    // Dense vs sparsity-aware kernel on the three left-operand regimes the models produce —
    // the measurements behind the `matmul` / `matmul_sparse` routing (see `Matrix::matmul_sparse`).
    let dense_left = Matrix::xavier_seeded(128, 64, 8);
    let mut relu_left = Matrix::xavier_seeded(128, 64, 9);
    for v in relu_left.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    let mut one_hot_left = Matrix::zeros(128, 64);
    for row in 0..128 {
        for j in 0..3 {
            one_hot_left.set(row, (row * 7 + j * 11) % 64, 1.0);
        }
    }
    let right = Matrix::xavier_seeded(64, 128, 10);
    for (name, left) in [
        ("dense", &dense_left),
        ("post_relu", &relu_left),
        ("one_hot", &one_hot_left),
    ] {
        group.bench_function(format!("matmul_branchfree_{name}_128x64x128"), |b| {
            b.iter(|| black_box(left.matmul(&right)))
        });
        group.bench_function(format!("matmul_sparse_{name}_128x64x128"), |b| {
            b.iter(|| black_box(left.matmul_sparse(&right)))
        });
    }
    group.finish();
}

/// Batched vs per-sample training epochs for both models (the tentpole comparison): one
/// ragged-batch forward/backward per mini-batch against one forward/backward per sample,
/// at the paper's H = 64 / batch = 128 operating point.
///
/// Each iteration runs a four-epoch `fit` so the timing reflects steady-state epoch cost
/// (featurization is done once per training run and amortizes over its epochs, exactly as in
/// real training); divide the printed times by four for per-epoch numbers — the ratio *is*
/// the per-epoch ratio.
fn bench_training_epoch_batched_vs_reference(c: &mut Criterion) {
    let ctx = shared_context();
    let config = TrainConfig {
        hidden_size: 64,
        epochs: 4,
        batch_size: 128,
        patience: None,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("training_epochs_x4_h64_b128");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(10));
    group.bench_function("crn_batched", |b| {
        b.iter(|| {
            let mut model = CrnModel::new(&ctx.db, config.clone());
            black_box(model.fit(&ctx.containment_training))
        })
    });
    group.bench_function("crn_per_sample_reference", |b| {
        b.iter(|| {
            let mut model = CrnModel::new(&ctx.db, config.clone());
            black_box(model.fit_reference(&ctx.containment_training))
        })
    });
    group.bench_function("mscn_batched", |b| {
        b.iter(|| {
            let mut model = MscnModel::new(&ctx.db, config.clone());
            black_box(model.fit(&ctx.cardinality_training))
        })
    });
    group.bench_function("mscn_per_sample_reference", |b| {
        b.iter(|| {
            let mut model = MscnModel::new(&ctx.db, config.clone());
            black_box(model.fit_reference(&ctx.cardinality_training))
        })
    });
    group.finish();
}

/// Batched vs sequential Cnt2Crd serving against a 256-anchor pool: two batched forwards per
/// incoming query versus the Figure-8 loop's 2·N single-pair forwards.
fn bench_cnt2crd_serving(c: &mut Criterion) {
    let ctx = shared_context();
    // Build a pool whose 256 anchors all share the probe query's FROM clause, so every anchor
    // participates in the estimate (the worst — and intended — serving case).
    let mut generator = QueryGenerator::new(&ctx.db, GeneratorConfig::with_max_joins(97, 0));
    let candidates = generator.generate_initial_with_joins(4000, 0);
    let probe = candidates[0].clone();
    let mut pool = QueriesPool::new();
    for query in candidates {
        if pool.len() >= 256 {
            break;
        }
        if query.tables() == probe.tables() {
            // Serving cost does not depend on the stored cardinality; skip executing.
            pool.insert(query, 100);
        }
    }
    assert!(
        pool.len() >= 128,
        "need a well-filled single-FROM pool, got {}",
        pool.len()
    );
    let anchor_count = pool.len();
    let estimator = Cnt2Crd::new(ctx.crn.clone(), pool);

    let mut group = c.benchmark_group("cnt2crd_estimate");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    group.bench_function(BenchmarkId::new("batched", anchor_count), |b| {
        b.iter(|| black_box(estimator.per_entry_estimates(&probe)))
    });
    group.bench_function(BenchmarkId::new("sequential", anchor_count), |b| {
        b.iter(|| black_box(estimator.per_entry_estimates_sequential(&probe)))
    });
    group.finish();
}

/// CRN prediction latency (featurization + forward pass), the unit of §3.5.2.
fn bench_crn_prediction(c: &mut Criterion) {
    let ctx = shared_context();
    let sample = &ctx.containment_training[0];
    let mut group = c.benchmark_group("crn_prediction");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("predict_single_pair", |b| {
        b.iter(|| black_box(ctx.crn.predict(&sample.q1, &sample.q2)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_cardinality,
    bench_containment_rate,
    bench_database_generation_and_stats,
    bench_nn_kernels,
    bench_crn_prediction,
    bench_training_epoch_batched_vs_reference,
    bench_cnt2crd_serving
);
criterion_main!(benches);
