//! `crn-bench` — shared setup for the Criterion benchmarks.
//!
//! Every bench target needs the same expensive fixture: a built [`ExperimentContext`] (synthetic
//! database, labelled training data, trained CRN and MSCN models, queries pool).  Building it
//! inside each benchmark would dominate the measurements, so the fixture is constructed once
//! per process and shared.
//!
//! The benchmarks measure the *performance* aspects of every paper table/figure (prediction
//! latency, evaluation throughput, training epoch cost, pool-size scaling); the corresponding
//! *accuracy* numbers are produced by the `repro` binary of `crn-eval`, which shares the same
//! experiment runners.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use crn_eval::{ExperimentConfig, ExperimentContext};
use std::sync::OnceLock;

/// Returns the process-wide experiment context used by all benchmarks (tiny preset).
pub fn shared_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(bench_config()))
}

/// The configuration used by the benchmark fixture.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::tiny()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_context_is_built_once_and_reused() {
        let a = shared_context() as *const ExperimentContext;
        let b = shared_context() as *const ExperimentContext;
        assert_eq!(a, b);
        assert!(!shared_context().containment_training.is_empty());
    }
}
