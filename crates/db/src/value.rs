//! Scalar values stored in the database.
//!
//! The paper's query model only uses predicates of the form `(column, op, literal)` with
//! operators `<`, `=`, `>` over numeric domains (string literals are hashed to the integer
//! domain, as suggested in the paper's "Strings" extension, §9).  We therefore keep the value
//! model deliberately small: a 64-bit integer domain plus NULL.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (also used for dictionary-encoded strings).
    Int,
    /// A string column stored dictionary-encoded as an integer code.
    ///
    /// The encoding is exposed so that equality predicates on strings can be converted to
    /// integer equality predicates, mirroring the paper's proposal of hashing string literals
    /// into the integer domain.
    DictStr,
}

impl DataType {
    /// Returns `true` when values of this type can be compared with `<` / `>` meaningfully.
    ///
    /// Dictionary-encoded strings only support equality (the dictionary codes carry no
    /// lexicographic meaning).
    pub fn supports_range_predicates(self) -> bool {
        matches!(self, DataType::Int)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::DictStr => write!(f, "DICT_STR"),
        }
    }
}

/// A single scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.  Comparisons against NULL are always false (three-valued logic collapsed to
    /// the boolean result relevant to a WHERE clause).
    Null,
    /// An integer (or dictionary code).
    Int(i64),
}

impl Value {
    /// Returns the inner integer, if the value is not NULL.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(v),
        }
    }

    /// Returns `true` if the value is NULL.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Option<i64>> for Value {
    fn from(v: Option<i64>) -> Self {
        match v {
            Some(v) => Value::Int(v),
            None => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operator used in column predicates.
///
/// The paper's query generator draws predicate operators uniformly from `{<, =, >}` (§3.1.2);
/// `<=`, `>=` and `!=` are supported as well so that downstream users are not artificially
/// restricted, and so the `BETWEEN`/`IN` rewrites mentioned in §9 are expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompareOp {
    /// Strictly less than (`<`).
    Lt,
    /// Less than or equal (`<=`).
    Le,
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>`).
    Ne,
    /// Greater than or equal (`>=`).
    Ge,
    /// Strictly greater than (`>`).
    Gt,
}

impl CompareOp {
    /// All operators, in the canonical order used by the featurization one-hot encoding.
    pub const ALL: [CompareOp; 6] = [
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Ge,
        CompareOp::Gt,
    ];

    /// The three operators the paper's generator uses.
    pub const PAPER: [CompareOp; 3] = [CompareOp::Lt, CompareOp::Eq, CompareOp::Gt];

    /// Index of this operator inside [`CompareOp::ALL`]; used for one-hot encoding.
    pub fn index(self) -> usize {
        match self {
            CompareOp::Lt => 0,
            CompareOp::Le => 1,
            CompareOp::Eq => 2,
            CompareOp::Ne => 3,
            CompareOp::Ge => 4,
            CompareOp::Gt => 5,
        }
    }

    /// Evaluates `lhs op rhs` over non-NULL integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ne => lhs != rhs,
            CompareOp::Ge => lhs >= rhs,
            CompareOp::Gt => lhs > rhs,
        }
    }

    /// Evaluates the predicate on a possibly-NULL value. NULL never satisfies a predicate.
    pub fn eval_value(self, lhs: Value, rhs: i64) -> bool {
        match lhs {
            Value::Null => false,
            Value::Int(v) => self.eval(v, rhs),
        }
    }

    /// SQL rendering of the operator.
    pub fn as_sql(self) -> &'static str {
        match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Ge => ">=",
            CompareOp::Gt => ">",
        }
    }

    /// Parses an operator from its SQL text.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "<" => Some(CompareOp::Lt),
            "<=" => Some(CompareOp::Le),
            "=" | "==" => Some(CompareOp::Eq),
            "<>" | "!=" => Some(CompareOp::Ne),
            ">=" => Some(CompareOp::Ge),
            ">" => Some(CompareOp::Gt),
            _ => None,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn compare_op_eval_covers_all_operators() {
        assert!(CompareOp::Lt.eval(1, 2));
        assert!(!CompareOp::Lt.eval(2, 2));
        assert!(CompareOp::Le.eval(2, 2));
        assert!(CompareOp::Eq.eval(5, 5));
        assert!(CompareOp::Ne.eval(5, 6));
        assert!(CompareOp::Ge.eval(6, 6));
        assert!(CompareOp::Gt.eval(7, 6));
        assert!(!CompareOp::Gt.eval(6, 6));
    }

    #[test]
    fn null_never_satisfies_predicates() {
        for op in CompareOp::ALL {
            assert!(!op.eval_value(Value::Null, 0), "NULL must not satisfy {op}");
        }
    }

    #[test]
    fn operator_indices_are_unique_and_dense() {
        let mut seen = vec![false; CompareOp::ALL.len()];
        for op in CompareOp::ALL {
            assert!(!seen[op.index()]);
            seen[op.index()] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn sql_round_trip() {
        for op in CompareOp::ALL {
            assert_eq!(CompareOp::parse(op.as_sql()), Some(op));
        }
        assert_eq!(CompareOp::parse("!="), Some(CompareOp::Ne));
        assert_eq!(CompareOp::parse("=="), Some(CompareOp::Eq));
        assert_eq!(CompareOp::parse("like"), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(CompareOp::Ne.to_string(), "<>");
    }

    #[test]
    fn dict_str_has_no_range_predicates() {
        assert!(DataType::Int.supports_range_predicates());
        assert!(!DataType::DictStr.supports_range_predicates());
    }

    #[test]
    fn value_ordering_places_null_first() {
        let mut vals = vec![Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort();
        assert_eq!(vals, vec![Value::Null, Value::Int(-1), Value::Int(3)]);
    }
}
