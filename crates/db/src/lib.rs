//! `crn-db` — the database substrate of the containment-rate reproduction.
//!
//! This crate provides everything below the query layer:
//!
//! * [`value`] — scalar values, data types and predicate comparison operators;
//! * [`schema`] — tables, columns, foreign keys and the join graph, including the global
//!   table/column numbering that the paper's featurization (Table 1) relies on;
//! * [`column`] / [`table`] / [`database`] — an in-memory columnar storage engine;
//! * [`dist`] — skewed random distributions (Zipf, geometric, categorical);
//! * [`imdb`] — a synthetic IMDb-like database over the JOB-light schema, with the skew and
//!   join-crossing correlations that make cardinality estimation hard (paper §1, §3.1.1).
//!
//! # Example
//!
//! ```
//! use crn_db::imdb::{generate_imdb, ImdbConfig};
//!
//! let db = generate_imdb(&ImdbConfig::tiny(42));
//! assert_eq!(db.schema().num_tables(), 6);
//! assert!(db.table("title").unwrap().row_count() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod column;
pub mod database;
pub mod dist;
pub mod imdb;
pub mod schema;
pub mod table;
pub mod value;

pub use column::Column;
pub use database::Database;
pub use imdb::{generate_imdb, imdb_schema, ImdbConfig};
pub use schema::{ColumnDef, ColumnRef, ForeignKey, Schema, TableDef};
pub use table::Table;
pub use value::{CompareOp, DataType, Value};
