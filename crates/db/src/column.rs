//! Columnar storage for a single column.
//!
//! Values are stored as a dense `Vec<i64>` plus an optional validity bitmap.  This keeps
//! scans cache-friendly, which matters because ground-truth label generation executes tens of
//! thousands of queries over the synthetic database.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A dense, append-only column of 64-bit integers with optional NULLs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    values: Vec<i64>,
    /// Validity bitmap; `None` means "all valid" (the common case, avoiding the allocation).
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Creates an empty column.
    pub fn new() -> Self {
        Column::default()
    }

    /// Creates an empty column with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Column {
            values: Vec::with_capacity(capacity),
            validity: None,
        }
    }

    /// Creates a column from raw non-NULL values.
    pub fn from_values(values: Vec<i64>) -> Self {
        Column {
            values,
            validity: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a non-NULL value.
    pub fn push(&mut self, value: i64) {
        self.values.push(value);
        if let Some(validity) = &mut self.validity {
            validity.push(true);
        }
    }

    /// Appends a NULL.
    pub fn push_null(&mut self) {
        // Materialize the validity bitmap lazily, marking all existing rows valid.
        let validity = self
            .validity
            .get_or_insert_with(|| vec![true; self.values.len()]);
        validity.push(false);
        self.values.push(0);
    }

    /// Appends an optional value.
    pub fn push_option(&mut self, value: Option<i64>) {
        match value {
            Some(v) => self.push(v),
            None => self.push_null(),
        }
    }

    /// Returns the value at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn get(&self, row: usize) -> Value {
        if let Some(validity) = &self.validity {
            if !validity[row] {
                return Value::Null;
            }
        }
        Value::Int(self.values[row])
    }

    /// Returns the raw integer at `row` if it is not NULL.
    pub fn get_int(&self, row: usize) -> Option<i64> {
        if let Some(validity) = &self.validity {
            if !validity[row] {
                return None;
            }
        }
        Some(self.values[row])
    }

    /// Returns true if the value at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[row])
    }

    /// Raw value slice (NULL rows contain an unspecified placeholder, check validity first).
    pub fn raw_values(&self) -> &[i64] {
        &self.values
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |v| v.iter().filter(|&&ok| !ok).count())
    }

    /// Minimum and maximum over non-NULL values, if any exist.
    ///
    /// These bounds are what the featurization uses to normalize predicate literals into
    /// `[0, 1]` (paper §3.2.1, the `V-seg` segment).
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut result: Option<(i64, i64)> = None;
        for row in 0..self.len() {
            if let Some(v) = self.get_int(row) {
                result = Some(match result {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        result
    }

    /// Number of distinct non-NULL values.
    pub fn distinct_count(&self) -> usize {
        let mut seen: Vec<i64> = (0..self.len()).filter_map(|r| self.get_int(r)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Iterates over non-NULL `(row, value)` pairs.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        (0..self.len()).filter_map(move |r| self.get_int(r).map(|v| (r, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::new();
        assert!(c.is_empty());
        c.push(1);
        c.push(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get_int(1), Some(2));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn nulls_are_tracked_lazily() {
        let mut c = Column::new();
        c.push(10);
        c.push_null();
        c.push_option(Some(30));
        c.push_option(None);
        assert_eq!(c.len(), 4);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.get(0), Value::Int(10));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert!(!c.is_null(2));
        assert_eq!(c.get_int(3), None);
    }

    #[test]
    fn min_max_ignores_nulls() {
        let mut c = Column::new();
        c.push_null();
        assert_eq!(c.min_max(), None);
        c.push(5);
        c.push(-3);
        c.push_null();
        c.push(9);
        assert_eq!(c.min_max(), Some((-3, 9)));
    }

    #[test]
    fn distinct_count_ignores_nulls_and_duplicates() {
        let mut c = Column::from_values(vec![1, 2, 2, 3, 3, 3]);
        assert_eq!(c.distinct_count(), 3);
        c.push_null();
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn iter_valid_skips_nulls() {
        let mut c = Column::new();
        c.push(1);
        c.push_null();
        c.push(3);
        let pairs: Vec<_> = c.iter_valid().collect();
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut c = Column::with_capacity(16);
        c.push(1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn validity_extended_when_materialized_late() {
        let mut c = Column::new();
        c.push(1);
        c.push(2);
        c.push_null();
        // Earlier rows must remain valid after the bitmap materialization.
        assert!(!c.is_null(0));
        assert!(!c.is_null(1));
        assert!(c.is_null(2));
        // Pushing after materialization keeps the bitmap in sync.
        c.push(4);
        assert!(!c.is_null(3));
        assert_eq!(c.len(), 4);
    }
}
