//! The top-level [`Database`]: a schema plus one [`Table`] instance per table definition.

use crate::schema::{ColumnRef, Schema};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An immutable snapshot of a database.
///
/// The paper trains and evaluates on "an immutable snapshot of the database" (§3.3); this type
/// is that snapshot.  Mutation is only possible while building the database (before handing it
/// to the executor / models), which mirrors that assumption.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    schema: Schema,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates a database with empty tables for every table in the schema.
    pub fn empty(schema: Schema) -> Self {
        let tables = schema
            .tables()
            .iter()
            .map(|def| (def.name.clone(), Table::new(def.clone())))
            .collect();
        Database { schema, tables }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Returns the table with the given name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Returns a mutable reference to a table (used only during data generation / loading).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Replaces the contents of a table.
    ///
    /// # Panics
    /// Panics if the table is not declared in the schema.
    pub fn insert_table(&mut self, table: Table) {
        assert!(
            self.schema.table(table.name()).is_some(),
            "table {} not declared in schema",
            table.name()
        );
        self.tables.insert(table.name().to_string(), table);
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Minimum and maximum of a column, used for literal normalization in featurization.
    pub fn column_min_max(&self, column: &ColumnRef) -> Option<(i64, i64)> {
        self.table(&column.table)?.column(&column.column)?.min_max()
    }

    /// Number of distinct values in a column.
    pub fn column_distinct(&self, column: &ColumnRef) -> Option<usize> {
        Some(
            self.table(&column.table)?
                .column(&column.column)?
                .distinct_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ForeignKey, TableDef};

    fn toy() -> Database {
        let schema = Schema::new(
            vec![
                TableDef {
                    name: "a".into(),
                    alias: "a".into(),
                    columns: vec![ColumnDef::key("id"), ColumnDef::int("x")],
                    primary_key: Some("id".into()),
                },
                TableDef {
                    name: "b".into(),
                    alias: "b".into(),
                    columns: vec![ColumnDef::key("id"), ColumnDef::key("a_id")],
                    primary_key: Some("id".into()),
                },
            ],
            vec![ForeignKey {
                child_table: "b".into(),
                child_column: "a_id".into(),
                parent_table: "a".into(),
                parent_column: "id".into(),
            }],
        );
        let mut db = Database::empty(schema);
        let ta = db.table_mut("a").unwrap();
        ta.push_row(&[Some(1), Some(10)]);
        ta.push_row(&[Some(2), Some(20)]);
        let tb = db.table_mut("b").unwrap();
        tb.push_row(&[Some(1), Some(1)]);
        db
    }

    #[test]
    fn build_and_inspect() {
        let db = toy();
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.table("a").unwrap().row_count(), 2);
        assert!(db.table("zzz").is_none());
        assert_eq!(db.tables().count(), 2);
    }

    #[test]
    fn column_helpers() {
        let db = toy();
        assert_eq!(db.column_min_max(&ColumnRef::new("a", "x")), Some((10, 20)));
        assert_eq!(db.column_distinct(&ColumnRef::new("a", "x")), Some(2));
        assert_eq!(db.column_min_max(&ColumnRef::new("a", "nope")), None);
    }

    #[test]
    #[should_panic(expected = "not declared in schema")]
    fn inserting_undeclared_table_panics() {
        let mut db = toy();
        let rogue = Table::new(TableDef {
            name: "rogue".into(),
            alias: "r".into(),
            columns: vec![ColumnDef::key("id")],
            primary_key: Some("id".into()),
        });
        db.insert_table(rogue);
    }
}
