//! Random distributions used by the synthetic data generator.
//!
//! The real IMDb database exhibits heavy skew (a few prolific companies, actors and keywords
//! account for most fact-table rows) and cross-column correlations.  The paper leans on those
//! properties ("join crossing correlations", §1 and §6) to show where traditional estimators
//! break down, so the synthetic substitute must reproduce them.  This module provides the
//! skewed samplers; the correlations themselves are wired up in [`crate::imdb`].

use rand::Rng;

/// A Zipf-distributed sampler over `1..=n` with exponent `s`.
///
/// Sampling uses the classic inverse-CDF method over a precomputed cumulative table, which is
/// exact and fast enough for the population sizes used here (at most a few hundred thousand).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with skew exponent `s` (larger = more skewed).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf population must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        for v in &mut cdf {
            *v /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of distinct outcomes.
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

/// Draws from a (truncated) geometric distribution: number of failures before the first
/// success with success probability `p`, capped at `max`.
///
/// Used for per-movie fan-outs (number of cast entries, keywords, ...), which in the real
/// IMDb data have long right tails.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64, max: usize) -> usize {
    debug_assert!(p > 0.0 && p <= 1.0);
    let mut count = 0;
    while count < max && rng.gen::<f64>() > p {
        count += 1;
    }
    count
}

/// Draws an integer uniformly from an inclusive range.
pub fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: i64, hi: i64) -> i64 {
    if lo >= hi {
        return lo;
    }
    rng.gen_range(lo..=hi)
}

/// A weighted categorical distribution over `0..weights.len()`.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "categorical needs at least one outcome"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights must not all be zero");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "categorical weights must be non-negative");
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Categorical { cdf }
    }

    /// Draws an outcome index in `0..len`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipf::new(100, 1.2);
        assert_eq!(z.population(), 100);
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            let v = z.sample(&mut rng);
            assert!((1..=100).contains(&v));
            counts[v] += 1;
        }
        // Rank 1 should be drawn much more often than rank 50.
        assert!(
            counts[1] > counts[50] * 5,
            "zipf skew missing: {} vs {}",
            counts[1],
            counts[50]
        );
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        #[allow(clippy::needless_range_loop)]
        for k in 1..=10 {
            let frac = counts[k] as f64 / 50_000.0;
            assert!(
                (frac - 0.1).abs() < 0.02,
                "rank {k} frequency {frac} too far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn zipf_rejects_empty_population() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn geometric_respects_cap_and_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = sample_geometric(&mut rng, 0.5, 8);
            assert!(v <= 8);
        }
        // With p = 1.0 the result is always zero.
        assert_eq!(sample_geometric(&mut rng, 1.0, 8), 0);
    }

    #[test]
    fn range_sampling_handles_degenerate_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_range(&mut rng, 4, 4), 4);
        assert_eq!(sample_range(&mut rng, 9, 2), 9);
        for _ in 0..100 {
            let v = sample_range(&mut rng, -3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn categorical_matches_weights() {
        let mut rng = StdRng::seed_from_u64(42);
        let c = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((frac0 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn categorical_rejects_empty() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }
}
