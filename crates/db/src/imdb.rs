//! Synthetic IMDb-like database generator.
//!
//! The paper evaluates on the real IMDb database (2.5M titles, §3.1.1) because it "contains
//! many correlations and has been shown to be very challenging for cardinality estimators".
//! We cannot ship that data, so this module generates a *synthetic* database over the same
//! JOB-light schema (the schema used by MSCN): a central `title` table plus five fact tables
//! that all join to it on `title.id = <fact>.movie_id`, which yields exactly the 0–5 join
//! workloads the paper evaluates.
//!
//! The generator deliberately injects the two properties the paper's evaluation depends on:
//!
//! * **Skew** — company/person/keyword identifiers follow Zipf distributions, and per-title
//!   fan-outs have long right tails.
//! * **Join-crossing correlations** — fact-table attributes depend on attributes of the parent
//!   title row (e.g. `company_id` ranges shift with `production_year`, a title's popularity
//!   drives both its cast size and its rating rows), so estimators that assume independence
//!   across joins underestimate, as in the paper.

use crate::database::Database;
use crate::dist::{sample_geometric, sample_range, Categorical, Zipf};
use crate::schema::{ColumnDef, ForeignKey, Schema, TableDef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Table names of the IMDb-like schema.
pub mod tables {
    /// The central `title` table (movies, series, episodes).
    pub const TITLE: &str = "title";
    /// Production companies per movie.
    pub const MOVIE_COMPANIES: &str = "movie_companies";
    /// Cast and crew entries per movie.
    pub const CAST_INFO: &str = "cast_info";
    /// Generic additional information rows per movie.
    pub const MOVIE_INFO: &str = "movie_info";
    /// Indexed (rating-like) information rows per movie.
    pub const MOVIE_INFO_IDX: &str = "movie_info_idx";
    /// Keyword tags per movie.
    pub const MOVIE_KEYWORD: &str = "movie_keyword";

    /// The fact tables (everything except `title`).
    pub const FACTS: [&str; 5] = [
        MOVIE_COMPANIES,
        CAST_INFO,
        MOVIE_INFO,
        MOVIE_INFO_IDX,
        MOVIE_KEYWORD,
    ];
}

/// Configuration of the synthetic database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImdbConfig {
    /// Random seed; the generator is fully deterministic given the seed.
    pub seed: u64,
    /// Number of rows in `title`.
    pub num_titles: usize,
    /// Number of distinct production companies.
    pub num_companies: usize,
    /// Number of distinct persons (actors/directors/...).
    pub num_persons: usize,
    /// Number of distinct keywords.
    pub num_keywords: usize,
    /// Number of distinct info types in `movie_info`.
    pub num_info_types: usize,
    /// Zipf exponent controlling identifier skew (0 = uniform).
    pub skew: f64,
    /// Upper bounds on per-title fan-outs for the fact tables, in the order of
    /// [`tables::FACTS`].
    pub max_fanout: [usize; 5],
}

impl ImdbConfig {
    /// A tiny database for unit tests (runs in milliseconds).
    pub fn tiny(seed: u64) -> Self {
        ImdbConfig {
            seed,
            num_titles: 300,
            num_companies: 40,
            num_persons: 120,
            num_keywords: 60,
            num_info_types: 12,
            skew: 1.1,
            max_fanout: [4, 8, 6, 3, 5],
        }
    }

    /// A small database suitable for fast experiments and benches.
    pub fn small(seed: u64) -> Self {
        ImdbConfig {
            seed,
            num_titles: 3_000,
            num_companies: 200,
            num_persons: 1_500,
            num_keywords: 400,
            num_info_types: 20,
            skew: 1.1,
            max_fanout: [5, 12, 8, 4, 8],
        }
    }

    /// The default experiment database: large enough that correlations and skew dominate,
    /// small enough that ground-truth labelling of tens of thousands of queries is feasible.
    pub fn medium(seed: u64) -> Self {
        ImdbConfig {
            seed,
            num_titles: 12_000,
            num_companies: 500,
            num_persons: 6_000,
            num_keywords: 1_200,
            num_info_types: 30,
            skew: 1.15,
            max_fanout: [6, 16, 10, 5, 10],
        }
    }
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig::small(42)
    }
}

/// Builds the JOB-light style schema used throughout the reproduction.
pub fn imdb_schema() -> Schema {
    let title = TableDef {
        name: tables::TITLE.into(),
        alias: "t".into(),
        columns: vec![
            ColumnDef::key("id"),
            ColumnDef::int("kind_id"),
            ColumnDef::int("production_year").nullable(),
            ColumnDef::int("season_nr").nullable(),
            ColumnDef::int("episode_nr").nullable(),
            ColumnDef::int("runtime"),
        ],
        primary_key: Some("id".into()),
    };
    let movie_companies = TableDef {
        name: tables::MOVIE_COMPANIES.into(),
        alias: "mc".into(),
        columns: vec![
            ColumnDef::key("id"),
            ColumnDef::key("movie_id"),
            ColumnDef::int("company_id"),
            ColumnDef::int("company_type_id"),
        ],
        primary_key: Some("id".into()),
    };
    let cast_info = TableDef {
        name: tables::CAST_INFO.into(),
        alias: "ci".into(),
        columns: vec![
            ColumnDef::key("id"),
            ColumnDef::key("movie_id"),
            ColumnDef::int("person_id"),
            ColumnDef::int("role_id"),
            ColumnDef::int("nr_order"),
        ],
        primary_key: Some("id".into()),
    };
    let movie_info = TableDef {
        name: tables::MOVIE_INFO.into(),
        alias: "mi".into(),
        columns: vec![
            ColumnDef::key("id"),
            ColumnDef::key("movie_id"),
            ColumnDef::int("info_type_id"),
            ColumnDef::int("info_value"),
        ],
        primary_key: Some("id".into()),
    };
    let movie_info_idx = TableDef {
        name: tables::MOVIE_INFO_IDX.into(),
        alias: "mi_idx".into(),
        columns: vec![
            ColumnDef::key("id"),
            ColumnDef::key("movie_id"),
            ColumnDef::int("info_type_id"),
            ColumnDef::int("info_value"),
        ],
        primary_key: Some("id".into()),
    };
    let movie_keyword = TableDef {
        name: tables::MOVIE_KEYWORD.into(),
        alias: "mk".into(),
        columns: vec![
            ColumnDef::key("id"),
            ColumnDef::key("movie_id"),
            ColumnDef::int("keyword_id"),
        ],
        primary_key: Some("id".into()),
    };

    let fks = tables::FACTS
        .iter()
        .map(|fact| ForeignKey {
            child_table: (*fact).to_string(),
            child_column: "movie_id".into(),
            parent_table: tables::TITLE.into(),
            parent_column: "id".into(),
        })
        .collect();

    Schema::new(
        vec![
            title,
            movie_companies,
            cast_info,
            movie_info,
            movie_info_idx,
            movie_keyword,
        ],
        fks,
    )
}

/// Per-title attributes the fact generators depend on, so that fact-table distributions can be
/// correlated with the title's own attributes.
struct TitleRow {
    id: i64,
    kind_id: i64,
    production_year: Option<i64>,
    /// Popularity rank in `1..=num_titles`; small rank = popular title.
    popularity_rank: usize,
}

/// Generates a synthetic IMDb-like database.
pub fn generate_imdb(config: &ImdbConfig) -> Database {
    let schema = imdb_schema();
    let mut db = Database::empty(schema);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let titles = generate_titles(config, &mut rng, &mut db);
    generate_movie_companies(config, &mut rng, &mut db, &titles);
    generate_cast_info(config, &mut rng, &mut db, &titles);
    generate_movie_info(config, &mut rng, &mut db, &titles);
    generate_movie_info_idx(config, &mut rng, &mut db, &titles);
    generate_movie_keyword(config, &mut rng, &mut db, &titles);
    db
}

fn generate_titles(config: &ImdbConfig, rng: &mut StdRng, db: &mut Database) -> Vec<TitleRow> {
    // Decade weights skewed toward recent years (like the real IMDb growth curve).
    let decade_weights: Vec<f64> = (0..14).map(|d| 1.0 + (d as f64).powf(1.8)).collect();
    let decades = Categorical::new(&decade_weights);
    let popularity = Zipf::new(config.num_titles, config.skew);

    let mut titles = Vec::with_capacity(config.num_titles);
    let table = db.table_mut(tables::TITLE).expect("title table");
    for i in 0..config.num_titles {
        let id = i as i64 + 1;
        // production_year: 1880 + decade*10 + offset; ~2% NULLs.
        let production_year = if rng.gen::<f64>() < 0.02 {
            None
        } else {
            let decade = decades.sample(rng) as i64;
            Some(1880 + decade * 10 + sample_range(rng, 0, 9))
        };
        // kind_id 1..=7; series/episode kinds (4, 7) become much more likely after 1990.
        let recent = production_year.is_some_and(|y| y >= 1990);
        let kind_weights = if recent {
            [3.0, 1.0, 1.0, 2.5, 0.5, 0.5, 2.0]
        } else {
            [6.0, 1.5, 1.0, 0.4, 0.3, 0.3, 0.2]
        };
        let kind_id = Categorical::new(&kind_weights).sample(rng) as i64 + 1;
        // Episodes (kind 7) carry season/episode numbers; everything else is NULL there.
        let (season_nr, episode_nr) = if kind_id == 7 {
            let season = sample_range(rng, 1, 15);
            (Some(season), Some(sample_range(rng, 1, 24)))
        } else {
            (None, None)
        };
        // Runtime correlated with kind: movies long, episodes short.
        let runtime = match kind_id {
            1 | 2 => sample_range(rng, 75, 200),
            7 => sample_range(rng, 18, 60),
            _ => sample_range(rng, 40, 120),
        };
        let popularity_rank = popularity.sample(rng);

        table.push_row(&[
            Some(id),
            Some(kind_id),
            production_year,
            season_nr,
            episode_nr,
            Some(runtime),
        ]);
        titles.push(TitleRow {
            id,
            kind_id,
            production_year,
            popularity_rank,
        });
    }
    titles
}

/// Fan-out for a title: popular (low rank) and recent titles receive more fact rows.
fn fanout(rng: &mut StdRng, title: &TitleRow, max: usize) -> usize {
    let popular = title.popularity_rank <= 10;
    let recent = title.production_year.is_some_and(|y| y >= 2000);
    let p = if popular {
        0.25
    } else if recent {
        0.45
    } else {
        0.65
    };
    // At least one row for popular titles so that frequent join partners exist.
    let base = usize::from(popular);
    (base + sample_geometric(rng, p, max)).min(max)
}

fn generate_movie_companies(
    config: &ImdbConfig,
    rng: &mut StdRng,
    db: &mut Database,
    titles: &[TitleRow],
) {
    let zipf = Zipf::new(config.num_companies, config.skew);
    let table = db.table_mut(tables::MOVIE_COMPANIES).expect("mc table");
    let mut next_id = 1i64;
    for title in titles {
        let n = fanout(rng, title, config.max_fanout[0]);
        for _ in 0..n {
            // Join-crossing correlation: the company pool shifts with the production decade, so
            // `production_year > X AND company_id < Y` is far from independent.
            let decade_shift = title
                .production_year
                .map_or(0, |y| ((y - 1880) / 10).clamp(0, 13))
                * (config.num_companies as i64 / 20).max(1);
            let company_id =
                ((zipf.sample(rng) as i64 + decade_shift - 1) % config.num_companies as i64) + 1;
            // Company type correlated with the company identity itself.
            let company_type_id = (company_id % 4) + 1;
            table.push_row(&[
                Some(next_id),
                Some(title.id),
                Some(company_id),
                Some(company_type_id),
            ]);
            next_id += 1;
        }
    }
}

fn generate_cast_info(
    config: &ImdbConfig,
    rng: &mut StdRng,
    db: &mut Database,
    titles: &[TitleRow],
) {
    let zipf = Zipf::new(config.num_persons, config.skew);
    let table = db.table_mut(tables::CAST_INFO).expect("ci table");
    let mut next_id = 1i64;
    for title in titles {
        let n = fanout(rng, title, config.max_fanout[1]);
        for order in 0..n {
            let person_id = zipf.sample(rng) as i64;
            // Billing order correlates with role: leading entries are actors/actresses (1, 2),
            // later entries are crew roles.
            let role_id = if order < 2 {
                sample_range(rng, 1, 2)
            } else if order < 5 {
                sample_range(rng, 1, 4)
            } else {
                sample_range(rng, 3, 11)
            };
            table.push_row(&[
                Some(next_id),
                Some(title.id),
                Some(person_id),
                Some(role_id),
                Some(order as i64 + 1),
            ]);
            next_id += 1;
        }
    }
}

fn generate_movie_info(
    config: &ImdbConfig,
    rng: &mut StdRng,
    db: &mut Database,
    titles: &[TitleRow],
) {
    let zipf = Zipf::new(config.num_info_types, 0.9);
    let table = db.table_mut(tables::MOVIE_INFO).expect("mi table");
    let mut next_id = 1i64;
    for title in titles {
        let n = fanout(rng, title, config.max_fanout[2]);
        for _ in 0..n {
            let info_type_id = zipf.sample(rng) as i64;
            // info_value correlated with both the info type and the title's year / kind, e.g.
            // "budget"-like types grow with the year.
            let year = title.production_year.unwrap_or(1950);
            let info_value = match info_type_id % 3 {
                0 => (year - 1880) * 10 + sample_range(rng, 0, 50),
                1 => title.kind_id * 100 + sample_range(rng, 0, 99),
                _ => sample_range(rng, 0, 1000),
            };
            table.push_row(&[
                Some(next_id),
                Some(title.id),
                Some(info_type_id),
                Some(info_value),
            ]);
            next_id += 1;
        }
    }
}

fn generate_movie_info_idx(
    config: &ImdbConfig,
    rng: &mut StdRng,
    db: &mut Database,
    titles: &[TitleRow],
) {
    let table = db.table_mut(tables::MOVIE_INFO_IDX).expect("mi_idx table");
    let mut next_id = 1i64;
    for title in titles {
        let n = fanout(rng, title, config.max_fanout[3]);
        for _ in 0..n {
            // movie_info_idx holds rating-like indexed info: types 99..=101.
            let info_type_id = sample_range(rng, 99, 101);
            // Ratings (scaled by 10) correlate with popularity: popular titles rate higher.
            let popular_boost = if title.popularity_rank <= 20 { 15 } else { 0 };
            let info_value = (sample_range(rng, 10, 85) + popular_boost).min(100);
            table.push_row(&[
                Some(next_id),
                Some(title.id),
                Some(info_type_id),
                Some(info_value),
            ]);
            next_id += 1;
        }
    }
}

fn generate_movie_keyword(
    config: &ImdbConfig,
    rng: &mut StdRng,
    db: &mut Database,
    titles: &[TitleRow],
) {
    let zipf = Zipf::new(config.num_keywords, config.skew);
    let table = db.table_mut(tables::MOVIE_KEYWORD).expect("mk table");
    let mut next_id = 1i64;
    for title in titles {
        let n = fanout(rng, title, config.max_fanout[4]);
        for _ in 0..n {
            // Keyword pools are partitioned by kind: episodes and movies rarely share keywords.
            let kind_shift = (title.kind_id - 1) * (config.num_keywords as i64 / 8).max(1);
            let keyword_id =
                ((zipf.sample(rng) as i64 + kind_shift - 1) % config.num_keywords as i64) + 1;
            table.push_row(&[Some(next_id), Some(title.id), Some(keyword_id)]);
            next_id += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;

    #[test]
    fn schema_shape_matches_job_light() {
        let schema = imdb_schema();
        assert_eq!(schema.num_tables(), 6);
        assert_eq!(schema.foreign_keys().len(), 5);
        assert_eq!(schema.neighbors(tables::TITLE).len(), 5);
        // Every fact table joins only with title.
        for fact in tables::FACTS {
            assert_eq!(schema.neighbors(fact), vec![tables::TITLE.to_string()]);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = ImdbConfig::tiny(123);
        let a = generate_imdb(&cfg);
        let b = generate_imdb(&cfg);
        assert_eq!(a.total_rows(), b.total_rows());
        for t in a.tables() {
            let other = b.table(t.name()).unwrap();
            assert_eq!(t.row_count(), other.row_count(), "table {}", t.name());
        }
    }

    #[test]
    fn different_seeds_produce_different_data() {
        let a = generate_imdb(&ImdbConfig::tiny(1));
        let b = generate_imdb(&ImdbConfig::tiny(2));
        assert_ne!(a.total_rows(), b.total_rows());
    }

    #[test]
    fn title_table_has_requested_cardinality() {
        let cfg = ImdbConfig::tiny(7);
        let db = generate_imdb(&cfg);
        assert_eq!(db.table(tables::TITLE).unwrap().row_count(), cfg.num_titles);
        // Every fact table references valid movie ids.
        for fact in tables::FACTS {
            let t = db.table(fact).unwrap();
            let col = t.column("movie_id").unwrap();
            for (_, movie_id) in col.iter_valid() {
                assert!(movie_id >= 1 && movie_id <= cfg.num_titles as i64);
            }
        }
    }

    #[test]
    fn identifier_domains_are_respected() {
        let cfg = ImdbConfig::tiny(99);
        let db = generate_imdb(&cfg);
        let companies = db.table(tables::MOVIE_COMPANIES).unwrap();
        for (_, v) in companies.column("company_id").unwrap().iter_valid() {
            assert!(v >= 1 && v <= cfg.num_companies as i64);
        }
        let keywords = db.table(tables::MOVIE_KEYWORD).unwrap();
        for (_, v) in keywords.column("keyword_id").unwrap().iter_valid() {
            assert!(v >= 1 && v <= cfg.num_keywords as i64);
        }
        let kinds = db.table(tables::TITLE).unwrap();
        for (_, v) in kinds.column("kind_id").unwrap().iter_valid() {
            assert!((1..=7).contains(&v));
        }
    }

    #[test]
    fn production_year_contains_some_nulls() {
        let db = generate_imdb(&ImdbConfig::tiny(5));
        let nulls = db
            .table(tables::TITLE)
            .unwrap()
            .column("production_year")
            .unwrap()
            .null_count();
        assert!(nulls > 0, "expected a few NULL production years");
    }

    #[test]
    fn company_ids_are_skewed() {
        let db = generate_imdb(&ImdbConfig::small(11));
        let col = db
            .table(tables::MOVIE_COMPANIES)
            .unwrap()
            .column("company_id")
            .unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for (_, v) in col.iter_valid() {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = col.len() as f64 / counts.len() as f64;
        assert!(
            max as f64 > 3.0 * avg,
            "expected skew: max {max} should dominate average {avg:.1}"
        );
    }

    #[test]
    fn correlation_between_year_and_kind_exists() {
        let db = generate_imdb(&ImdbConfig::small(3));
        let title = db.table(tables::TITLE).unwrap();
        let years = title.column("production_year").unwrap();
        let kinds = title.column("kind_id").unwrap();
        let mut old_episode = 0usize;
        let mut recent_episode = 0usize;
        let mut old_total = 0usize;
        let mut recent_total = 0usize;
        for row in 0..title.row_count() {
            let Some(year) = years.get_int(row) else {
                continue;
            };
            let kind = kinds.get_int(row).unwrap();
            if year < 1960 {
                old_total += 1;
                if kind == 7 {
                    old_episode += 1;
                }
            } else if year >= 1995 {
                recent_total += 1;
                if kind == 7 {
                    recent_episode += 1;
                }
            }
        }
        let old_rate = old_episode as f64 / old_total.max(1) as f64;
        let recent_rate = recent_episode as f64 / recent_total.max(1) as f64;
        assert!(
            recent_rate > old_rate + 0.05,
            "episode kind should correlate with recent years ({old_rate:.3} vs {recent_rate:.3})"
        );
    }

    #[test]
    fn min_max_available_for_featurization() {
        let db = generate_imdb(&ImdbConfig::tiny(21));
        let (lo, hi) = db
            .column_min_max(&ColumnRef::new(tables::TITLE, "production_year"))
            .unwrap();
        assert!(lo >= 1880 && hi <= 2019 && lo < hi);
    }
}
