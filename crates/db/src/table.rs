//! A table: a set of equally-long columns conforming to a [`TableDef`].

use crate::column::Column;
use crate::schema::TableDef;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An in-memory columnar table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    def: TableDef,
    columns: Vec<Column>,
    row_count: usize,
}

impl Table {
    /// Creates an empty table for the given definition.
    pub fn new(def: TableDef) -> Self {
        let columns = def.columns.iter().map(|_| Column::new()).collect();
        Table {
            def,
            columns,
            row_count: 0,
        }
    }

    /// Creates an empty table with per-column capacity pre-allocated.
    pub fn with_capacity(def: TableDef, capacity: usize) -> Self {
        let columns = def
            .columns
            .iter()
            .map(|_| Column::with_capacity(capacity))
            .collect();
        Table {
            def,
            columns,
            row_count: 0,
        }
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Returns true when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Appends one row given as optional values in column declaration order.
    ///
    /// # Panics
    /// Panics if the number of values does not match the number of columns.
    pub fn push_row(&mut self, row: &[Option<i64>]) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch for table {}",
            self.def.name
        );
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push_option(*value);
        }
        self.row_count += 1;
    }

    /// Returns the column at a positional index.
    pub fn column_at(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Returns a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.def.column_index(name).map(|i| &self.columns[i])
    }

    /// Returns a single cell value.
    pub fn value(&self, row: usize, column: &str) -> Option<Value> {
        self.column(column).map(|c| c.get(row))
    }

    /// Builds a map from value to row indices for `column` (NULLs excluded).
    ///
    /// Used by the execution engine to hash-join on key columns.
    pub fn build_index(&self, column: &str) -> Option<BTreeMap<i64, Vec<u32>>> {
        let col = self.column(column)?;
        let mut index: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (row, value) in col.iter_valid() {
            index.entry(value).or_default().push(row as u32);
        }
        Some(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn def() -> TableDef {
        TableDef {
            name: "t".into(),
            alias: "t".into(),
            columns: vec![
                ColumnDef::key("id"),
                ColumnDef::int("x"),
                ColumnDef::int("y").nullable(),
            ],
            primary_key: Some("id".into()),
        }
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = Table::new(def());
        t.push_row(&[Some(1), Some(10), Some(100)]);
        t.push_row(&[Some(2), Some(20), None]);
        assert_eq!(t.row_count(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.value(0, "x"), Some(Value::Int(10)));
        assert_eq!(t.value(1, "y"), Some(Value::Null));
        assert_eq!(t.value(1, "missing"), None);
        assert_eq!(t.name(), "t");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(def());
        t.push_row(&[Some(1)]);
    }

    #[test]
    fn build_index_groups_rows_by_value() {
        let mut t = Table::with_capacity(def(), 4);
        t.push_row(&[Some(1), Some(7), Some(0)]);
        t.push_row(&[Some(2), Some(7), Some(0)]);
        t.push_row(&[Some(3), Some(8), None]);
        let idx = t.build_index("x").unwrap();
        assert_eq!(idx.get(&7).unwrap(), &vec![0u32, 1]);
        assert_eq!(idx.get(&8).unwrap(), &vec![2u32]);
        assert!(t.build_index("missing").is_none());
    }

    #[test]
    fn column_access_by_position_and_name() {
        let mut t = Table::new(def());
        t.push_row(&[Some(5), Some(6), Some(7)]);
        assert_eq!(t.column_at(1).get_int(0), Some(6));
        assert_eq!(t.column("y").unwrap().get_int(0), Some(7));
    }
}
