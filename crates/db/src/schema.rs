//! Logical schema: tables, columns, keys and the join graph.
//!
//! The schema layer is what both the query generator and the featurization rely on: the
//! featurization's vector segmentation (Table 1 in the paper) needs a stable global numbering
//! of tables (`#T`) and columns (`#C`), which [`Schema::table_index`] and
//! [`Schema::global_column_index`] provide.

use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A column definition inside a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether this column is a key column (primary key or foreign key).
    ///
    /// The paper's query generator only places predicates on *non-key* columns (§3.1.2), so
    /// this flag drives predicate-column selection.
    pub is_key: bool,
    /// Whether NULLs may appear in this column.
    pub nullable: bool,
}

impl ColumnDef {
    /// Creates a non-key, non-nullable integer column.
    pub fn int(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            data_type: DataType::Int,
            is_key: false,
            nullable: false,
        }
    }

    /// Creates a key (PK/FK) integer column.
    pub fn key(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            data_type: DataType::Int,
            is_key: true,
            nullable: false,
        }
    }

    /// Marks the column as nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }

    /// Marks the column as dictionary-encoded string.
    pub fn dict_str(mut self) -> Self {
        self.data_type = DataType::DictStr;
        self
    }
}

/// A foreign-key relationship `child.child_column -> parent.parent_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing (fact) table.
    pub child_table: String,
    /// Referencing column in the child table.
    pub child_column: String,
    /// Referenced (dimension) table.
    pub parent_table: String,
    /// Referenced column in the parent table, usually its primary key.
    pub parent_column: String,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (e.g. `title`).
    pub name: String,
    /// Short alias used in generated SQL (e.g. `t`), mirroring the JOB/IMDb conventions.
    pub alias: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Name of the primary-key column, if any.
    pub primary_key: Option<String>,
}

impl TableDef {
    /// Returns the position of `column` within this table, if present.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Returns the definition of `column`, if present.
    pub fn column(&self, column: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// Iterates over non-key columns (the candidates for query predicates).
    pub fn non_key_columns(&self) -> impl Iterator<Item = &ColumnDef> {
        self.columns.iter().filter(|c| !c.is_key)
    }
}

/// A fully qualified column reference `table.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name within the table.
    pub column: String,
}

impl ColumnRef {
    /// Creates a column reference from table and column names.
    pub fn new(table: &str, column: &str) -> Self {
        ColumnRef {
            table: table.to_string(),
            column: column.to_string(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A database schema: a set of tables plus foreign keys defining the join graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<TableDef>,
    foreign_keys: Vec<ForeignKey>,
    /// Cached map from table name to index in `tables`.
    #[serde(skip)]
    table_lookup: BTreeMap<String, usize>,
}

impl Schema {
    /// Builds a schema from table definitions and foreign keys.
    ///
    /// # Panics
    /// Panics if table names are not unique, or a foreign key references an unknown
    /// table/column — these are programming errors in schema construction.
    pub fn new(tables: Vec<TableDef>, foreign_keys: Vec<ForeignKey>) -> Self {
        let mut table_lookup = BTreeMap::new();
        for (i, t) in tables.iter().enumerate() {
            let prev = table_lookup.insert(t.name.clone(), i);
            assert!(prev.is_none(), "duplicate table name {}", t.name);
        }
        for fk in &foreign_keys {
            let child = table_lookup
                .get(&fk.child_table)
                .unwrap_or_else(|| panic!("unknown FK child table {}", fk.child_table));
            let parent = table_lookup
                .get(&fk.parent_table)
                .unwrap_or_else(|| panic!("unknown FK parent table {}", fk.parent_table));
            assert!(
                tables[*child].column_index(&fk.child_column).is_some(),
                "unknown FK child column {}.{}",
                fk.child_table,
                fk.child_column
            );
            assert!(
                tables[*parent].column_index(&fk.parent_column).is_some(),
                "unknown FK parent column {}.{}",
                fk.parent_table,
                fk.parent_column
            );
        }
        Schema {
            tables,
            foreign_keys,
            table_lookup,
        }
    }

    /// Rebuilds internal lookup tables; must be called after deserialization.
    pub fn rebuild_lookup(&mut self) {
        self.table_lookup = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i))
            .collect();
    }

    /// Number of tables (`#T` in the paper's featurization).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns over all tables (`#C` in the paper's featurization).
    pub fn num_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// All table definitions in declaration order.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Looks up a table definition by name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.table_lookup.get(name).map(|&i| &self.tables[i])
    }

    /// Looks up a table definition by alias (e.g. `t` for `title`).
    pub fn table_by_alias(&self, alias: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.alias == alias)
    }

    /// The index of a table in the global table numbering, used for one-hot encodings.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.table_lookup.get(name).copied()
    }

    /// The index of `table.column` in the global column numbering (tables in declaration
    /// order, columns in declaration order within each table). Used for one-hot encodings.
    pub fn global_column_index(&self, column: &ColumnRef) -> Option<usize> {
        let mut offset = 0usize;
        for t in &self.tables {
            if t.name == column.table {
                return t.column_index(&column.column).map(|i| offset + i);
            }
            offset += t.columns.len();
        }
        None
    }

    /// Returns the column definition for a fully-qualified reference.
    pub fn column(&self, column: &ColumnRef) -> Option<&ColumnDef> {
        self.table(&column.table)?.column(&column.column)
    }

    /// Returns all join edges (pairs of columns related by a foreign key).
    ///
    /// The paper's generator only emits joins that follow the schema's join graph; this is the
    /// source of those candidate edges.
    pub fn join_edges(&self) -> Vec<(ColumnRef, ColumnRef)> {
        self.foreign_keys
            .iter()
            .map(|fk| {
                (
                    ColumnRef::new(&fk.child_table, &fk.child_column),
                    ColumnRef::new(&fk.parent_table, &fk.parent_column),
                )
            })
            .collect()
    }

    /// Returns the join edge connecting two tables, if one exists (in either direction).
    pub fn join_edge_between(&self, a: &str, b: &str) -> Option<(ColumnRef, ColumnRef)> {
        self.foreign_keys.iter().find_map(|fk| {
            if fk.child_table == a && fk.parent_table == b {
                Some((
                    ColumnRef::new(&fk.child_table, &fk.child_column),
                    ColumnRef::new(&fk.parent_table, &fk.parent_column),
                ))
            } else if fk.child_table == b && fk.parent_table == a {
                Some((
                    ColumnRef::new(&fk.parent_table, &fk.parent_column),
                    ColumnRef::new(&fk.child_table, &fk.child_column),
                ))
            } else {
                None
            }
        })
    }

    /// Tables directly joinable with `table` according to the join graph.
    pub fn neighbors(&self, table: &str) -> Vec<String> {
        let mut out = Vec::new();
        for fk in &self.foreign_keys {
            if fk.child_table == table {
                out.push(fk.parent_table.clone());
            } else if fk.parent_table == table {
                out.push(fk.child_table.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> Schema {
        Schema::new(
            vec![
                TableDef {
                    name: "a".into(),
                    alias: "a".into(),
                    columns: vec![
                        ColumnDef::key("id"),
                        ColumnDef::int("x"),
                        ColumnDef::int("y"),
                    ],
                    primary_key: Some("id".into()),
                },
                TableDef {
                    name: "b".into(),
                    alias: "b".into(),
                    columns: vec![
                        ColumnDef::key("id"),
                        ColumnDef::key("a_id"),
                        ColumnDef::int("z"),
                    ],
                    primary_key: Some("id".into()),
                },
            ],
            vec![ForeignKey {
                child_table: "b".into(),
                child_column: "a_id".into(),
                parent_table: "a".into(),
                parent_column: "id".into(),
            }],
        )
    }

    #[test]
    fn counts_tables_and_columns() {
        let s = toy_schema();
        assert_eq!(s.num_tables(), 2);
        assert_eq!(s.num_columns(), 6);
    }

    #[test]
    fn table_and_column_lookup() {
        let s = toy_schema();
        assert_eq!(s.table_index("a"), Some(0));
        assert_eq!(s.table_index("b"), Some(1));
        assert_eq!(s.table_index("zzz"), None);
        assert_eq!(s.global_column_index(&ColumnRef::new("a", "id")), Some(0));
        assert_eq!(s.global_column_index(&ColumnRef::new("a", "y")), Some(2));
        assert_eq!(s.global_column_index(&ColumnRef::new("b", "z")), Some(5));
        assert_eq!(s.global_column_index(&ColumnRef::new("b", "nope")), None);
    }

    #[test]
    fn join_graph_queries() {
        let s = toy_schema();
        let edges = s.join_edges();
        assert_eq!(edges.len(), 1);
        let (c, p) = s.join_edge_between("a", "b").expect("edge exists");
        assert_eq!(c, ColumnRef::new("a", "id"));
        assert_eq!(p, ColumnRef::new("b", "a_id"));
        let (c, p) = s.join_edge_between("b", "a").expect("edge exists");
        assert_eq!(c, ColumnRef::new("b", "a_id"));
        assert_eq!(p, ColumnRef::new("a", "id"));
        assert!(s.join_edge_between("a", "a").is_none());
        assert_eq!(s.neighbors("a"), vec!["b".to_string()]);
    }

    #[test]
    fn non_key_columns_excludes_keys() {
        let s = toy_schema();
        let non_keys: Vec<_> = s
            .table("b")
            .unwrap()
            .non_key_columns()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(non_keys, vec!["z".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_tables_panic() {
        let t = TableDef {
            name: "a".into(),
            alias: "a".into(),
            columns: vec![ColumnDef::key("id")],
            primary_key: Some("id".into()),
        };
        let _ = Schema::new(vec![t.clone(), t], vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown FK")]
    fn bad_foreign_key_panics() {
        let t = TableDef {
            name: "a".into(),
            alias: "a".into(),
            columns: vec![ColumnDef::key("id")],
            primary_key: Some("id".into()),
        };
        let _ = Schema::new(
            vec![t],
            vec![ForeignKey {
                child_table: "a".into(),
                child_column: "missing".into(),
                parent_table: "a".into(),
                parent_column: "id".into(),
            }],
        );
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::new("t", "id").to_string(), "t.id");
    }

    #[test]
    fn alias_lookup() {
        let s = toy_schema();
        assert_eq!(s.table_by_alias("b").unwrap().name, "b");
        assert!(s.table_by_alias("nope").is_none());
    }
}
