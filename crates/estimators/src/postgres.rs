//! A PostgreSQL-style statistics-based cardinality estimator.
//!
//! This is the "PostgreSQL version 11 cardinality estimation component" baseline of the paper
//! (§4.1, §6), re-implemented from its documented algorithm:
//!
//! * per-column selectivities from MCV lists and equi-depth histograms (`eqsel`, `scalarltsel`),
//! * predicates combined under the attribute-value-independence assumption (multiplying
//!   selectivities),
//! * equi-join selectivity `1 / max(ndv(a), ndv(b))` (`eqjoinsel` without MCV matching),
//! * final estimate `Π |T_i| · Π sel(pred) · Π sel(join)`, clamped to at least one row.
//!
//! These assumptions are exactly what breaks down under the correlated, skewed data the paper
//! evaluates on — reproducing the characteristic exponential under-estimation as join count
//! grows (§6.5).

use crate::stats::{DatabaseStats, StatsConfig};
use crate::traits::CardinalityEstimator;
use crn_db::database::Database;
use crn_db::schema::ColumnRef;
use crn_db::value::CompareOp;
use crn_query::ast::{JoinClause, Predicate, Query};

/// Default selectivity for predicates the statistics cannot say anything about
/// (PostgreSQL's `DEFAULT_EQ_SEL` / `DEFAULT_INEQ_SEL` are similar magic constants).
const DEFAULT_EQ_SEL: f64 = 0.005;
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;

/// The PostgreSQL-style estimator.
pub struct PostgresEstimator {
    stats: DatabaseStats,
}

impl PostgresEstimator {
    /// Profiles the database and builds the estimator (the equivalent of `ANALYZE`).
    pub fn analyze(db: &Database) -> Self {
        PostgresEstimator {
            stats: DatabaseStats::collect(db, &StatsConfig::default()),
        }
    }

    /// Builds the estimator with custom profiling parameters.
    pub fn with_config(db: &Database, config: &StatsConfig) -> Self {
        PostgresEstimator {
            stats: DatabaseStats::collect(db, config),
        }
    }

    /// Builds the estimator from pre-collected statistics.
    pub fn from_stats(stats: DatabaseStats) -> Self {
        PostgresEstimator { stats }
    }

    /// The underlying statistics (exposed for inspection and tests).
    pub fn stats(&self) -> &DatabaseStats {
        &self.stats
    }

    /// Selectivity of a single column predicate.
    pub fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        let Some(stats) = self.stats.column(&predicate.column) else {
            return default_selectivity(predicate.op);
        };
        if stats.row_count == 0 {
            return 0.0;
        }
        if stats.n_distinct == 0 {
            // Only NULLs: nothing satisfies any predicate.
            return 0.0;
        }
        let selectivity = match predicate.op {
            CompareOp::Eq => self.equality_selectivity(predicate),
            CompareOp::Ne => 1.0 - stats.null_fraction - self.equality_selectivity(predicate),
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                self.range_selectivity(predicate)
            }
        };
        selectivity.clamp(0.0, 1.0)
    }

    fn equality_selectivity(&self, predicate: &Predicate) -> f64 {
        let stats = self
            .stats
            .column(&predicate.column)
            .expect("caller checked stats exist");
        // MCV hit: the frequency is known exactly.
        if let Some((_, freq)) = stats
            .most_common
            .iter()
            .find(|(value, _)| *value == predicate.value)
        {
            return *freq;
        }
        // Out-of-range literals match nothing.
        if let (Some(min), Some(max)) = (stats.min, stats.max) {
            if predicate.value < min || predicate.value > max {
                return 0.0;
            }
        }
        // Otherwise assume the remaining probability mass is spread uniformly over the
        // non-MCV distinct values.
        let remaining_distinct = stats.non_mcv_distinct();
        if remaining_distinct == 0 {
            return DEFAULT_EQ_SEL;
        }
        stats.histogram_fraction() / remaining_distinct as f64
    }

    fn range_selectivity(&self, predicate: &Predicate) -> f64 {
        let stats = self
            .stats
            .column(&predicate.column)
            .expect("caller checked stats exist");
        let inclusive = matches!(predicate.op, CompareOp::Le | CompareOp::Ge);
        let less_than = matches!(predicate.op, CompareOp::Lt | CompareOp::Le);

        // Fraction of MCV rows satisfying the predicate (exact).
        let mcv_part: f64 = stats
            .most_common
            .iter()
            .filter(|(value, _)| predicate.op.eval(*value, predicate.value))
            .map(|(_, freq)| freq)
            .sum();

        // Fraction of histogram rows below the literal, by linear interpolation inside the
        // containing bucket (PostgreSQL's `ineq_histogram_selectivity`).
        let histogram_part = match histogram_fraction_below(
            &stats.histogram_bounds,
            predicate.value,
            inclusive && less_than,
        ) {
            Some(below) => {
                let fraction = if less_than { below } else { 1.0 - below };
                fraction * stats.histogram_fraction()
            }
            None => DEFAULT_RANGE_SEL * stats.histogram_fraction(),
        };

        mcv_part + histogram_part
    }

    /// Selectivity of an equi-join clause: `1 / max(ndv(left), ndv(right))`.
    pub fn join_selectivity(&self, join: &JoinClause) -> f64 {
        let ndv = |column: &ColumnRef| {
            self.stats
                .column(column)
                .map(|s| s.n_distinct.max(1))
                .unwrap_or(1)
        };
        let left = ndv(&join.left);
        let right = ndv(&join.right);
        1.0 / left.max(right) as f64
    }
}

/// Fraction of histogram-covered rows strictly below (or below-or-equal, when `inclusive`)
/// the literal.  Returns `None` when there is no histogram.
fn histogram_fraction_below(bounds: &[i64], literal: i64, inclusive: bool) -> Option<f64> {
    if bounds.len() < 2 {
        return None;
    }
    let min = bounds[0];
    let max = *bounds.last().expect("bounds non-empty");
    if literal < min || (literal == min && !inclusive) {
        return Some(0.0);
    }
    if literal > max || (literal == max && inclusive) {
        return Some(1.0);
    }
    let buckets = (bounds.len() - 1) as f64;
    for (i, window) in bounds.windows(2).enumerate() {
        let (lo, hi) = (window[0], window[1]);
        if literal >= lo && literal <= hi {
            let within = if hi == lo {
                0.5
            } else {
                (literal - lo) as f64 / (hi - lo) as f64
            };
            return Some((i as f64 + within) / buckets);
        }
    }
    Some(1.0)
}

impl CardinalityEstimator for PostgresEstimator {
    fn name(&self) -> &str {
        "PostgreSQL"
    }

    fn estimate(&self, query: &Query) -> f64 {
        if query.tables().is_empty() {
            return 0.0;
        }
        let mut estimate: f64 = 1.0;
        for table in query.tables() {
            estimate *= self.stats.rows(table).max(1) as f64;
        }
        for predicate in query.predicates() {
            estimate *= self.predicate_selectivity(predicate);
        }
        for join in query.joins() {
            estimate *= self.join_selectivity(join);
        }
        // PostgreSQL never estimates fewer than one row.
        estimate.max(1.0)
    }
}

fn default_selectivity(op: CompareOp) -> f64 {
    match op {
        CompareOp::Eq => DEFAULT_EQ_SEL,
        CompareOp::Ne => 1.0 - DEFAULT_EQ_SEL,
        _ => DEFAULT_RANGE_SEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_exec::Executor;
    use crn_nn::q_error;
    use crn_query::ast::{JoinClause, Predicate};
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn col(t: &str, c: &str) -> ColumnRef {
        ColumnRef::new(t, c)
    }

    #[test]
    fn scan_estimate_equals_table_size() {
        let db = generate_imdb(&ImdbConfig::tiny(7));
        let est = PostgresEstimator::analyze(&db);
        let scan = Query::scan(tables::TITLE);
        assert_eq!(
            est.estimate(&scan),
            db.table(tables::TITLE).unwrap().row_count() as f64
        );
        assert_eq!(est.name(), "PostgreSQL");
    }

    #[test]
    fn equality_on_mcv_value_is_accurate() {
        let db = generate_imdb(&ImdbConfig::small(7));
        let est = PostgresEstimator::analyze(&db);
        let exec = Executor::new(&db);
        // kind_id has few distinct values, so every value is an MCV and estimates are close.
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "kind_id"),
                CompareOp::Eq,
                1,
            )],
        );
        let estimate = est.estimate(&q);
        let truth = exec.cardinality(&q) as f64;
        assert!(truth > 0.0);
        assert!(
            q_error(estimate, truth, 1.0) < 1.2,
            "MCV equality should be near-exact: est {estimate} vs truth {truth}"
        );
    }

    #[test]
    fn range_predicates_are_reasonable_on_single_tables() {
        let db = generate_imdb(&ImdbConfig::small(9));
        let est = PostgresEstimator::analyze(&db);
        let exec = Executor::new(&db);
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "production_year"),
                CompareOp::Gt,
                1990,
            )],
        );
        let estimate = est.estimate(&q);
        let truth = exec.cardinality(&q) as f64;
        assert!(
            q_error(estimate, truth, 1.0) < 2.0,
            "single-column range estimate should be decent: est {estimate} vs truth {truth}"
        );
    }

    #[test]
    fn out_of_range_equality_estimates_minimum() {
        let db = generate_imdb(&ImdbConfig::tiny(7));
        let est = PostgresEstimator::analyze(&db);
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "kind_id"),
                CompareOp::Eq,
                999,
            )],
        );
        assert_eq!(est.estimate(&q), 1.0, "clamped to one row");
    }

    #[test]
    fn selectivities_are_probabilities() {
        let db = generate_imdb(&ImdbConfig::tiny(13));
        let est = PostgresEstimator::analyze(&db);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(13));
        for q in gen.generate_queries(100) {
            for p in q.predicates() {
                let s = est.predicate_selectivity(p);
                assert!((0.0..=1.0).contains(&s), "selectivity {s} for {p}");
            }
            for j in q.joins() {
                let s = est.join_selectivity(j);
                assert!(s > 0.0 && s <= 1.0, "join selectivity {s} for {j}");
            }
            assert!(est.estimate(&q) >= 1.0);
        }
    }

    #[test]
    fn join_estimates_underestimate_under_correlation() {
        // The generator correlates fan-out with title attributes, so the AVI assumption makes
        // multi-join estimates noticeably lower than the truth on average — the paper's
        // central observation about traditional estimators (§6.5).
        let db = generate_imdb(&ImdbConfig::small(21));
        let est = PostgresEstimator::analyze(&db);
        let exec = Executor::new(&db);
        let q = Query::new(
            [
                tables::TITLE.to_string(),
                tables::CAST_INFO.to_string(),
                tables::MOVIE_KEYWORD.to_string(),
            ],
            [
                JoinClause::new(col(tables::TITLE, "id"), col(tables::CAST_INFO, "movie_id")),
                JoinClause::new(
                    col(tables::TITLE, "id"),
                    col(tables::MOVIE_KEYWORD, "movie_id"),
                ),
            ],
            [Predicate::new(
                col(tables::TITLE, "production_year"),
                CompareOp::Gt,
                2000,
            )],
        );
        let estimate = est.estimate(&q);
        let truth = exec.cardinality(&q) as f64;
        assert!(truth > 0.0);
        assert!(
            estimate < truth,
            "correlated multi-join queries should be under-estimated: est {estimate} vs truth {truth}"
        );
    }

    #[test]
    fn histogram_fraction_below_edge_cases() {
        assert_eq!(histogram_fraction_below(&[], 5, false), None);
        assert_eq!(histogram_fraction_below(&[1], 5, false), None);
        let bounds = vec![0, 10, 20, 30, 40];
        assert_eq!(histogram_fraction_below(&bounds, -5, false), Some(0.0));
        assert_eq!(histogram_fraction_below(&bounds, 100, false), Some(1.0));
        assert_eq!(histogram_fraction_below(&bounds, 20, false), Some(0.5));
        let below_25 = histogram_fraction_below(&bounds, 25, false).unwrap();
        assert!((below_25 - 0.625).abs() < 1e-9);
    }

    #[test]
    fn unknown_columns_fall_back_to_defaults() {
        let db = generate_imdb(&ImdbConfig::tiny(3));
        let est = PostgresEstimator::analyze(&db);
        let p = Predicate::new(col("title", "not_a_column"), CompareOp::Eq, 1);
        assert_eq!(est.predicate_selectivity(&p), DEFAULT_EQ_SEL);
        let p = Predicate::new(col("title", "not_a_column"), CompareOp::Lt, 1);
        assert_eq!(est.predicate_selectivity(&p), DEFAULT_RANGE_SEL);
    }
}
