//! Database profiling statistics, in the style of PostgreSQL's `pg_statistic`.
//!
//! The PostgreSQL baseline in the paper (§4.1, §6) estimates cardinalities from per-column
//! statistics collected by `ANALYZE`: null fraction, number of distinct values, the most
//! common values (MCV) with their frequencies, and an equi-depth histogram of the remaining
//! values.  This module collects the same statistics from the in-memory database.

use crn_db::column::Column;
use crn_db::database::Database;
use crn_db::schema::ColumnRef;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Statistics of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Total number of rows in the table.
    pub row_count: usize,
    /// Fraction of NULL values.
    pub null_fraction: f64,
    /// Number of distinct non-NULL values.
    pub n_distinct: usize,
    /// Minimum non-NULL value (if any non-NULL value exists).
    pub min: Option<i64>,
    /// Maximum non-NULL value.
    pub max: Option<i64>,
    /// Most common values with their frequencies (fraction of all rows), most frequent first.
    pub most_common: Vec<(i64, f64)>,
    /// Equi-depth histogram bucket boundaries over the values *not* covered by the MCV list.
    /// `bounds[0]` is the minimum, `bounds[len-1]` the maximum; each bucket holds roughly the
    /// same number of rows.
    pub histogram_bounds: Vec<i64>,
}

/// Parameters controlling statistics collection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatsConfig {
    /// Number of most-common-value entries kept per column (PostgreSQL's default is 100).
    pub mcv_entries: usize,
    /// Number of histogram buckets (PostgreSQL's default is 100).
    pub histogram_buckets: usize,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            mcv_entries: 100,
            histogram_buckets: 100,
        }
    }
}

impl ColumnStats {
    /// Collects statistics from a column.
    pub fn collect(column: &Column, config: &StatsConfig) -> Self {
        let row_count = column.len();
        let null_count = column.null_count();
        let null_fraction = if row_count == 0 {
            0.0
        } else {
            null_count as f64 / row_count as f64
        };

        // Value frequency map over non-NULL values.
        let mut frequencies: BTreeMap<i64, usize> = BTreeMap::new();
        for (_, v) in column.iter_valid() {
            *frequencies.entry(v).or_insert(0) += 1;
        }
        let n_distinct = frequencies.len();
        let min = frequencies.keys().next().copied();
        let max = frequencies.keys().next_back().copied();

        // Most common values: keep the top-k by frequency, but only those that appear more
        // than once (singletons carry no more information than the histogram).
        let mut by_freq: Vec<(i64, usize)> = frequencies.iter().map(|(&v, &c)| (v, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let most_common: Vec<(i64, f64)> = by_freq
            .iter()
            .take(config.mcv_entries)
            .filter(|(_, count)| *count > 1)
            .map(|(v, count)| (*v, *count as f64 / row_count.max(1) as f64))
            .collect();
        let mcv_set: HashMap<i64, ()> = most_common.iter().map(|(v, _)| (*v, ())).collect();

        // Equi-depth histogram over the remaining values.
        let mut rest: Vec<i64> = Vec::new();
        for (&value, &count) in &frequencies {
            if mcv_set.contains_key(&value) {
                continue;
            }
            rest.extend(std::iter::repeat_n(value, count));
        }
        let histogram_bounds = equi_depth_bounds(&rest, config.histogram_buckets);

        ColumnStats {
            row_count,
            null_fraction,
            n_distinct,
            min,
            max,
            most_common,
            histogram_bounds,
        }
    }

    /// Total fraction of rows covered by the MCV list.
    pub fn mcv_fraction(&self) -> f64 {
        self.most_common.iter().map(|(_, f)| f).sum()
    }

    /// Fraction of rows not covered by MCVs and not NULL (i.e. covered by the histogram).
    pub fn histogram_fraction(&self) -> f64 {
        (1.0 - self.null_fraction - self.mcv_fraction()).max(0.0)
    }

    /// Number of distinct values not covered by the MCV list.
    pub fn non_mcv_distinct(&self) -> usize {
        self.n_distinct.saturating_sub(self.most_common.len())
    }
}

/// Computes equi-depth histogram bucket boundaries over a sorted multiset of values.
fn equi_depth_bounds(sorted_values: &[i64], buckets: usize) -> Vec<i64> {
    if sorted_values.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let buckets = buckets.min(sorted_values.len());
    let mut bounds = Vec::with_capacity(buckets + 1);
    for i in 0..=buckets {
        let index = (i * (sorted_values.len() - 1)) / buckets;
        bounds.push(sorted_values[index]);
    }
    bounds.dedup();
    bounds
}

/// Statistics for every column of every table, plus table row counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DatabaseStats {
    /// Per-table row counts.
    pub table_rows: HashMap<String, usize>,
    /// Per-column statistics keyed by `(table, column)`.
    pub columns: HashMap<(String, String), ColumnStats>,
}

impl DatabaseStats {
    /// Profiles the whole database (the equivalent of running `ANALYZE`).
    pub fn collect(db: &Database, config: &StatsConfig) -> Self {
        let mut table_rows = HashMap::new();
        let mut columns = HashMap::new();
        for table in db.tables() {
            table_rows.insert(table.name().to_string(), table.row_count());
            for column_def in &table.def().columns {
                let column = table
                    .column(&column_def.name)
                    .expect("declared column exists");
                columns.insert(
                    (table.name().to_string(), column_def.name.clone()),
                    ColumnStats::collect(column, config),
                );
            }
        }
        DatabaseStats {
            table_rows,
            columns,
        }
    }

    /// Row count of a table (0 if unknown).
    pub fn rows(&self, table: &str) -> usize {
        self.table_rows.get(table).copied().unwrap_or(0)
    }

    /// Statistics of a column, if collected.
    pub fn column(&self, column: &ColumnRef) -> Option<&ColumnStats> {
        self.columns
            .get(&(column.table.clone(), column.column.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};

    #[test]
    fn column_stats_basic_quantities() {
        let mut column = Column::new();
        for v in [1, 1, 1, 2, 2, 3, 4, 5] {
            column.push(v);
        }
        column.push_null();
        let stats = ColumnStats::collect(&column, &StatsConfig::default());
        assert_eq!(stats.row_count, 9);
        assert_eq!(stats.n_distinct, 5);
        assert_eq!(stats.min, Some(1));
        assert_eq!(stats.max, Some(5));
        assert!((stats.null_fraction - 1.0 / 9.0).abs() < 1e-12);
        // MCVs: 1 (3x) and 2 (2x); singletons are excluded.
        assert_eq!(stats.most_common.len(), 2);
        assert_eq!(stats.most_common[0].0, 1);
        assert!((stats.most_common[0].1 - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(stats.non_mcv_distinct(), 3);
        assert!(stats.histogram_fraction() > 0.0);
    }

    #[test]
    fn empty_column_produces_empty_stats() {
        let column = Column::new();
        let stats = ColumnStats::collect(&column, &StatsConfig::default());
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.n_distinct, 0);
        assert_eq!(stats.min, None);
        assert!(stats.most_common.is_empty());
        assert!(stats.histogram_bounds.is_empty());
    }

    #[test]
    fn equi_depth_bounds_are_monotone() {
        let values: Vec<i64> = (0..1000).map(|i| i % 97).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let bounds = equi_depth_bounds(&sorted, 10);
        assert!(bounds.len() >= 2);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), 96);
    }

    #[test]
    fn database_stats_cover_all_columns() {
        let db = generate_imdb(&ImdbConfig::tiny(17));
        let stats = DatabaseStats::collect(&db, &StatsConfig::default());
        assert_eq!(
            stats.rows(tables::TITLE),
            db.table(tables::TITLE).unwrap().row_count()
        );
        let total_columns: usize = db.schema().tables().iter().map(|t| t.columns.len()).sum();
        assert_eq!(stats.columns.len(), total_columns);
        let year = stats
            .column(&ColumnRef::new(tables::TITLE, "production_year"))
            .unwrap();
        assert!(year.null_fraction > 0.0, "production_year has NULLs");
        assert!(year.n_distinct > 10);
        assert!(stats
            .column(&ColumnRef::new(tables::TITLE, "missing"))
            .is_none());
    }

    #[test]
    fn mcv_fraction_never_exceeds_one() {
        let db = generate_imdb(&ImdbConfig::tiny(19));
        let stats = DatabaseStats::collect(&db, &StatsConfig::default());
        for stat in stats.columns.values() {
            assert!(stat.mcv_fraction() <= 1.0 + 1e-9);
            assert!(stat.histogram_fraction() >= 0.0);
        }
    }
}
