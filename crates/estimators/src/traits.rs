//! The estimator interfaces shared by every model in the reproduction.
//!
//! The paper treats "model" loosely — "here 'model' may refer to an ML model or simply to a
//! method" (§4.1.1) — so the trait is deliberately minimal: anything that maps a query to a
//! cardinality estimate, or a query pair to a containment-rate estimate, qualifies.  The
//! `Crd2Cnt` / `Cnt2Crd` transformations in `crn-core` are generic over these traits.

use crn_query::ast::Query;
use std::any::Any;

/// Anything that can estimate the result cardinality of a query.
pub trait CardinalityEstimator {
    /// A short human-readable name used in evaluation reports ("PostgreSQL", "MSCN", ...).
    fn name(&self) -> &str;

    /// Estimates `|query|` over the database the estimator was built/trained on.
    ///
    /// Estimates are real-valued (fractional rows are routine for statistics-based
    /// estimators); they are never negative.
    fn estimate(&self, query: &Query) -> f64;
}

/// Anything that can estimate the containment rate `Q1 ⊂% Q2` of two queries with identical
/// FROM clauses.
pub trait ContainmentEstimator {
    /// A short human-readable name used in evaluation reports ("CRN", "Crd2Cnt(MSCN)", ...).
    fn name(&self) -> &str;

    /// Estimates the containment rate `q1 ⊂% q2` in `[0, 1]`.
    ///
    /// Implementations may return any non-negative value; callers treat values above 1 as
    /// legitimate estimates (the Crd2Cnt transformation can produce them).
    fn estimate_containment(&self, q1: &Query, q2: &Query) -> f64;

    /// Batched containment estimation against one shared query: for every anchor `aᵢ`
    /// returns the pair `(aᵢ ⊂% query, query ⊂% aᵢ)`.
    ///
    /// This is the shape the Cnt2Crd cardinality technique consumes — both containment
    /// directions for every matching pool anchor of an incoming query (paper §5.3,
    /// Figure 8).  The default implementation loops over [`estimate_containment`]; neural
    /// models override it to featurize each query once and run two batched forward passes
    /// instead of `2·N` single-pair ones.
    ///
    /// [`estimate_containment`]: ContainmentEstimator::estimate_containment
    fn predict_batch(&self, anchors: &[&Query], query: &Query) -> Vec<(f64, f64)> {
        anchors
            .iter()
            .map(|anchor| {
                (
                    self.estimate_containment(anchor, query),
                    self.estimate_containment(query, anchor),
                )
            })
            .collect()
    }

    /// Forward-direction-only batched containment: `anchors[i] ⊂% query` for every anchor.
    ///
    /// Used where only one direction is needed (the compound-query identities of §9) —
    /// half the work of [`predict_batch`](ContainmentEstimator::predict_batch) for neural
    /// models, which override this with a single batched head pass.
    fn predict_batch_forward(&self, anchors: &[&Query], query: &Query) -> Vec<f64> {
        anchors
            .iter()
            .map(|anchor| self.estimate_containment(anchor, query))
            .collect()
    }

    /// Precomputes model-specific serving state for a *fixed* anchor set, reusable across
    /// queries (e.g. the CRN model returns the packed featurization of all anchors, so a
    /// queries-pool serving path featurizes each pool entry once per pool instead of once
    /// per incoming query).  Returns `None` when the model has nothing to precompute; the
    /// returned value is opaque and only meaningful to [`predict_batch_prepared`].
    ///
    /// [`predict_batch_prepared`]: ContainmentEstimator::predict_batch_prepared
    fn prepare_anchors(&self, anchors: &[&Query]) -> Option<Box<dyn Any + Send + Sync>> {
        let _ = anchors;
        None
    }

    /// [`predict_batch`](ContainmentEstimator::predict_batch) with state previously built by
    /// [`prepare_anchors`](ContainmentEstimator::prepare_anchors) for the *same* anchor
    /// list.  Implementations must fall back to the unprepared path when `prepared` is not
    /// theirs (wrong type).
    fn predict_batch_prepared(
        &self,
        prepared: &(dyn Any + Send + Sync),
        anchors: &[&Query],
        query: &Query,
    ) -> Vec<(f64, f64)> {
        let _ = prepared;
        self.predict_batch(anchors, query)
    }

    /// [`predict_batch_prepared`](ContainmentEstimator::predict_batch_prepared) for a whole
    /// *group* of concurrent queries sharing the anchor list: returns one rate vector per
    /// query, in query order, each element exactly what the single-query call returns.
    ///
    /// This is the shape the concurrent serving front-end consumes — it groups incoming
    /// queries by FROM clause and evaluates each group against the shared pool snapshot in
    /// one call.  The default loops over the single-query path; neural models override it to
    /// pack the whole group into one ragged batch (one set-encoder pass for all queries,
    /// fused containment-head GEMMs), with per-row results bit-identical to the per-query
    /// calls.
    fn predict_batch_prepared_multi(
        &self,
        prepared: &(dyn Any + Send + Sync),
        anchors: &[&Query],
        queries: &[&Query],
    ) -> Vec<Vec<(f64, f64)>> {
        queries
            .iter()
            .map(|query| self.predict_batch_prepared(prepared, anchors, query))
            .collect()
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }
}

impl<T: ContainmentEstimator + ?Sized> ContainmentEstimator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate_containment(&self, q1: &Query, q2: &Query) -> f64 {
        (**self).estimate_containment(q1, q2)
    }

    fn predict_batch(&self, anchors: &[&Query], query: &Query) -> Vec<(f64, f64)> {
        (**self).predict_batch(anchors, query)
    }

    fn predict_batch_forward(&self, anchors: &[&Query], query: &Query) -> Vec<f64> {
        (**self).predict_batch_forward(anchors, query)
    }

    fn prepare_anchors(&self, anchors: &[&Query]) -> Option<Box<dyn Any + Send + Sync>> {
        (**self).prepare_anchors(anchors)
    }

    fn predict_batch_prepared(
        &self,
        prepared: &(dyn Any + Send + Sync),
        anchors: &[&Query],
        query: &Query,
    ) -> Vec<(f64, f64)> {
        (**self).predict_batch_prepared(prepared, anchors, query)
    }

    fn predict_batch_prepared_multi(
        &self,
        prepared: &(dyn Any + Send + Sync),
        anchors: &[&Query],
        queries: &[&Query],
    ) -> Vec<Vec<(f64, f64)>> {
        (**self).predict_batch_prepared_multi(prepared, anchors, queries)
    }
}

impl<T: ContainmentEstimator + ?Sized> ContainmentEstimator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate_containment(&self, q1: &Query, q2: &Query) -> f64 {
        (**self).estimate_containment(q1, q2)
    }

    fn predict_batch(&self, anchors: &[&Query], query: &Query) -> Vec<(f64, f64)> {
        (**self).predict_batch(anchors, query)
    }

    fn predict_batch_forward(&self, anchors: &[&Query], query: &Query) -> Vec<f64> {
        (**self).predict_batch_forward(anchors, query)
    }

    fn prepare_anchors(&self, anchors: &[&Query]) -> Option<Box<dyn Any + Send + Sync>> {
        (**self).prepare_anchors(anchors)
    }

    fn predict_batch_prepared(
        &self,
        prepared: &(dyn Any + Send + Sync),
        anchors: &[&Query],
        query: &Query,
    ) -> Vec<(f64, f64)> {
        (**self).predict_batch_prepared(prepared, anchors, query)
    }

    fn predict_batch_prepared_multi(
        &self,
        prepared: &(dyn Any + Send + Sync),
        anchors: &[&Query],
        queries: &[&Query],
    ) -> Vec<Vec<(f64, f64)>> {
        (**self).predict_batch_prepared_multi(prepared, anchors, queries)
    }
}

/// An oracle estimator that returns exact cardinalities by executing queries.
///
/// Useful as an upper bound in ablations and for testing the transformations: feeding the
/// oracle through `Crd2Cnt`/`Cnt2Crd` must reproduce exact results.
pub struct TrueCardinality<'a> {
    executor: crn_exec::Executor<'a>,
}

impl<'a> TrueCardinality<'a> {
    /// Creates the oracle over a database snapshot.
    pub fn new(db: &'a crn_db::Database) -> Self {
        TrueCardinality {
            executor: crn_exec::Executor::new(db),
        }
    }
}

impl CardinalityEstimator for TrueCardinality<'_> {
    fn name(&self) -> &str {
        "TrueCardinality"
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.executor.cardinality(query) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_query::Query;

    #[test]
    fn oracle_returns_exact_counts() {
        let db = generate_imdb(&ImdbConfig::tiny(2));
        let oracle = TrueCardinality::new(&db);
        assert_eq!(oracle.name(), "TrueCardinality");
        let scan = Query::scan("title");
        assert_eq!(
            oracle.estimate(&scan),
            db.table("title").unwrap().row_count() as f64
        );
    }
}
