//! `crn-estimators` — the baseline cardinality estimators the paper compares against.
//!
//! * [`traits`] — the [`CardinalityEstimator`] / [`ContainmentEstimator`] interfaces that the
//!   `Crd2Cnt` / `Cnt2Crd` transformations in `crn-core` are generic over;
//! * [`stats`] — `ANALYZE`-style database profiling (MCVs, equi-depth histograms, n_distinct);
//! * [`postgres`] — the PostgreSQL-style estimator built on those statistics (§4.1, §6);
//! * [`mscn`] — the MSCN multi-set convolutional network (Kipf et al.) and its
//!   sample-enhanced variant (§6.6), trained on the same data as CRN.
//!
//! # Example
//!
//! ```
//! use crn_db::imdb::{generate_imdb, ImdbConfig};
//! use crn_estimators::{CardinalityEstimator, PostgresEstimator};
//! use crn_query::Query;
//!
//! let db = generate_imdb(&ImdbConfig::tiny(1));
//! let estimator = PostgresEstimator::analyze(&db);
//! let estimate = estimator.estimate(&Query::scan("title"));
//! assert_eq!(estimate, db.table("title").unwrap().row_count() as f64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mscn;
pub mod postgres;
pub mod stats;
pub mod traits;

pub use mscn::{MaterializedSamples, MscnFeaturizer, MscnModel};
pub use postgres::PostgresEstimator;
pub use stats::{ColumnStats, DatabaseStats, StatsConfig};
pub use traits::{CardinalityEstimator, ContainmentEstimator, TrueCardinality};
