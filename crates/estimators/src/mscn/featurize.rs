//! MSCN featurization: queries as three sets of fixed-width vectors.
//!
//! Following Kipf et al. (the MSCN baseline the paper compares against, §4.1), a query is
//! represented by three separate sets, each with its own vector format:
//!
//! * **table set** — one vector per FROM table: a one-hot table id, optionally followed by the
//!   bitmap of materialized sample rows satisfying the query's predicates on that table (the
//!   "MSCN with 1000 samples" variant, §6.6);
//! * **join set** — one vector per join clause: a one-hot over the schema's possible join
//!   edges;
//! * **predicate set** — one vector per column predicate: a one-hot column id, a one-hot
//!   operator id and the literal normalized into `[0, 1]` by the column's min/max.
//!
//! Unlike the CRN featurization (which deliberately uses one shared format for all three
//! sets, paper §3.2.1), the three formats here have different widths — that difference is one
//! of the things the `ablation_shared_format` experiment quantifies.

use crn_db::database::Database;
use crn_db::schema::ColumnRef;
use crn_db::value::CompareOp;
use crn_query::ast::{JoinClause, Query};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crn_exec::TableSamples;
use crn_nn::Matrix;

/// Materialized sample rows, stored column-wise per table so that the featurizer does not need
/// to keep the database alive.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaterializedSamples {
    /// Number of sample rows per table (tables smaller than this are fully included).
    pub sample_size: usize,
    /// `table -> column -> sampled values` (one entry per sampled row; `None` = NULL).
    values: HashMap<String, HashMap<String, Vec<Option<i64>>>>,
}

impl MaterializedSamples {
    /// Materializes `sample_size` random rows of every table.
    pub fn new(db: &Database, sample_size: usize, seed: u64) -> Self {
        let samples = TableSamples::new(db, sample_size, seed);
        let mut values: HashMap<String, HashMap<String, Vec<Option<i64>>>> = HashMap::new();
        for table in db.tables() {
            let rows = samples.rows(table.name()).unwrap_or(&[]);
            let mut per_column: HashMap<String, Vec<Option<i64>>> = HashMap::new();
            for column_def in &table.def().columns {
                let column = table.column(&column_def.name).expect("column exists");
                let sampled = rows
                    .iter()
                    .map(|&row| column.get_int(row as usize))
                    .collect();
                per_column.insert(column_def.name.clone(), sampled);
            }
            values.insert(table.name().to_string(), per_column);
        }
        MaterializedSamples {
            sample_size,
            values,
        }
    }

    /// Number of sample rows materialized for a table.
    pub fn rows_for(&self, table: &str) -> usize {
        self.values
            .get(table)
            .and_then(|cols| cols.values().next().map(|v| v.len()))
            .unwrap_or(0)
    }

    /// Evaluates the query's predicates on the samples of `table`, one bit per sample row.
    pub fn bitmap(&self, query: &Query, table: &str) -> Vec<bool> {
        let Some(columns) = self.values.get(table) else {
            return Vec::new();
        };
        let num_rows = columns.values().next().map_or(0, |v| v.len());
        let relevant: Vec<_> = query
            .predicates()
            .iter()
            .filter(|p| p.column.table == table)
            .collect();
        (0..num_rows)
            .map(|row| {
                relevant.iter().all(|p| {
                    columns
                        .get(&p.column.column)
                        .and_then(|vals| vals[row])
                        .map(|v| p.op.eval(v, p.value))
                        .unwrap_or(false)
                })
            })
            .collect()
    }
}

/// The MSCN featurizer: schema-derived dimensions plus column value ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MscnFeaturizer {
    num_tables: usize,
    num_columns: usize,
    table_index: HashMap<String, usize>,
    column_index: HashMap<(String, String), usize>,
    column_ranges: HashMap<(String, String), (i64, i64)>,
    /// Canonicalized possible join edges of the schema, in a stable order.
    join_edges: Vec<JoinClause>,
    /// Optional materialized samples (present only for the sample-enhanced variant).
    samples: Option<MaterializedSamples>,
    /// Width of the per-table sample bitmap (0 when samples are disabled).
    sample_bits: usize,
}

impl MscnFeaturizer {
    /// Builds a featurizer for the plain MSCN model.
    pub fn new(db: &Database) -> Self {
        Self::build(db, None)
    }

    /// Builds a featurizer for the sample-enhanced MSCN model (`MSCN with N samples`).
    pub fn with_samples(db: &Database, sample_size: usize, seed: u64) -> Self {
        Self::build(db, Some(MaterializedSamples::new(db, sample_size, seed)))
    }

    fn build(db: &Database, samples: Option<MaterializedSamples>) -> Self {
        let schema = db.schema();
        let mut table_index = HashMap::new();
        let mut column_index = HashMap::new();
        let mut column_ranges = HashMap::new();
        for (t_idx, table) in schema.tables().iter().enumerate() {
            table_index.insert(table.name.clone(), t_idx);
            for column in &table.columns {
                let column_ref = ColumnRef::new(&table.name, &column.name);
                let global = schema
                    .global_column_index(&column_ref)
                    .expect("declared column");
                column_index.insert((table.name.clone(), column.name.clone()), global);
                if let Some(range) = db.column_min_max(&column_ref) {
                    column_ranges.insert((table.name.clone(), column.name.clone()), range);
                }
            }
        }
        let join_edges = schema
            .join_edges()
            .into_iter()
            .map(|(a, b)| JoinClause::new(a, b))
            .collect();
        let sample_bits = samples.as_ref().map_or(0, |s| s.sample_size);
        MscnFeaturizer {
            num_tables: schema.num_tables(),
            num_columns: schema.num_columns(),
            table_index,
            column_index,
            column_ranges,
            join_edges,
            samples,
            sample_bits,
        }
    }

    /// Width of a table-set vector.
    pub fn table_dim(&self) -> usize {
        self.num_tables + self.sample_bits
    }

    /// Width of a join-set vector.
    pub fn join_dim(&self) -> usize {
        self.join_edges.len().max(1)
    }

    /// Width of a predicate-set vector.
    pub fn predicate_dim(&self) -> usize {
        self.num_columns + CompareOp::ALL.len() + 1
    }

    /// Whether this featurizer attaches sample bitmaps.
    pub fn uses_samples(&self) -> bool {
        self.samples.is_some()
    }

    /// Featurizes a query into its three set matrices `(tables, joins, predicates)`.
    ///
    /// Empty sets produce a matrix with zero rows; the model's average pooling treats that as
    /// an all-zero aggregate (the same convention MSCN's zero-padding achieves).
    pub fn featurize(&self, query: &Query) -> MscnFeatures {
        // Table set.
        let mut table_rows = Vec::new();
        for table in query.tables() {
            let mut row = vec![0.0f32; self.table_dim()];
            if let Some(&idx) = self.table_index.get(table) {
                row[idx] = 1.0;
            }
            if let Some(samples) = &self.samples {
                let bitmap = samples.bitmap(query, table);
                for (i, bit) in bitmap.iter().enumerate().take(self.sample_bits) {
                    row[self.num_tables + i] = if *bit { 1.0 } else { 0.0 };
                }
            }
            table_rows.push(row);
        }

        // Join set.
        let mut join_rows = Vec::new();
        for join in query.joins() {
            let mut row = vec![0.0f32; self.join_dim()];
            if let Some(idx) = self.join_edges.iter().position(|edge| edge == join) {
                row[idx] = 1.0;
            }
            join_rows.push(row);
        }

        // Predicate set.
        let mut predicate_rows = Vec::new();
        for predicate in query.predicates() {
            let mut row = vec![0.0f32; self.predicate_dim()];
            if let Some(&idx) = self.column_index.get(&(
                predicate.column.table.clone(),
                predicate.column.column.clone(),
            )) {
                row[idx] = 1.0;
            }
            row[self.num_columns + predicate.op.index()] = 1.0;
            row[self.num_columns + CompareOp::ALL.len()] =
                self.normalize_literal(&predicate.column, predicate.value);
            predicate_rows.push(row);
        }

        MscnFeatures {
            tables: rows_to_matrix(table_rows, self.table_dim()),
            joins: rows_to_matrix(join_rows, self.join_dim()),
            predicates: rows_to_matrix(predicate_rows, self.predicate_dim()),
        }
    }

    /// Normalizes a literal into `[0, 1]` using the column's min/max (paper §3.2.1).
    pub fn normalize_literal(&self, column: &ColumnRef, value: i64) -> f32 {
        match self
            .column_ranges
            .get(&(column.table.clone(), column.column.clone()))
        {
            Some(&(lo, hi)) if hi > lo => {
                (((value - lo) as f64 / (hi - lo) as f64).clamp(0.0, 1.0)) as f32
            }
            Some(_) => 0.5,
            None => 0.5,
        }
    }
}

/// The featurized query: one matrix per set, rows are set elements.
#[derive(Debug, Clone, PartialEq)]
pub struct MscnFeatures {
    /// Table-set vectors, `(|T|, table_dim)`.
    pub tables: Matrix,
    /// Join-set vectors, `(|J|, join_dim)`.
    pub joins: Matrix,
    /// Predicate-set vectors, `(|P|, predicate_dim)`.
    pub predicates: Matrix,
}

fn rows_to_matrix(rows: Vec<Vec<f32>>, width: usize) -> Matrix {
    let height = rows.len();
    let mut data = Vec::with_capacity(height * width);
    for row in rows {
        debug_assert_eq!(row.len(), width);
        data.extend(row);
    }
    Matrix::from_vec(height, width, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_db::value::CompareOp;
    use crn_query::ast::{JoinClause, Predicate};

    fn db() -> Database {
        generate_imdb(&ImdbConfig::tiny(5))
    }

    fn join_query() -> Query {
        Query::new(
            [
                tables::TITLE.to_string(),
                tables::MOVIE_COMPANIES.to_string(),
            ],
            [JoinClause::new(
                ColumnRef::new(tables::TITLE, "id"),
                ColumnRef::new(tables::MOVIE_COMPANIES, "movie_id"),
            )],
            [Predicate::new(
                ColumnRef::new(tables::TITLE, "production_year"),
                CompareOp::Gt,
                2000,
            )],
        )
    }

    #[test]
    fn dimensions_follow_schema() {
        let db = db();
        let feat = MscnFeaturizer::new(&db);
        assert_eq!(feat.table_dim(), 6);
        assert_eq!(feat.join_dim(), 5);
        // 26 columns + 6 operators + 1 literal slot.
        assert_eq!(feat.predicate_dim(), db.schema().num_columns() + 7);
        assert!(!feat.uses_samples());
    }

    #[test]
    fn featurization_shapes_match_query_sets() {
        let db = db();
        let feat = MscnFeaturizer::new(&db);
        let features = feat.featurize(&join_query());
        assert_eq!(features.tables.rows(), 2);
        assert_eq!(features.joins.rows(), 1);
        assert_eq!(features.predicates.rows(), 1);
        // Exactly one non-zero entry per table one-hot.
        for r in 0..features.tables.rows() {
            let non_zero = features.tables.row(r).iter().filter(|&&v| v != 0.0).count();
            assert_eq!(non_zero, 1);
        }
        // Join one-hot has exactly one bit set.
        assert_eq!(
            features.joins.row(0).iter().filter(|&&v| v != 0.0).count(),
            1
        );
        // Predicate vector: column one-hot + op one-hot + normalized literal.
        let row = features.predicates.row(0);
        let ones = row.iter().filter(|&&v| v == 1.0).count();
        assert!(ones >= 2, "column and operator one-hots set");
        let literal = row[feat.predicate_dim() - 1];
        assert!((0.0..=1.0).contains(&literal));
    }

    #[test]
    fn scan_without_predicates_produces_empty_sets() {
        let db = db();
        let feat = MscnFeaturizer::new(&db);
        let features = feat.featurize(&Query::scan(tables::TITLE));
        assert_eq!(features.tables.rows(), 1);
        assert_eq!(features.joins.rows(), 0);
        assert_eq!(features.predicates.rows(), 0);
    }

    #[test]
    fn literal_normalization_uses_column_range() {
        let db = db();
        let feat = MscnFeaturizer::new(&db);
        let column = ColumnRef::new(tables::TITLE, "production_year");
        let (lo, hi) = db.column_min_max(&column).unwrap();
        assert_eq!(feat.normalize_literal(&column, lo), 0.0);
        assert_eq!(feat.normalize_literal(&column, hi), 1.0);
        let mid = feat.normalize_literal(&column, (lo + hi) / 2);
        assert!(mid > 0.3 && mid < 0.7);
        // Unknown columns fall back to the midpoint.
        assert_eq!(feat.normalize_literal(&ColumnRef::new("x", "y"), 3), 0.5);
    }

    #[test]
    fn sample_bitmaps_extend_table_vectors() {
        let db = db();
        let feat = MscnFeaturizer::with_samples(&db, 32, 3);
        assert!(feat.uses_samples());
        assert_eq!(feat.table_dim(), 6 + 32);
        let features = feat.featurize(&join_query());
        assert_eq!(features.tables.cols(), 38);
        // The title row's bitmap should have some zero and some one entries for a selective
        // predicate (production_year > 2000 filters part of the sample).
        let title_row_index = 1; // BTreeSet order: movie_companies < title
        let bits: Vec<f32> = features.tables.row(title_row_index)[6..].to_vec();
        assert!(bits.contains(&1.0));
        assert!(bits.contains(&0.0));
    }

    #[test]
    fn materialized_samples_bitmap_semantics() {
        let db = db();
        let samples = MaterializedSamples::new(&db, 16, 9);
        assert_eq!(samples.rows_for(tables::TITLE), 16);
        assert_eq!(samples.rows_for("unknown"), 0);
        // A predicate-free query matches every sample row.
        let bitmap = samples.bitmap(&Query::scan(tables::TITLE), tables::TITLE);
        assert!(bitmap.iter().all(|&b| b));
        // An impossible predicate matches none.
        let impossible = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                ColumnRef::new(tables::TITLE, "kind_id"),
                CompareOp::Gt,
                1000,
            )],
        );
        assert!(samples
            .bitmap(&impossible, tables::TITLE)
            .iter()
            .all(|&b| !b));
    }
}
