//! The MSCN learned cardinality estimator (baseline), plus its sample-enhanced variant.

pub mod featurize;
pub mod model;

pub use featurize::{MaterializedSamples, MscnFeatures, MscnFeaturizer};
pub use model::MscnModel;
