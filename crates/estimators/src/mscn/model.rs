//! The MSCN model: a multi-set convolutional network for cardinality estimation.
//!
//! Architecture (after Kipf et al., the baseline of paper §4.1/§6): one small MLP per set
//! (tables, joins, predicates) applied to every set element, average pooling per set, the
//! three pooled vectors concatenated and fed through a two-layer output MLP whose sigmoid
//! output is interpreted as a normalized log-cardinality.  Training minimizes the q-error of
//! the un-normalized cardinality, with Adam, mini-batches and early stopping — the same
//! training regime as the CRN model so that the comparison is fair (§4.1.2: "we train the
//! MSCN model with the same data that was used to train the CRN model").

use crate::mscn::featurize::{MscnFeatures, MscnFeaturizer};
use crate::traits::CardinalityEstimator;
use crn_db::database::Database;
use crn_exec::CardinalitySample;
use crn_nn::layers::{
    mean_pool, mean_pool_backward, relu, relu_backward, sigmoid, sigmoid_backward, Dense,
};
use crn_nn::loss::{loss_and_grad, mean_q_error};
use crn_nn::matrix::Matrix;
use crn_nn::optim::Adam;
use crn_nn::train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, TrainConfig,
    TrainingHistory,
};
use crn_query::ast::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Cardinalities below this floor are clamped before the q-error is formed.
const CARD_FLOOR: f32 = 1.0;

/// A per-element two-layer MLP followed by average pooling — one per query set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SetModule {
    l1: Dense,
    l2: Dense,
}

/// Forward-pass cache of a set module (needed for backprop).
struct SetCache {
    input: Matrix,
    z1: Matrix,
    a1: Matrix,
    z2: Matrix,
    a2: Matrix,
    pooled: Matrix,
}

impl SetModule {
    fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        SetModule {
            l1: Dense::new(input_dim, hidden, seed),
            l2: Dense::new(hidden, hidden, seed.wrapping_add(1)),
        }
    }

    fn hidden(&self) -> usize {
        self.l2.output_dim()
    }

    fn forward(&self, input: &Matrix) -> SetCache {
        if input.rows() == 0 {
            // Empty set: the pooled representation is all zeros.
            return SetCache {
                input: input.clone(),
                z1: Matrix::zeros(0, self.l1.output_dim()),
                a1: Matrix::zeros(0, self.l1.output_dim()),
                z2: Matrix::zeros(0, self.hidden()),
                a2: Matrix::zeros(0, self.hidden()),
                pooled: Matrix::zeros(1, self.hidden()),
            };
        }
        let z1 = self.l1.forward(input);
        let a1 = relu(&z1);
        let z2 = self.l2.forward(&a1);
        let a2 = relu(&z2);
        let pooled = mean_pool(&a2);
        SetCache {
            input: input.clone(),
            z1,
            a1,
            z2,
            a2,
            pooled,
        }
    }

    fn backward(&mut self, cache: &SetCache, grad_pooled: &Matrix) {
        if cache.input.rows() == 0 {
            return;
        }
        let grad_a2 = mean_pool_backward(cache.a2.rows(), grad_pooled);
        let grad_z2 = relu_backward(&cache.z2, &grad_a2);
        let grad_a1 = self.l2.backward(&cache.a1, &grad_z2);
        let grad_z1 = relu_backward(&cache.z1, &grad_a1);
        let _ = self.l1.backward(&cache.input, &grad_z1);
    }

    fn zero_grad(&mut self) {
        self.l1.zero_grad();
        self.l2.zero_grad();
    }

    fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params()
    }
}

/// The trained MSCN cardinality estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MscnModel {
    name: String,
    featurizer: MscnFeaturizer,
    table_module: SetModule,
    join_module: SetModule,
    predicate_module: SetModule,
    out1: Dense,
    out2: Dense,
    /// `ln(max_cardinality + 1)` of the training set, used to (un)normalize predictions.
    log_max_cardinality: f32,
    /// Training configuration used to fit the model.
    config: TrainConfig,
}

/// Forward-pass cache for one query.
struct ForwardCache {
    tables: SetCache,
    joins: SetCache,
    predicates: SetCache,
    concat: Matrix,
    z_out1: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

impl MscnModel {
    /// Creates an untrained MSCN model for the given database.
    pub fn new(db: &Database, config: TrainConfig) -> Self {
        Self::with_featurizer(MscnFeaturizer::new(db), config, "MSCN")
    }

    /// Creates the sample-enhanced variant ("MSCN with N samples", §6.6).
    pub fn with_samples(db: &Database, sample_size: usize, config: TrainConfig) -> Self {
        let featurizer = MscnFeaturizer::with_samples(db, sample_size, config.seed);
        let name = format!("MSCN{sample_size}");
        Self::with_featurizer(featurizer, config, &name)
    }

    fn with_featurizer(featurizer: MscnFeaturizer, config: TrainConfig, name: &str) -> Self {
        let hidden = config.hidden_size;
        let seed = config.seed;
        MscnModel {
            name: name.to_string(),
            table_module: SetModule::new(featurizer.table_dim(), hidden, seed.wrapping_add(10)),
            join_module: SetModule::new(featurizer.join_dim(), hidden, seed.wrapping_add(20)),
            predicate_module: SetModule::new(
                featurizer.predicate_dim(),
                hidden,
                seed.wrapping_add(30),
            ),
            out1: Dense::new(3 * hidden, hidden, seed.wrapping_add(40)),
            out2: Dense::new(hidden, 1, seed.wrapping_add(50)),
            featurizer,
            log_max_cardinality: (1e6f32 + 1.0).ln(),
            config,
        }
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.table_module.num_params()
            + self.join_module.num_params()
            + self.predicate_module.num_params()
            + self.out1.num_params()
            + self.out2.num_params()
    }

    /// The training configuration the model was built with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    fn forward(&self, features: &MscnFeatures) -> ForwardCache {
        let tables = self.table_module.forward(&features.tables);
        let joins = self.join_module.forward(&features.joins);
        let predicates = self.predicate_module.forward(&features.predicates);
        let hidden = self.table_module.hidden();
        let mut concat = Matrix::zeros(1, 3 * hidden);
        concat.row_mut(0)[..hidden].copy_from_slice(tables.pooled.row(0));
        concat.row_mut(0)[hidden..2 * hidden].copy_from_slice(joins.pooled.row(0));
        concat.row_mut(0)[2 * hidden..].copy_from_slice(predicates.pooled.row(0));
        let z_out1 = self.out1.forward(&concat);
        let a_out1 = relu(&z_out1);
        let z_out2 = self.out2.forward(&a_out1);
        let sigmoid_out = sigmoid(&z_out2);
        ForwardCache {
            tables,
            joins,
            predicates,
            concat,
            z_out1,
            a_out1,
            sigmoid_out,
        }
    }

    /// Backpropagates from `d loss / d sigmoid_out` through the whole network.
    fn backward(&mut self, cache: &ForwardCache, grad_sigmoid_out: f32) {
        let grad_out = Matrix::from_vec(1, 1, vec![grad_sigmoid_out]);
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, &grad_out);
        let grad_a_out1 = self.out2.backward(&cache.a_out1, &grad_z_out2);
        let grad_z_out1 = relu_backward(&cache.z_out1, &grad_a_out1);
        let grad_concat = self.out1.backward(&cache.concat, &grad_z_out1);

        let hidden = self.table_module.hidden();
        let split = |lo: usize, hi: usize| {
            Matrix::from_vec(1, hidden, grad_concat.row(0)[lo..hi].to_vec())
        };
        let grad_tables = split(0, hidden);
        let grad_joins = split(hidden, 2 * hidden);
        let grad_predicates = split(2 * hidden, 3 * hidden);
        self.table_module.backward(&cache.tables, &grad_tables);
        self.join_module.backward(&cache.joins, &grad_joins);
        self.predicate_module
            .backward(&cache.predicates, &grad_predicates);
    }

    fn zero_grad(&mut self) {
        self.table_module.zero_grad();
        self.join_module.zero_grad();
        self.predicate_module.zero_grad();
        self.out1.zero_grad();
        self.out2.zero_grad();
    }

    fn adam_step(&mut self, adam: &mut Adam) {
        // Destructure so the borrow checker sees disjoint mutable borrows per field.
        let MscnModel {
            table_module,
            join_module,
            predicate_module,
            out1,
            out2,
            ..
        } = self;
        let mut all = Vec::new();
        all.extend(table_module.l1.params_mut());
        all.extend(table_module.l2.params_mut());
        all.extend(join_module.l1.params_mut());
        all.extend(join_module.l2.params_mut());
        all.extend(predicate_module.l1.params_mut());
        all.extend(predicate_module.l2.params_mut());
        all.extend(out1.params_mut());
        all.extend(out2.params_mut());
        adam.step(all);
    }

    /// Converts the sigmoid output into a cardinality.
    fn unnormalize(&self, sigmoid_out: f32) -> f32 {
        (sigmoid_out * self.log_max_cardinality).exp() - 1.0
    }

    /// Derivative of [`MscnModel::unnormalize`] with respect to the sigmoid output.
    fn unnormalize_grad(&self, sigmoid_out: f32) -> f32 {
        self.log_max_cardinality * (sigmoid_out * self.log_max_cardinality).exp()
    }

    /// Trains the model on labelled cardinality samples; returns the per-epoch history.
    pub fn fit(&mut self, samples: &[CardinalitySample]) -> TrainingHistory {
        let features: Vec<MscnFeatures> = samples
            .iter()
            .map(|s| self.featurizer.featurize(&s.query))
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| s.cardinality as f32).collect();
        let max_card = targets.iter().cloned().fold(1.0f32, f32::max);
        self.log_max_cardinality = (max_card + 1.0).ln();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<MscnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                self.zero_grad();
                for &index in &batch {
                    let cache = self.forward(&features[index]);
                    let sigmoid_out = cache.sigmoid_out.get(0, 0);
                    let prediction = self.unnormalize(sigmoid_out);
                    let loss = loss_and_grad(
                        self.config.loss,
                        prediction.max(CARD_FLOOR),
                        targets[index].max(CARD_FLOOR),
                        CARD_FLOOR,
                    );
                    epoch_loss += loss.loss as f64;
                    epoch_samples += 1;
                    // Chain rule through the un-normalization, averaged over the batch.
                    let grad_sigmoid =
                        loss.grad * self.unnormalize_grad(sigmoid_out) / batch.len() as f32;
                    self.backward(&cache, grad_sigmoid);
                }
                self.adam_step(&mut adam);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                let pairs: Vec<(f64, f64)> = valid_idx
                    .iter()
                    .map(|&i| {
                        let prediction = self.predict_features(&features[i]) as f64;
                        (prediction, targets[i] as f64)
                    })
                    .collect();
                mean_q_error(&pairs, CARD_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        // Restore the parameters of the best validation epoch (early stopping, §3.3).
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    fn predict_features(&self, features: &MscnFeatures) -> f32 {
        let cache = self.forward(features);
        self.unnormalize(cache.sigmoid_out.get(0, 0)).max(0.0)
    }

    /// Predicts the cardinality of a query.
    pub fn predict(&self, query: &Query) -> f64 {
        let features = self.featurizer.featurize(query);
        self.predict_features(&features) as f64
    }
}

impl CardinalityEstimator for MscnModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.predict(query).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_exec::label_cardinalities;
    use crn_nn::q_error;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn training_data(db: &Database, n: usize, seed: u64) -> Vec<CardinalitySample> {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let queries = gen.generate_queries(n);
        label_cardinalities(db, &queries, 4)
    }

    #[test]
    fn untrained_model_produces_finite_positive_estimates() {
        let db = generate_imdb(&ImdbConfig::tiny(1));
        let model = MscnModel::new(&db, TrainConfig::fast_test());
        let q = Query::scan("title");
        let estimate = model.estimate(&q);
        assert!(estimate.is_finite() && estimate >= 1.0);
        assert!(model.num_params() > 0);
        assert_eq!(model.name(), "MSCN");
    }

    #[test]
    fn training_reduces_validation_error() {
        let db = generate_imdb(&ImdbConfig::tiny(2));
        let samples = training_data(&db, 120, 2);
        let mut model = MscnModel::new(&db, TrainConfig::fast_test());
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        let first = history.epochs.first().unwrap().validation_q_error;
        let best = history.best_validation;
        assert!(
            best <= first,
            "validation error should not get worse than the first epoch: {first} -> {best}"
        );
    }

    #[test]
    fn trained_model_beats_wild_guessing_on_single_tables() {
        let db = generate_imdb(&ImdbConfig::tiny(3));
        let samples = training_data(&db, 200, 3);
        let mut config = TrainConfig::fast_test();
        config.epochs = 30;
        let mut model = MscnModel::new(&db, config);
        model.fit(&samples);
        // Evaluate on the training distribution (just checking learning happens at all).
        let mut errors = Vec::new();
        for s in samples.iter().take(50) {
            errors.push(q_error(model.estimate(&s.query), s.cardinality as f64, 1.0));
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errors[errors.len() / 2];
        assert!(
            median < 40.0,
            "median training q-error should be moderate after training, got {median}"
        );
    }

    #[test]
    fn sample_enhanced_variant_has_wider_table_vectors_and_trains() {
        let db = generate_imdb(&ImdbConfig::tiny(4));
        let samples = training_data(&db, 60, 4);
        let mut model = MscnModel::with_samples(&db, 16, TrainConfig::fast_test());
        assert_eq!(model.name(), "MSCN16");
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        let estimate = model.estimate(&samples[0].query);
        assert!(estimate.is_finite() && estimate >= 1.0);
    }

    #[test]
    fn prediction_is_deterministic_after_training() {
        let db = generate_imdb(&ImdbConfig::tiny(5));
        let samples = training_data(&db, 60, 5);
        let mut model = MscnModel::new(&db, TrainConfig::fast_test());
        model.fit(&samples);
        let q = &samples[0].query;
        assert_eq!(model.estimate(q), model.estimate(q));
    }
}
