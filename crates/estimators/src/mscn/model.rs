//! The MSCN model: a multi-set convolutional network for cardinality estimation.
//!
//! Architecture (after Kipf et al., the baseline of paper §4.1/§6): one small MLP per set
//! (tables, joins, predicates) applied to every set element, average pooling per set, the
//! three pooled vectors concatenated and fed through a two-layer output MLP whose sigmoid
//! output is interpreted as a normalized log-cardinality.  Training minimizes the q-error of
//! the un-normalized cardinality, with Adam, mini-batches and early stopping — the same
//! training regime as the CRN model so that the comparison is fair (§4.1.2: "we train the
//! MSCN model with the same data that was used to train the CRN model").

use crate::mscn::featurize::{MscnFeatures, MscnFeaturizer};
use crate::traits::CardinalityEstimator;
use crn_db::database::Database;
use crn_exec::CardinalitySample;
use crn_nn::batch::{
    concat_columns, segment_pool, segment_pool_backward, shard_ranges, split_columns, RaggedBatch,
    SegmentPool, SparseRows,
};
use crn_nn::layers::{
    relu, relu_backward, relu_backward_in_place, relu_in_place, sigmoid, sigmoid_backward,
    sigmoid_in_place, Dense,
};
use crn_nn::loss::{loss_and_grad, mean_q_error};
use crn_nn::matrix::Matrix;
use crn_nn::optim::Adam;
use crn_nn::parallel::{reduce_gradients, GradientSet, ThreadPoolConfig, WorkerPool};
use crn_nn::train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, TrainConfig,
    TrainingHistory,
};
use crn_query::ast::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Cardinalities below this floor are clamped before the q-error is formed.
const CARD_FLOOR: f32 = 1.0;

/// The fixed [`GradientSet`] layout of the MSCN parameters: four tensors per set module
/// (`l1.w, l1.b, l2.w, l2.b`) for tables, joins and predicates, then the output MLP — the
/// same order [`MscnModel::params_vec_mut`] yields, so the optimizer pairs parameters and
/// merged gradients positionally.
mod grad_index {
    /// Tensors per set module.
    pub const PER_MODULE: usize = 4;
    /// Offset of the join module's tensors (the table module sits at 0, the predicate
    /// module at `2 * PER_MODULE`).
    pub const JOINS: usize = PER_MODULE;
    pub const OUT1_W: usize = 3 * PER_MODULE;
    pub const OUT1_B: usize = OUT1_W + 1;
    pub const OUT2_W: usize = OUT1_W + 2;
    pub const OUT2_B: usize = OUT1_W + 3;
    /// Total tensor count.
    pub const TOTAL: usize = OUT1_W + 4;
}

/// A per-element two-layer MLP followed by average pooling — one per query set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SetModule {
    l1: Dense,
    l2: Dense,
}

/// Forward-pass cache of a set module over a ragged mini-batch (a single query is `B = 1`).
///
/// The element-level tensors are flattened over all queries of the batch and segmented by the
/// offsets of `input`; `pooled` has one row per query.  Empty sets (queries without joins or
/// predicates) are empty segments and pool to a zero row, exactly as the previous per-query
/// special case did.  Only post-activation tensors are kept (ReLU runs in place; its output
/// doubles as the backward mask).
struct BatchSetCache {
    input: RaggedBatch,
    a1: Matrix,
    a2: Matrix,
    pooled: Matrix,
}

/// Forward-pass cache of a set module for the seed-faithful per-sample reference path.
struct SetCache {
    input: Matrix,
    z1: Matrix,
    a1: Matrix,
    z2: Matrix,
    a2: Matrix,
    pooled: Matrix,
}

impl SetModule {
    fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        SetModule {
            l1: Dense::new(input_dim, hidden, seed),
            l2: Dense::new(hidden, hidden, seed.wrapping_add(1)),
        }
    }

    /// Seed-faithful per-query forward pass (the pre-batching implementation, kept as the
    /// baseline for the parity tests and benchmarks).
    fn forward_reference(&self, input: &Matrix) -> SetCache {
        if input.rows() == 0 {
            // Empty set: the pooled representation is all zeros.
            return SetCache {
                input: input.clone(),
                z1: Matrix::zeros(0, self.l1.output_dim()),
                a1: Matrix::zeros(0, self.l1.output_dim()),
                z2: Matrix::zeros(0, self.hidden()),
                a2: Matrix::zeros(0, self.hidden()),
                pooled: Matrix::zeros(1, self.hidden()),
            };
        }
        let z1 = self.l1.forward_sparse(input);
        let a1 = relu(&z1);
        let z2 = self.l2.forward_sparse(&a1);
        let a2 = relu(&z2);
        let pooled = crn_nn::layers::mean_pool(&a2);
        SetCache {
            input: input.clone(),
            z1,
            a1,
            z2,
            a2,
            pooled,
        }
    }

    /// Seed-faithful per-query backward pass (see [`SetModule::forward_reference`]).
    fn backward_reference(&mut self, cache: &SetCache, grad_pooled: &Matrix) {
        if cache.input.rows() == 0 {
            return;
        }
        let grad_a2 = crn_nn::layers::mean_pool_backward(cache.a2.rows(), grad_pooled);
        let grad_z2 = relu_backward(&cache.z2, &grad_a2);
        let grad_a1 = self.l2.backward(&cache.a1, &grad_z2);
        let grad_z1 = relu_backward(&cache.z1, &grad_a1);
        let _ = self.l1.backward(&cache.input, &grad_z1);
    }

    fn hidden(&self) -> usize {
        self.l2.output_dim()
    }

    fn forward_batch(&self, input: RaggedBatch) -> BatchSetCache {
        // One-hot set vectors feed the first layer through the batch's CSR non-zeros; the
        // second layer's post-ReLU input is dense enough that the blocked SIMD kernel wins.
        let mut a1 = self.l1.forward_ragged(&input);
        relu_in_place(&mut a1);
        let mut a2 = self.l2.forward(&a1);
        relu_in_place(&mut a2);
        let pooled = segment_pool(&a2, input.offsets(), SegmentPool::Mean);
        BatchSetCache {
            input,
            a1,
            a2,
            pooled,
        }
    }

    /// Inference-only batched forward: the pooled `B×H` representations, no cache.
    fn forward_batch_inference(&self, input: &RaggedBatch) -> Matrix {
        let mut a1 = self.l1.forward_ragged(input);
        relu_in_place(&mut a1);
        let mut a2 = self.l2.forward(&a1);
        relu_in_place(&mut a2);
        segment_pool(&a2, input.offsets(), SegmentPool::Mean)
    }

    /// Batched backward pass of the set module, into the module's four gradient buffers
    /// (`[l1.w, l1.b, l2.w, l2.b]`), leaving the module untouched — the per-shard form of
    /// the data-parallel engine.
    fn backward_batch_into(
        &self,
        cache: &BatchSetCache,
        grad_pooled: &Matrix,
        grads: &mut [Matrix],
    ) {
        assert_eq!(grads.len(), grad_index::PER_MODULE);
        if cache.input.num_rows() == 0 {
            // Every segment in the batch is empty — nothing flowed forward.
            return;
        }
        let mut grad_z2 =
            segment_pool_backward(cache.input.offsets(), grad_pooled, SegmentPool::Mean);
        relu_backward_in_place(&cache.a2, &mut grad_z2);
        let (grad_w2, grad_b2, mut grad_z1) = self.l2.backward_dense_calc(&cache.a1, &grad_z2);
        grads[2].add_assign(&grad_w2);
        grads[3].add_assign(&grad_b2);
        relu_backward_in_place(&cache.a1, &mut grad_z1);
        // `l1` is an input layer over one-hot rows: CSR weight gradients, no dL/dx.
        let (grad_w1, rest) = grads.split_at_mut(1);
        Dense::accumulate_ragged_weights_only(
            &cache.input,
            &grad_z1,
            &mut grad_w1[0],
            &mut rest[0],
        );
    }

    /// The `(rows, cols)` shapes of the module's parameters in gradient order.
    fn grad_shapes(&self) -> Vec<(usize, usize)> {
        let mut shapes = Vec::with_capacity(grad_index::PER_MODULE);
        shapes.extend(self.l1.grad_shapes());
        shapes.extend(self.l2.grad_shapes());
        shapes
    }

    fn zero_grad(&mut self) {
        self.l1.zero_grad();
        self.l2.zero_grad();
    }

    fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params()
    }
}

/// The trained MSCN cardinality estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MscnModel {
    name: String,
    featurizer: MscnFeaturizer,
    table_module: SetModule,
    join_module: SetModule,
    predicate_module: SetModule,
    out1: Dense,
    out2: Dense,
    /// `ln(max_cardinality + 1)` of the training set, used to (un)normalize predictions.
    log_max_cardinality: f32,
    /// Training configuration used to fit the model.
    config: TrainConfig,
}

/// Forward-pass cache for a ragged mini-batch of queries.
struct BatchForwardCache {
    tables: BatchSetCache,
    joins: BatchSetCache,
    predicates: BatchSetCache,
    concat: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

/// Per-sample CSR features, converted once before the epoch loop.
struct SparseMscnFeatures {
    tables: SparseRows,
    joins: SparseRows,
    predicates: SparseRows,
}

/// Forward-pass cache for one query on the seed-faithful reference path.
struct ReferenceForwardCache {
    tables: SetCache,
    joins: SetCache,
    predicates: SetCache,
    concat: Matrix,
    z_out1: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

impl MscnModel {
    /// Creates an untrained MSCN model for the given database.
    pub fn new(db: &Database, config: TrainConfig) -> Self {
        Self::with_featurizer(MscnFeaturizer::new(db), config, "MSCN")
    }

    /// Creates the sample-enhanced variant ("MSCN with N samples", §6.6).
    pub fn with_samples(db: &Database, sample_size: usize, config: TrainConfig) -> Self {
        let featurizer = MscnFeaturizer::with_samples(db, sample_size, config.seed);
        let name = format!("MSCN{sample_size}");
        Self::with_featurizer(featurizer, config, &name)
    }

    fn with_featurizer(featurizer: MscnFeaturizer, config: TrainConfig, name: &str) -> Self {
        let hidden = config.hidden_size;
        let seed = config.seed;
        MscnModel {
            name: name.to_string(),
            table_module: SetModule::new(featurizer.table_dim(), hidden, seed.wrapping_add(10)),
            join_module: SetModule::new(featurizer.join_dim(), hidden, seed.wrapping_add(20)),
            predicate_module: SetModule::new(
                featurizer.predicate_dim(),
                hidden,
                seed.wrapping_add(30),
            ),
            out1: Dense::new(3 * hidden, hidden, seed.wrapping_add(40)),
            out2: Dense::new(hidden, 1, seed.wrapping_add(50)),
            featurizer,
            log_max_cardinality: (1e6f32 + 1.0).ln(),
            config,
        }
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.table_module.num_params()
            + self.join_module.num_params()
            + self.predicate_module.num_params()
            + self.out1.num_params()
            + self.out2.num_params()
    }

    /// The training configuration the model was built with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Batched forward pass: the table/join/predicate sets of a whole mini-batch run through
    /// their set modules as single GEMMs, and the output MLP consumes the `(B×3H)`
    /// concatenation of the pooled representations.
    fn forward_batch(
        &self,
        tables: RaggedBatch,
        joins: RaggedBatch,
        predicates: RaggedBatch,
    ) -> BatchForwardCache {
        let tables = self.table_module.forward_batch(tables);
        let joins = self.join_module.forward_batch(joins);
        let predicates = self.predicate_module.forward_batch(predicates);
        let concat = concat_columns(&[&tables.pooled, &joins.pooled, &predicates.pooled]);
        let mut a_out1 = self.out1.forward(&concat);
        relu_in_place(&mut a_out1);
        let mut sigmoid_out = self.out2.forward(&a_out1);
        sigmoid_in_place(&mut sigmoid_out);
        BatchForwardCache {
            tables,
            joins,
            predicates,
            concat,
            a_out1,
            sigmoid_out,
        }
    }

    /// Inference-only batched forward: the `B×1` sigmoid outputs, no cache retained.
    fn forward_batch_inference(
        &self,
        tables: &RaggedBatch,
        joins: &RaggedBatch,
        predicates: &RaggedBatch,
    ) -> Matrix {
        let tables = self.table_module.forward_batch_inference(tables);
        let joins = self.join_module.forward_batch_inference(joins);
        let predicates = self.predicate_module.forward_batch_inference(predicates);
        let concat = concat_columns(&[&tables, &joins, &predicates]);
        let mut a_out1 = self.out1.forward(&concat);
        relu_in_place(&mut a_out1);
        let mut sigmoid_out = self.out2.forward(&a_out1);
        sigmoid_in_place(&mut sigmoid_out);
        sigmoid_out
    }

    /// Seed-faithful single-query forward pass: the pre-batching implementation, kept as the
    /// baseline for the parity tests and criterion benchmarks (see
    /// [`SetModule::forward_reference`]).
    fn forward_reference(&self, features: &MscnFeatures) -> ReferenceForwardCache {
        let tables = self.table_module.forward_reference(&features.tables);
        let joins = self.join_module.forward_reference(&features.joins);
        let predicates = self
            .predicate_module
            .forward_reference(&features.predicates);
        let hidden = self.table_module.hidden();
        let mut concat = Matrix::zeros(1, 3 * hidden);
        concat.row_mut(0)[..hidden].copy_from_slice(tables.pooled.row(0));
        concat.row_mut(0)[hidden..2 * hidden].copy_from_slice(joins.pooled.row(0));
        concat.row_mut(0)[2 * hidden..].copy_from_slice(predicates.pooled.row(0));
        let z_out1 = self.out1.forward_sparse(&concat);
        let a_out1 = relu(&z_out1);
        let z_out2 = self.out2.forward_sparse(&a_out1);
        let sigmoid_out = sigmoid(&z_out2);
        ReferenceForwardCache {
            tables,
            joins,
            predicates,
            concat,
            z_out1,
            a_out1,
            sigmoid_out,
        }
    }

    /// Seed-faithful single-query backward pass (see [`MscnModel::forward_reference`]).
    fn backward_reference(&mut self, cache: &ReferenceForwardCache, grad_sigmoid_out: f32) {
        let grad_out = Matrix::from_vec(1, 1, vec![grad_sigmoid_out]);
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, &grad_out);
        let grad_a_out1 = self.out2.backward(&cache.a_out1, &grad_z_out2);
        let grad_z_out1 = relu_backward(&cache.z_out1, &grad_a_out1);
        let grad_concat = self.out1.backward(&cache.concat, &grad_z_out1);
        let hidden = self.table_module.hidden();
        let split =
            |lo: usize, hi: usize| Matrix::from_vec(1, hidden, grad_concat.row(0)[lo..hi].to_vec());
        self.table_module
            .backward_reference(&cache.tables, &split(0, hidden));
        self.join_module
            .backward_reference(&cache.joins, &split(hidden, 2 * hidden));
        self.predicate_module
            .backward_reference(&cache.predicates, &split(2 * hidden, 3 * hidden));
    }

    /// Backpropagates per-query `d loss / d sigmoid_out` (`B×1`) through the whole network,
    /// accumulating into the parameter gradients.  Kept for the parity tests; training goes
    /// through [`MscnModel::backward_batch_into`] so shards can accumulate privately.
    #[cfg(test)]
    fn backward_batch(&mut self, cache: &BatchForwardCache, grad_sigmoid_out: &Matrix) {
        let mut grads = self.gradient_set();
        self.backward_batch_into(cache, grad_sigmoid_out, &mut grads);
        for (param, grad) in self.params_vec_mut().into_iter().zip(grads.parts()) {
            param.grad.add_assign(grad);
        }
    }

    /// [`MscnModel::backward_batch`] into a caller-provided [`GradientSet`] (layout:
    /// [`grad_index`]), leaving the model untouched — every shard of a data-parallel
    /// mini-batch runs this against the same read-only model.
    fn backward_batch_into(
        &self,
        cache: &BatchForwardCache,
        grad_sigmoid_out: &Matrix,
        grads: &mut GradientSet,
    ) {
        use grad_index::*;
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, grad_sigmoid_out);
        let (grad_w, grad_b, mut grad_z_out1) =
            self.out2.backward_dense_calc(&cache.a_out1, &grad_z_out2);
        grads.part_mut(OUT2_W).add_assign(&grad_w);
        grads.part_mut(OUT2_B).add_assign(&grad_b);
        relu_backward_in_place(&cache.a_out1, &mut grad_z_out1);
        let (grad_w, grad_b, grad_concat) =
            self.out1.backward_dense_calc(&cache.concat, &grad_z_out1);
        grads.part_mut(OUT1_W).add_assign(&grad_w);
        grads.part_mut(OUT1_B).add_assign(&grad_b);

        let hidden = self.table_module.hidden();
        let mut split = split_columns(&grad_concat, &[hidden, hidden, hidden]).into_iter();
        let grad_tables = split.next().expect("three blocks");
        let grad_joins = split.next().expect("three blocks");
        let grad_predicates = split.next().expect("three blocks");
        let parts = grads.parts_mut();
        let (table_grads, rest) = parts.split_at_mut(JOINS);
        let (join_grads, rest) = rest.split_at_mut(PER_MODULE);
        let (predicate_grads, _) = rest.split_at_mut(PER_MODULE);
        self.table_module
            .backward_batch_into(&cache.tables, &grad_tables, table_grads);
        self.join_module
            .backward_batch_into(&cache.joins, &grad_joins, join_grads);
        self.predicate_module.backward_batch_into(
            &cache.predicates,
            &grad_predicates,
            predicate_grads,
        );
    }

    /// A zeroed gradient set shaped like this model's parameters (layout: [`grad_index`]).
    fn gradient_set(&self) -> GradientSet {
        let mut shapes = Vec::with_capacity(grad_index::TOTAL);
        shapes.extend(self.table_module.grad_shapes());
        shapes.extend(self.join_module.grad_shapes());
        shapes.extend(self.predicate_module.grad_shapes());
        shapes.extend(self.out1.grad_shapes());
        shapes.extend(self.out2.grad_shapes());
        GradientSet::zeros(&shapes)
    }

    fn zero_grad(&mut self) {
        self.table_module.zero_grad();
        self.join_module.zero_grad();
        self.predicate_module.zero_grad();
        self.out1.zero_grad();
        self.out2.zero_grad();
    }

    /// All trainable parameters in [`grad_index`] order.
    fn params_vec_mut(&mut self) -> Vec<&mut crn_nn::layers::Param> {
        // Destructure so the borrow checker sees disjoint mutable borrows per field.
        let MscnModel {
            table_module,
            join_module,
            predicate_module,
            out1,
            out2,
            ..
        } = self;
        let mut all = Vec::new();
        all.extend(table_module.l1.params_mut());
        all.extend(table_module.l2.params_mut());
        all.extend(join_module.l1.params_mut());
        all.extend(join_module.l2.params_mut());
        all.extend(predicate_module.l1.params_mut());
        all.extend(predicate_module.l2.params_mut());
        all.extend(out1.params_mut());
        all.extend(out2.params_mut());
        all
    }

    fn adam_step(&mut self, adam: &mut Adam) {
        let all = self.params_vec_mut();
        adam.step(all);
    }

    /// One (single-threaded) Adam step over an externally merged gradient set — the tail of
    /// every data-parallel mini-batch.
    fn adam_step_with(&mut self, adam: &mut Adam, grads: &GradientSet) {
        let all = self.params_vec_mut();
        adam.step_with(all, grads.parts());
    }

    /// Converts the sigmoid output into a cardinality.
    fn unnormalize(&self, sigmoid_out: f32) -> f32 {
        (sigmoid_out * self.log_max_cardinality).exp() - 1.0
    }

    /// Derivative of [`MscnModel::unnormalize`] with respect to the sigmoid output.
    fn unnormalize_grad(&self, sigmoid_out: f32) -> f32 {
        self.log_max_cardinality * (sigmoid_out * self.log_max_cardinality).exp()
    }

    /// Packs the features of a subset of samples into the three per-set ragged batches.
    #[cfg(test)]
    fn pack_batch(
        features: &[MscnFeatures],
        indices: &[usize],
    ) -> (RaggedBatch, RaggedBatch, RaggedBatch) {
        (
            RaggedBatch::from_sets(indices.iter().map(|&i| &features[i].tables)),
            RaggedBatch::from_sets(indices.iter().map(|&i| &features[i].joins)),
            RaggedBatch::from_sets(indices.iter().map(|&i| &features[i].predicates)),
        )
    }

    /// Packs pre-converted CSR features of a subset of samples into the three per-set ragged
    /// batches by non-zero concatenation (the training loop's zero-copy path).
    fn pack_sparse_batch(
        &self,
        features: &[SparseMscnFeatures],
        indices: &[usize],
    ) -> (RaggedBatch, RaggedBatch, RaggedBatch) {
        (
            RaggedBatch::from_sparse_sets(
                self.featurizer.table_dim(),
                indices.iter().map(|&i| &features[i].tables),
            ),
            RaggedBatch::from_sparse_sets(
                self.featurizer.join_dim(),
                indices.iter().map(|&i| &features[i].joins),
            ),
            RaggedBatch::from_sparse_sets(
                self.featurizer.predicate_dim(),
                indices.iter().map(|&i| &features[i].predicates),
            ),
        )
    }

    /// Trains the model on labelled cardinality samples; returns the per-epoch history.
    ///
    /// Each mini-batch runs through the ragged-batch engine (`crn_nn::batch`), sharded
    /// across the data-parallel pool of [`TrainConfig::parallel`] (`crn_nn::parallel`):
    /// every shard runs the batched forward/backward into its own gradient set, the shards
    /// merge in fixed order, and a single-threaded Adam step applies the result.  At
    /// `threads = 1` (the default) this is exactly the one-GEMM-per-batch path; gradients
    /// are in every mode mathematically identical to the per-sample loop of
    /// [`MscnModel::fit_reference`] (pinned to 1e-5 by the parity tests below), and in
    /// deterministic mode bit-identical across thread counts.
    pub fn fit(&mut self, samples: &[CardinalitySample]) -> TrainingHistory {
        let parallel = self.config.parallel;
        // One persistent worker-pool handle for the whole fit (see `CrnModel::fit`): every
        // featurization shard, mini-batch and validation chunk runs on the same spawn-once
        // threads instead of re-spawning scoped workers per mini-batch.
        let workers = parallel.worker_pool();
        // Features are featurized and converted to CSR once, before the epoch loop;
        // mini-batches are assembled by concatenating the per-sample non-zeros.  Per-sample
        // featurization is pure, so it shards trivially across the worker threads.
        let features: Vec<SparseMscnFeatures> = {
            let model = &*self;
            let ranges = shard_ranges(samples.len(), parallel.threads);
            workers
                .run_over_ranges(&ranges, |range| {
                    samples[range]
                        .iter()
                        .map(|s| {
                            let dense = model.featurizer.featurize(&s.query);
                            SparseMscnFeatures {
                                tables: SparseRows::from_matrix(&dense.tables),
                                joins: SparseRows::from_matrix(&dense.joins),
                                predicates: SparseRows::from_matrix(&dense.predicates),
                            }
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
        };
        let targets: Vec<f32> = samples.iter().map(|s| s.cardinality as f32).collect();
        let max_card = targets.iter().cloned().fold(1.0f32, f32::max);
        self.log_max_cardinality = (max_card + 1.0).ln();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<MscnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                let (tables, joins, predicates) = self.pack_sparse_batch(&features, &batch);
                let (losses, grads) = self.sharded_batch_step(
                    &parallel,
                    &workers,
                    &batch,
                    (tables, joins, predicates),
                    &targets,
                );
                for loss in losses {
                    epoch_loss += loss as f64;
                    epoch_samples += 1;
                }
                self.adam_step_with(&mut adam, &grads);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                // Chunk boundaries depend only on the batch size, never the thread count —
                // the per-chunk inference is identical for every pool configuration.
                let chunks: Vec<&[usize]> =
                    valid_idx.chunks(self.config.batch_size.max(1)).collect();
                let model = &*self;
                let per_chunk: Vec<Vec<(f64, f64)>> = workers.run_sharded(chunks.len(), |shard| {
                    let chunk = chunks[shard];
                    let (tables, joins, predicates) = model.pack_sparse_batch(&features, chunk);
                    let out = model.forward_batch_inference(&tables, &joins, &predicates);
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(position, &index)| {
                            let prediction = model.unnormalize(out.get(position, 0)).max(0.0);
                            (prediction as f64, targets[index] as f64)
                        })
                        .collect()
                });
                let pairs: Vec<(f64, f64)> = per_chunk.into_iter().flatten().collect();
                mean_q_error(&pairs, CARD_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        // Restore the parameters of the best validation epoch (early stopping, §3.3).
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    /// One data-parallel mini-batch: shards the three per-set ragged batches at the same
    /// segment boundaries, runs the batched forward/backward per shard on the pool, and
    /// merges the per-shard gradients in fixed shard order.  Returns the per-sample losses
    /// in batch order and the merged gradient set; the caller applies the
    /// (single-threaded) optimizer step.
    fn sharded_batch_step(
        &self,
        parallel: &ThreadPoolConfig,
        workers: &WorkerPool,
        batch_indices: &[usize],
        batches: (RaggedBatch, RaggedBatch, RaggedBatch),
        targets: &[f32],
    ) -> (Vec<f32>, GradientSet) {
        let (tables, joins, predicates) = batches;
        let batch_scale = 1.0 / batch_indices.len() as f32;
        let num_shards = parallel.shard_count(batch_indices.len());

        // The per-shard work: forward, per-sample losses (through the un-normalization
        // chain rule), backward into a private gradient set.
        let step = |tables: RaggedBatch,
                    joins: RaggedBatch,
                    predicates: RaggedBatch,
                    indices: &[usize]| {
            let cache = self.forward_batch(tables, joins, predicates);
            let mut losses = Vec::with_capacity(indices.len());
            let mut grad_output = Matrix::zeros(indices.len(), 1);
            for (position, &index) in indices.iter().enumerate() {
                let sigmoid_out = cache.sigmoid_out.get(position, 0);
                let prediction = self.unnormalize(sigmoid_out);
                let loss = loss_and_grad(
                    self.config.loss,
                    prediction.max(CARD_FLOOR),
                    targets[index].max(CARD_FLOOR),
                    CARD_FLOOR,
                );
                losses.push(loss.loss);
                // Chain rule through the un-normalization, averaged over the whole batch.
                grad_output.set(
                    position,
                    0,
                    loss.grad * self.unnormalize_grad(sigmoid_out) * batch_scale,
                );
            }
            let mut grads = self.gradient_set();
            self.backward_batch_into(&cache, &grad_output, &mut grads);
            (losses, grads)
        };

        if num_shards <= 1 {
            return step(tables, joins, predicates, batch_indices);
        }
        let ranges = shard_ranges(batch_indices.len(), num_shards);
        let results: Vec<(Vec<f32>, GradientSet)> = workers.run_over_ranges(&ranges, |range| {
            step(
                tables.slice_segments(range.clone()),
                joins.slice_segments(range.clone()),
                predicates.slice_segments(range.clone()),
                &batch_indices[range],
            )
        });
        let mut losses = Vec::with_capacity(batch_indices.len());
        let mut shards = Vec::with_capacity(results.len());
        for (shard_losses, shard_grads) in results {
            losses.extend(shard_losses);
            shards.push(shard_grads);
        }
        let merged = reduce_gradients(shards, parallel.deterministic)
            .expect("a non-empty batch produces at least one shard");
        (losses, merged)
    }

    /// Reference per-sample training loop: the pre-batching implementation, issuing one
    /// forward and one backward per query.
    ///
    /// Kept public so the parity tests and the criterion benchmarks can compare the batched
    /// [`MscnModel::fit`] against it; there is no reason to use it for real training.
    pub fn fit_reference(&mut self, samples: &[CardinalitySample]) -> TrainingHistory {
        let features: Vec<MscnFeatures> = samples
            .iter()
            .map(|s| self.featurizer.featurize(&s.query))
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| s.cardinality as f32).collect();
        let max_card = targets.iter().cloned().fold(1.0f32, f32::max);
        self.log_max_cardinality = (max_card + 1.0).ln();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<MscnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                self.zero_grad();
                for &index in &batch {
                    let cache = self.forward_reference(&features[index]);
                    let sigmoid_out = cache.sigmoid_out.get(0, 0);
                    let prediction = self.unnormalize(sigmoid_out);
                    let loss = loss_and_grad(
                        self.config.loss,
                        prediction.max(CARD_FLOOR),
                        targets[index].max(CARD_FLOOR),
                        CARD_FLOOR,
                    );
                    epoch_loss += loss.loss as f64;
                    epoch_samples += 1;
                    let grad_sigmoid =
                        loss.grad * self.unnormalize_grad(sigmoid_out) / batch.len() as f32;
                    self.backward_reference(&cache, grad_sigmoid);
                }
                self.adam_step(&mut adam);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                let pairs: Vec<(f64, f64)> = valid_idx
                    .iter()
                    .map(|&i| {
                        let cache = self.forward_reference(&features[i]);
                        let prediction =
                            self.unnormalize(cache.sigmoid_out.get(0, 0)).max(0.0) as f64;
                        (prediction, targets[i] as f64)
                    })
                    .collect();
                mean_q_error(&pairs, CARD_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    fn predict_features(&self, features: &MscnFeatures) -> f32 {
        let out = self.forward_batch_inference(
            &RaggedBatch::from_sets([&features.tables]),
            &RaggedBatch::from_sets([&features.joins]),
            &RaggedBatch::from_sets([&features.predicates]),
        );
        self.unnormalize(out.get(0, 0)).max(0.0)
    }

    /// Predicts the cardinality of a query.
    pub fn predict(&self, query: &Query) -> f64 {
        let features = self.featurizer.featurize(query);
        self.predict_features(&features) as f64
    }
}

impl CardinalityEstimator for MscnModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.predict(query).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_exec::label_cardinalities;
    use crn_nn::q_error;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn training_data(db: &Database, n: usize, seed: u64) -> Vec<CardinalitySample> {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let queries = gen.generate_queries(n);
        label_cardinalities(db, &queries, 4)
    }

    #[test]
    fn untrained_model_produces_finite_positive_estimates() {
        let db = generate_imdb(&ImdbConfig::tiny(1));
        let model = MscnModel::new(&db, TrainConfig::fast_test());
        let q = Query::scan("title");
        let estimate = model.estimate(&q);
        assert!(estimate.is_finite() && estimate >= 1.0);
        assert!(model.num_params() > 0);
        assert_eq!(model.name(), "MSCN");
    }

    #[test]
    fn training_reduces_validation_error() {
        let db = generate_imdb(&ImdbConfig::tiny(2));
        let samples = training_data(&db, 120, 2);
        let mut model = MscnModel::new(&db, TrainConfig::fast_test());
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        let first = history.epochs.first().unwrap().validation_q_error;
        let best = history.best_validation;
        assert!(
            best <= first,
            "validation error should not get worse than the first epoch: {first} -> {best}"
        );
    }

    #[test]
    fn trained_model_beats_wild_guessing_on_single_tables() {
        let db = generate_imdb(&ImdbConfig::tiny(3));
        let samples = training_data(&db, 200, 3);
        let mut config = TrainConfig::fast_test();
        config.epochs = 30;
        let mut model = MscnModel::new(&db, config);
        model.fit(&samples);
        // Evaluate on the training distribution (just checking learning happens at all).
        let mut errors = Vec::new();
        for s in samples.iter().take(50) {
            errors.push(q_error(model.estimate(&s.query), s.cardinality as f64, 1.0));
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errors[errors.len() / 2];
        assert!(
            median < 40.0,
            "median training q-error should be moderate after training, got {median}"
        );
    }

    #[test]
    fn sample_enhanced_variant_has_wider_table_vectors_and_trains() {
        let db = generate_imdb(&ImdbConfig::tiny(4));
        let samples = training_data(&db, 60, 4);
        let mut model = MscnModel::with_samples(&db, 16, TrainConfig::fast_test());
        assert_eq!(model.name(), "MSCN16");
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        let estimate = model.estimate(&samples[0].query);
        assert!(estimate.is_finite() && estimate >= 1.0);
    }

    /// The batched forward pass must agree with per-query forwards to float tolerance,
    /// including queries with empty join/predicate sets.
    #[test]
    fn batched_forward_matches_per_query_forward() {
        let db = generate_imdb(&ImdbConfig::tiny(6));
        let samples = training_data(&db, 50, 6);
        let model = MscnModel::new(&db, TrainConfig::fast_test());
        let features: Vec<_> = samples
            .iter()
            .map(|s| model.featurizer.featurize(&s.query))
            .collect();
        let indices: Vec<usize> = (0..features.len()).collect();
        let (tables, joins, predicates) = MscnModel::pack_batch(&features, &indices);
        assert!(
            features.iter().any(|f| f.joins.rows() == 0),
            "fixture should include at least one join-free query"
        );
        let batched = model.forward_batch(tables, joins, predicates).sigmoid_out;
        for (index, feature) in features.iter().enumerate() {
            let single = model.forward_reference(feature).sigmoid_out.get(0, 0);
            assert!(
                (batched.get(index, 0) - single).abs() < 1e-5,
                "query {index}: batched {} vs single {single}",
                batched.get(index, 0)
            );
        }
    }

    /// The batched backward pass must accumulate the same parameter gradients as the
    /// per-sample loop, to 1e-5 (relative).
    #[test]
    fn batched_gradients_match_per_sample_accumulation() {
        let db = generate_imdb(&ImdbConfig::tiny(7));
        let samples = training_data(&db, 24, 7);
        let mut batched_model = MscnModel::new(&db, TrainConfig::fast_test());
        let mut reference_model = batched_model.clone();
        let features: Vec<_> = samples
            .iter()
            .map(|s| batched_model.featurizer.featurize(&s.query))
            .collect();
        let scale = 1.0 / samples.len() as f32;

        reference_model.zero_grad();
        for (sample, feature) in samples.iter().zip(&features) {
            let cache = reference_model.forward_reference(feature);
            let sigmoid_out = cache.sigmoid_out.get(0, 0);
            let prediction = reference_model.unnormalize(sigmoid_out);
            let loss = loss_and_grad(
                reference_model.config.loss,
                prediction.max(CARD_FLOOR),
                (sample.cardinality as f32).max(CARD_FLOOR),
                CARD_FLOOR,
            );
            let grad = loss.grad * reference_model.unnormalize_grad(sigmoid_out) * scale;
            reference_model.backward_reference(&cache, grad);
        }

        batched_model.zero_grad();
        let indices: Vec<usize> = (0..features.len()).collect();
        let (tables, joins, predicates) = MscnModel::pack_batch(&features, &indices);
        let cache = batched_model.forward_batch(tables, joins, predicates);
        let mut grad = Matrix::zeros(samples.len(), 1);
        for (index, sample) in samples.iter().enumerate() {
            let sigmoid_out = cache.sigmoid_out.get(index, 0);
            let prediction = batched_model.unnormalize(sigmoid_out);
            let loss = loss_and_grad(
                batched_model.config.loss,
                prediction.max(CARD_FLOOR),
                (sample.cardinality as f32).max(CARD_FLOOR),
                CARD_FLOOR,
            );
            grad.set(
                index,
                0,
                loss.grad * batched_model.unnormalize_grad(sigmoid_out) * scale,
            );
        }
        batched_model.backward_batch(&cache, &grad);

        for (name, a, b) in [
            (
                "tables.l1.w",
                &batched_model.table_module.l1.w.grad,
                &reference_model.table_module.l1.w.grad,
            ),
            (
                "tables.l2.w",
                &batched_model.table_module.l2.w.grad,
                &reference_model.table_module.l2.w.grad,
            ),
            (
                "joins.l1.w",
                &batched_model.join_module.l1.w.grad,
                &reference_model.join_module.l1.w.grad,
            ),
            (
                "predicates.l1.w",
                &batched_model.predicate_module.l1.w.grad,
                &reference_model.predicate_module.l1.w.grad,
            ),
            (
                "out1.w",
                &batched_model.out1.w.grad,
                &reference_model.out1.w.grad,
            ),
            (
                "out2.w",
                &batched_model.out2.w.grad,
                &reference_model.out2.w.grad,
            ),
            (
                "out2.b",
                &batched_model.out2.b.grad,
                &reference_model.out2.b.grad,
            ),
        ] {
            for (index, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-5 * y.abs().max(1.0),
                    "{name}[{index}]: batched {x} vs per-sample {y}"
                );
            }
        }
    }

    /// The batched and reference training loops see identical losses on the first epoch.
    #[test]
    fn fit_and_fit_reference_trace_the_same_first_epoch() {
        let db = generate_imdb(&ImdbConfig::tiny(8));
        let samples = training_data(&db, 80, 8);
        let config = TrainConfig {
            epochs: 1,
            ..TrainConfig::fast_test()
        };
        let mut batched = MscnModel::new(&db, config.clone());
        let mut reference = batched.clone();
        let batched_history = batched.fit(&samples);
        let reference_history = reference.fit_reference(&samples);
        let a = batched_history.epochs[0];
        let b = reference_history.epochs[0];
        assert!(
            (a.train_loss - b.train_loss).abs() < 1e-4 * b.train_loss.abs().max(1.0),
            "first-epoch losses must match: batched {} vs reference {}",
            a.train_loss,
            b.train_loss
        );
        assert!(
            (a.validation_q_error - b.validation_q_error).abs()
                < 1e-4 * b.validation_q_error.abs().max(1.0),
            "first-epoch validation must match: batched {} vs reference {}",
            a.validation_q_error,
            b.validation_q_error
        );
    }

    /// Deterministic mode must be **bit-identical** across thread counts: same per-epoch
    /// losses, same validation trace, same trained parameters at `threads = 1, 2, 4`.
    #[test]
    fn deterministic_parallel_fit_is_thread_count_invariant() {
        let db = generate_imdb(&ImdbConfig::tiny(9));
        let samples = training_data(&db, 120, 9);
        let make_config = |threads: usize| TrainConfig {
            epochs: 2,
            patience: None,
            parallel: ThreadPoolConfig::deterministic(threads),
            ..TrainConfig::fast_test()
        };
        let mut baseline = MscnModel::new(&db, make_config(1));
        let baseline_history = baseline.fit(&samples);
        for threads in [2, 4] {
            let mut model = MscnModel::new(&db, make_config(threads));
            let history = model.fit(&samples);
            assert_eq!(history.epochs.len(), baseline_history.epochs.len());
            for (a, b) in history.epochs.iter().zip(&baseline_history.epochs) {
                assert_eq!(
                    a.train_loss, b.train_loss,
                    "threads = {threads}: deterministic losses must be identical"
                );
                assert_eq!(
                    a.validation_q_error, b.validation_q_error,
                    "threads = {threads}: deterministic validation must be identical"
                );
            }
            for sample in samples.iter().take(10) {
                assert_eq!(
                    model.predict(&sample.query),
                    baseline.predict(&sample.query),
                    "threads = {threads}: deterministic predictions must be identical"
                );
            }
            assert_eq!(
                model.out1.w.value, baseline.out1.w.value,
                "threads = {threads}: trained weights must be identical"
            );
        }
    }

    /// The deterministic parallel path must stay pinned to the seed-faithful per-sample
    /// reference: after two epochs at `threads = 1, 2, 4`, losses and predictions agree
    /// with [`MscnModel::fit_reference`] to 1e-5 (relative).
    #[test]
    fn parallel_fit_matches_fit_reference_across_thread_counts() {
        let db = generate_imdb(&ImdbConfig::tiny(10));
        let samples = training_data(&db, 120, 10);
        let config = TrainConfig {
            epochs: 2,
            patience: None,
            parallel: ThreadPoolConfig::single_threaded(),
            ..TrainConfig::fast_test()
        };
        let mut reference = MscnModel::new(&db, config.clone());
        let reference_history = reference.fit_reference(&samples);
        let reference_predictions: Vec<f64> = samples
            .iter()
            .take(10)
            .map(|s| reference.predict(&s.query))
            .collect();
        for threads in [1usize, 2, 4] {
            let mut parallel_config = config.clone();
            parallel_config.parallel = ThreadPoolConfig::deterministic(threads);
            let mut model = MscnModel::new(&db, parallel_config);
            let history = model.fit(&samples);
            for (a, b) in history.epochs.iter().zip(&reference_history.epochs) {
                assert!(
                    (a.train_loss - b.train_loss).abs() < 1e-5 * b.train_loss.abs().max(1.0),
                    "threads = {threads}, epoch {}: loss {} vs reference {}",
                    a.epoch,
                    a.train_loss,
                    b.train_loss
                );
            }
            for (index, (sample, expected)) in
                samples.iter().zip(&reference_predictions).enumerate()
            {
                let prediction = model.predict(&sample.query);
                // Predictions are un-normalized cardinalities, so compare relatively.
                assert!(
                    (prediction - expected).abs() < 1e-5 * expected.abs().max(1.0),
                    "threads = {threads}, query {index}: prediction {prediction} vs reference {expected}"
                );
            }
        }
    }

    /// The sharded backward (slice → per-shard backward → fixed-order reduction) must
    /// accumulate the same parameter gradients as the per-sample reference loop, to 1e-5
    /// relative — for several shard counts and both reduction orders.
    #[test]
    fn sharded_gradients_match_per_sample_accumulation() {
        let db = generate_imdb(&ImdbConfig::tiny(11));
        let samples = training_data(&db, 24, 11);
        let mut reference_model = MscnModel::new(&db, TrainConfig::fast_test());
        let features: Vec<_> = samples
            .iter()
            .map(|s| reference_model.featurizer.featurize(&s.query))
            .collect();
        let scale = 1.0 / samples.len() as f32;

        reference_model.zero_grad();
        for (sample, feature) in samples.iter().zip(&features) {
            let cache = reference_model.forward_reference(feature);
            let sigmoid_out = cache.sigmoid_out.get(0, 0);
            let prediction = reference_model.unnormalize(sigmoid_out);
            let loss = loss_and_grad(
                reference_model.config.loss,
                prediction.max(CARD_FLOOR),
                (sample.cardinality as f32).max(CARD_FLOOR),
                CARD_FLOOR,
            );
            let grad = loss.grad * reference_model.unnormalize_grad(sigmoid_out) * scale;
            reference_model.backward_reference(&cache, grad);
        }

        let model = MscnModel::new(&db, TrainConfig::fast_test());
        let targets: Vec<f32> = samples.iter().map(|s| s.cardinality as f32).collect();
        let indices: Vec<usize> = (0..features.len()).collect();
        for (threads, deterministic) in [(1, false), (2, false), (4, false), (4, true), (3, true)] {
            let pool = if deterministic {
                ThreadPoolConfig::deterministic(threads)
            } else {
                ThreadPoolConfig::with_threads(threads)
            };
            let (tables, joins, predicates) = MscnModel::pack_batch(&features, &indices);
            let (losses, grads) = model.sharded_batch_step(
                &pool,
                &pool.worker_pool(),
                &indices,
                (tables, joins, predicates),
                &targets,
            );
            assert_eq!(losses.len(), samples.len());
            for ((name, index), reference) in [
                ("tables.l1.w", 0usize),
                ("tables.l2.w", 2),
                ("joins.l1.w", grad_index::JOINS),
                ("out1.w", grad_index::OUT1_W),
                ("out2.w", grad_index::OUT2_W),
                ("out2.b", grad_index::OUT2_B),
            ]
            .into_iter()
            .zip([
                &reference_model.table_module.l1.w.grad,
                &reference_model.table_module.l2.w.grad,
                &reference_model.join_module.l1.w.grad,
                &reference_model.out1.w.grad,
                &reference_model.out2.w.grad,
                &reference_model.out2.b.grad,
            ]) {
                for (position, (a, b)) in grads.parts()[index]
                    .data()
                    .iter()
                    .zip(reference.data())
                    .enumerate()
                {
                    assert!(
                        (a - b).abs() < 1e-5 * b.abs().max(1.0),
                        "threads {threads} det {deterministic}, {name}[{position}]: sharded {a} vs per-sample {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn prediction_is_deterministic_after_training() {
        let db = generate_imdb(&ImdbConfig::tiny(5));
        let samples = training_data(&db, 60, 5);
        let mut model = MscnModel::new(&db, TrainConfig::fast_test());
        model.fit(&samples);
        let q = &samples[0].query;
        assert_eq!(model.estimate(q), model.estimate(q));
    }
}
