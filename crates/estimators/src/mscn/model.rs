//! The MSCN model: a multi-set convolutional network for cardinality estimation.
//!
//! Architecture (after Kipf et al., the baseline of paper §4.1/§6): one small MLP per set
//! (tables, joins, predicates) applied to every set element, average pooling per set, the
//! three pooled vectors concatenated and fed through a two-layer output MLP whose sigmoid
//! output is interpreted as a normalized log-cardinality.  Training minimizes the q-error of
//! the un-normalized cardinality, with Adam, mini-batches and early stopping — the same
//! training regime as the CRN model so that the comparison is fair (§4.1.2: "we train the
//! MSCN model with the same data that was used to train the CRN model").

use crate::mscn::featurize::{MscnFeatures, MscnFeaturizer};
use crate::traits::CardinalityEstimator;
use crn_db::database::Database;
use crn_exec::CardinalitySample;
use crn_nn::batch::{
    concat_columns, segment_pool, segment_pool_backward, split_columns, RaggedBatch, SegmentPool,
    SparseRows,
};
use crn_nn::layers::{
    relu, relu_backward, relu_backward_in_place, relu_in_place, sigmoid, sigmoid_backward,
    sigmoid_in_place, Dense,
};
use crn_nn::loss::{loss_and_grad, mean_q_error};
use crn_nn::matrix::Matrix;
use crn_nn::optim::Adam;
use crn_nn::train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, TrainConfig,
    TrainingHistory,
};
use crn_query::ast::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Cardinalities below this floor are clamped before the q-error is formed.
const CARD_FLOOR: f32 = 1.0;

/// A per-element two-layer MLP followed by average pooling — one per query set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SetModule {
    l1: Dense,
    l2: Dense,
}

/// Forward-pass cache of a set module over a ragged mini-batch (a single query is `B = 1`).
///
/// The element-level tensors are flattened over all queries of the batch and segmented by the
/// offsets of `input`; `pooled` has one row per query.  Empty sets (queries without joins or
/// predicates) are empty segments and pool to a zero row, exactly as the previous per-query
/// special case did.  Only post-activation tensors are kept (ReLU runs in place; its output
/// doubles as the backward mask).
struct BatchSetCache {
    input: RaggedBatch,
    a1: Matrix,
    a2: Matrix,
    pooled: Matrix,
}

/// Forward-pass cache of a set module for the seed-faithful per-sample reference path.
struct SetCache {
    input: Matrix,
    z1: Matrix,
    a1: Matrix,
    z2: Matrix,
    a2: Matrix,
    pooled: Matrix,
}

impl SetModule {
    fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        SetModule {
            l1: Dense::new(input_dim, hidden, seed),
            l2: Dense::new(hidden, hidden, seed.wrapping_add(1)),
        }
    }

    /// Seed-faithful per-query forward pass (the pre-batching implementation, kept as the
    /// baseline for the parity tests and benchmarks).
    fn forward_reference(&self, input: &Matrix) -> SetCache {
        if input.rows() == 0 {
            // Empty set: the pooled representation is all zeros.
            return SetCache {
                input: input.clone(),
                z1: Matrix::zeros(0, self.l1.output_dim()),
                a1: Matrix::zeros(0, self.l1.output_dim()),
                z2: Matrix::zeros(0, self.hidden()),
                a2: Matrix::zeros(0, self.hidden()),
                pooled: Matrix::zeros(1, self.hidden()),
            };
        }
        let z1 = self.l1.forward_sparse(input);
        let a1 = relu(&z1);
        let z2 = self.l2.forward_sparse(&a1);
        let a2 = relu(&z2);
        let pooled = crn_nn::layers::mean_pool(&a2);
        SetCache {
            input: input.clone(),
            z1,
            a1,
            z2,
            a2,
            pooled,
        }
    }

    /// Seed-faithful per-query backward pass (see [`SetModule::forward_reference`]).
    fn backward_reference(&mut self, cache: &SetCache, grad_pooled: &Matrix) {
        if cache.input.rows() == 0 {
            return;
        }
        let grad_a2 = crn_nn::layers::mean_pool_backward(cache.a2.rows(), grad_pooled);
        let grad_z2 = relu_backward(&cache.z2, &grad_a2);
        let grad_a1 = self.l2.backward(&cache.a1, &grad_z2);
        let grad_z1 = relu_backward(&cache.z1, &grad_a1);
        let _ = self.l1.backward(&cache.input, &grad_z1);
    }

    fn hidden(&self) -> usize {
        self.l2.output_dim()
    }

    fn forward_batch(&self, input: RaggedBatch) -> BatchSetCache {
        // One-hot set vectors feed the first layer through the batch's CSR non-zeros; the
        // second layer's post-ReLU input is dense enough that the blocked SIMD kernel wins.
        let mut a1 = self.l1.forward_ragged(&input);
        relu_in_place(&mut a1);
        let mut a2 = self.l2.forward(&a1);
        relu_in_place(&mut a2);
        let pooled = segment_pool(&a2, input.offsets(), SegmentPool::Mean);
        BatchSetCache {
            input,
            a1,
            a2,
            pooled,
        }
    }

    /// Inference-only batched forward: the pooled `B×H` representations, no cache.
    fn forward_batch_inference(&self, input: &RaggedBatch) -> Matrix {
        let mut a1 = self.l1.forward_ragged(input);
        relu_in_place(&mut a1);
        let mut a2 = self.l2.forward(&a1);
        relu_in_place(&mut a2);
        segment_pool(&a2, input.offsets(), SegmentPool::Mean)
    }

    fn backward_batch(&mut self, cache: &BatchSetCache, grad_pooled: &Matrix) {
        if cache.input.num_rows() == 0 {
            // Every segment in the batch is empty — nothing flowed forward.
            return;
        }
        let mut grad_z2 =
            segment_pool_backward(cache.input.offsets(), grad_pooled, SegmentPool::Mean);
        relu_backward_in_place(&cache.a2, &mut grad_z2);
        let mut grad_z1 = self.l2.backward_dense(&cache.a1, &grad_z2);
        relu_backward_in_place(&cache.a1, &mut grad_z1);
        // `l1` is an input layer over one-hot rows: CSR weight gradients, no dL/dx.
        self.l1.backward_ragged_weights_only(&cache.input, &grad_z1);
    }

    fn zero_grad(&mut self) {
        self.l1.zero_grad();
        self.l2.zero_grad();
    }

    fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params()
    }
}

/// The trained MSCN cardinality estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MscnModel {
    name: String,
    featurizer: MscnFeaturizer,
    table_module: SetModule,
    join_module: SetModule,
    predicate_module: SetModule,
    out1: Dense,
    out2: Dense,
    /// `ln(max_cardinality + 1)` of the training set, used to (un)normalize predictions.
    log_max_cardinality: f32,
    /// Training configuration used to fit the model.
    config: TrainConfig,
}

/// Forward-pass cache for a ragged mini-batch of queries.
struct BatchForwardCache {
    tables: BatchSetCache,
    joins: BatchSetCache,
    predicates: BatchSetCache,
    concat: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

/// Per-sample CSR features, converted once before the epoch loop.
struct SparseMscnFeatures {
    tables: SparseRows,
    joins: SparseRows,
    predicates: SparseRows,
}

/// Forward-pass cache for one query on the seed-faithful reference path.
struct ReferenceForwardCache {
    tables: SetCache,
    joins: SetCache,
    predicates: SetCache,
    concat: Matrix,
    z_out1: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

impl MscnModel {
    /// Creates an untrained MSCN model for the given database.
    pub fn new(db: &Database, config: TrainConfig) -> Self {
        Self::with_featurizer(MscnFeaturizer::new(db), config, "MSCN")
    }

    /// Creates the sample-enhanced variant ("MSCN with N samples", §6.6).
    pub fn with_samples(db: &Database, sample_size: usize, config: TrainConfig) -> Self {
        let featurizer = MscnFeaturizer::with_samples(db, sample_size, config.seed);
        let name = format!("MSCN{sample_size}");
        Self::with_featurizer(featurizer, config, &name)
    }

    fn with_featurizer(featurizer: MscnFeaturizer, config: TrainConfig, name: &str) -> Self {
        let hidden = config.hidden_size;
        let seed = config.seed;
        MscnModel {
            name: name.to_string(),
            table_module: SetModule::new(featurizer.table_dim(), hidden, seed.wrapping_add(10)),
            join_module: SetModule::new(featurizer.join_dim(), hidden, seed.wrapping_add(20)),
            predicate_module: SetModule::new(
                featurizer.predicate_dim(),
                hidden,
                seed.wrapping_add(30),
            ),
            out1: Dense::new(3 * hidden, hidden, seed.wrapping_add(40)),
            out2: Dense::new(hidden, 1, seed.wrapping_add(50)),
            featurizer,
            log_max_cardinality: (1e6f32 + 1.0).ln(),
            config,
        }
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.table_module.num_params()
            + self.join_module.num_params()
            + self.predicate_module.num_params()
            + self.out1.num_params()
            + self.out2.num_params()
    }

    /// The training configuration the model was built with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Batched forward pass: the table/join/predicate sets of a whole mini-batch run through
    /// their set modules as single GEMMs, and the output MLP consumes the `(B×3H)`
    /// concatenation of the pooled representations.
    fn forward_batch(
        &self,
        tables: RaggedBatch,
        joins: RaggedBatch,
        predicates: RaggedBatch,
    ) -> BatchForwardCache {
        let tables = self.table_module.forward_batch(tables);
        let joins = self.join_module.forward_batch(joins);
        let predicates = self.predicate_module.forward_batch(predicates);
        let concat = concat_columns(&[&tables.pooled, &joins.pooled, &predicates.pooled]);
        let mut a_out1 = self.out1.forward(&concat);
        relu_in_place(&mut a_out1);
        let mut sigmoid_out = self.out2.forward(&a_out1);
        sigmoid_in_place(&mut sigmoid_out);
        BatchForwardCache {
            tables,
            joins,
            predicates,
            concat,
            a_out1,
            sigmoid_out,
        }
    }

    /// Inference-only batched forward: the `B×1` sigmoid outputs, no cache retained.
    fn forward_batch_inference(
        &self,
        tables: &RaggedBatch,
        joins: &RaggedBatch,
        predicates: &RaggedBatch,
    ) -> Matrix {
        let tables = self.table_module.forward_batch_inference(tables);
        let joins = self.join_module.forward_batch_inference(joins);
        let predicates = self.predicate_module.forward_batch_inference(predicates);
        let concat = concat_columns(&[&tables, &joins, &predicates]);
        let mut a_out1 = self.out1.forward(&concat);
        relu_in_place(&mut a_out1);
        let mut sigmoid_out = self.out2.forward(&a_out1);
        sigmoid_in_place(&mut sigmoid_out);
        sigmoid_out
    }

    /// Seed-faithful single-query forward pass: the pre-batching implementation, kept as the
    /// baseline for the parity tests and criterion benchmarks (see
    /// [`SetModule::forward_reference`]).
    fn forward_reference(&self, features: &MscnFeatures) -> ReferenceForwardCache {
        let tables = self.table_module.forward_reference(&features.tables);
        let joins = self.join_module.forward_reference(&features.joins);
        let predicates = self
            .predicate_module
            .forward_reference(&features.predicates);
        let hidden = self.table_module.hidden();
        let mut concat = Matrix::zeros(1, 3 * hidden);
        concat.row_mut(0)[..hidden].copy_from_slice(tables.pooled.row(0));
        concat.row_mut(0)[hidden..2 * hidden].copy_from_slice(joins.pooled.row(0));
        concat.row_mut(0)[2 * hidden..].copy_from_slice(predicates.pooled.row(0));
        let z_out1 = self.out1.forward_sparse(&concat);
        let a_out1 = relu(&z_out1);
        let z_out2 = self.out2.forward_sparse(&a_out1);
        let sigmoid_out = sigmoid(&z_out2);
        ReferenceForwardCache {
            tables,
            joins,
            predicates,
            concat,
            z_out1,
            a_out1,
            sigmoid_out,
        }
    }

    /// Seed-faithful single-query backward pass (see [`MscnModel::forward_reference`]).
    fn backward_reference(&mut self, cache: &ReferenceForwardCache, grad_sigmoid_out: f32) {
        let grad_out = Matrix::from_vec(1, 1, vec![grad_sigmoid_out]);
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, &grad_out);
        let grad_a_out1 = self.out2.backward(&cache.a_out1, &grad_z_out2);
        let grad_z_out1 = relu_backward(&cache.z_out1, &grad_a_out1);
        let grad_concat = self.out1.backward(&cache.concat, &grad_z_out1);
        let hidden = self.table_module.hidden();
        let split =
            |lo: usize, hi: usize| Matrix::from_vec(1, hidden, grad_concat.row(0)[lo..hi].to_vec());
        self.table_module
            .backward_reference(&cache.tables, &split(0, hidden));
        self.join_module
            .backward_reference(&cache.joins, &split(hidden, 2 * hidden));
        self.predicate_module
            .backward_reference(&cache.predicates, &split(2 * hidden, 3 * hidden));
    }

    /// Backpropagates per-query `d loss / d sigmoid_out` (`B×1`) through the whole network.
    fn backward_batch(&mut self, cache: &BatchForwardCache, grad_sigmoid_out: &Matrix) {
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, grad_sigmoid_out);
        let mut grad_z_out1 = self.out2.backward_dense(&cache.a_out1, &grad_z_out2);
        relu_backward_in_place(&cache.a_out1, &mut grad_z_out1);
        let grad_concat = self.out1.backward_dense(&cache.concat, &grad_z_out1);

        let hidden = self.table_module.hidden();
        let mut split = split_columns(&grad_concat, &[hidden, hidden, hidden]).into_iter();
        let grad_tables = split.next().expect("three blocks");
        let grad_joins = split.next().expect("three blocks");
        let grad_predicates = split.next().expect("three blocks");
        self.table_module
            .backward_batch(&cache.tables, &grad_tables);
        self.join_module.backward_batch(&cache.joins, &grad_joins);
        self.predicate_module
            .backward_batch(&cache.predicates, &grad_predicates);
    }

    fn zero_grad(&mut self) {
        self.table_module.zero_grad();
        self.join_module.zero_grad();
        self.predicate_module.zero_grad();
        self.out1.zero_grad();
        self.out2.zero_grad();
    }

    fn adam_step(&mut self, adam: &mut Adam) {
        // Destructure so the borrow checker sees disjoint mutable borrows per field.
        let MscnModel {
            table_module,
            join_module,
            predicate_module,
            out1,
            out2,
            ..
        } = self;
        let mut all = Vec::new();
        all.extend(table_module.l1.params_mut());
        all.extend(table_module.l2.params_mut());
        all.extend(join_module.l1.params_mut());
        all.extend(join_module.l2.params_mut());
        all.extend(predicate_module.l1.params_mut());
        all.extend(predicate_module.l2.params_mut());
        all.extend(out1.params_mut());
        all.extend(out2.params_mut());
        adam.step(all);
    }

    /// Converts the sigmoid output into a cardinality.
    fn unnormalize(&self, sigmoid_out: f32) -> f32 {
        (sigmoid_out * self.log_max_cardinality).exp() - 1.0
    }

    /// Derivative of [`MscnModel::unnormalize`] with respect to the sigmoid output.
    fn unnormalize_grad(&self, sigmoid_out: f32) -> f32 {
        self.log_max_cardinality * (sigmoid_out * self.log_max_cardinality).exp()
    }

    /// Packs the features of a subset of samples into the three per-set ragged batches.
    #[cfg(test)]
    fn pack_batch(
        features: &[MscnFeatures],
        indices: &[usize],
    ) -> (RaggedBatch, RaggedBatch, RaggedBatch) {
        (
            RaggedBatch::from_sets(indices.iter().map(|&i| &features[i].tables)),
            RaggedBatch::from_sets(indices.iter().map(|&i| &features[i].joins)),
            RaggedBatch::from_sets(indices.iter().map(|&i| &features[i].predicates)),
        )
    }

    /// Packs pre-converted CSR features of a subset of samples into the three per-set ragged
    /// batches by non-zero concatenation (the training loop's zero-copy path).
    fn pack_sparse_batch(
        &self,
        features: &[SparseMscnFeatures],
        indices: &[usize],
    ) -> (RaggedBatch, RaggedBatch, RaggedBatch) {
        (
            RaggedBatch::from_sparse_sets(
                self.featurizer.table_dim(),
                indices.iter().map(|&i| &features[i].tables),
            ),
            RaggedBatch::from_sparse_sets(
                self.featurizer.join_dim(),
                indices.iter().map(|&i| &features[i].joins),
            ),
            RaggedBatch::from_sparse_sets(
                self.featurizer.predicate_dim(),
                indices.iter().map(|&i| &features[i].predicates),
            ),
        )
    }

    /// Trains the model on labelled cardinality samples; returns the per-epoch history.
    ///
    /// Each mini-batch runs as **one** batched forward/backward through the ragged-batch
    /// engine (`crn_nn::batch`); gradients are mathematically identical to the per-sample
    /// loop of [`MscnModel::fit_reference`] (pinned to 1e-5 by the parity tests below).
    pub fn fit(&mut self, samples: &[CardinalitySample]) -> TrainingHistory {
        // Features are featurized and converted to CSR once, before the epoch loop;
        // mini-batches are assembled by concatenating the per-sample non-zeros.
        let features: Vec<SparseMscnFeatures> = samples
            .iter()
            .map(|s| {
                let dense = self.featurizer.featurize(&s.query);
                SparseMscnFeatures {
                    tables: SparseRows::from_matrix(&dense.tables),
                    joins: SparseRows::from_matrix(&dense.joins),
                    predicates: SparseRows::from_matrix(&dense.predicates),
                }
            })
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| s.cardinality as f32).collect();
        let max_card = targets.iter().cloned().fold(1.0f32, f32::max);
        self.log_max_cardinality = (max_card + 1.0).ln();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<MscnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                let (tables, joins, predicates) = self.pack_sparse_batch(&features, &batch);
                let cache = self.forward_batch(tables, joins, predicates);

                let mut grad_output = Matrix::zeros(batch.len(), 1);
                let batch_scale = 1.0 / batch.len() as f32;
                for (position, &index) in batch.iter().enumerate() {
                    let sigmoid_out = cache.sigmoid_out.get(position, 0);
                    let prediction = self.unnormalize(sigmoid_out);
                    let loss = loss_and_grad(
                        self.config.loss,
                        prediction.max(CARD_FLOOR),
                        targets[index].max(CARD_FLOOR),
                        CARD_FLOOR,
                    );
                    epoch_loss += loss.loss as f64;
                    epoch_samples += 1;
                    // Chain rule through the un-normalization, averaged over the batch.
                    grad_output.set(
                        position,
                        0,
                        loss.grad * self.unnormalize_grad(sigmoid_out) * batch_scale,
                    );
                }
                self.zero_grad();
                self.backward_batch(&cache, &grad_output);
                self.adam_step(&mut adam);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(valid_idx.len());
                for chunk in valid_idx.chunks(self.config.batch_size.max(1)) {
                    let (tables, joins, predicates) = self.pack_sparse_batch(&features, chunk);
                    let out = self.forward_batch_inference(&tables, &joins, &predicates);
                    for (position, &index) in chunk.iter().enumerate() {
                        let prediction = self.unnormalize(out.get(position, 0)).max(0.0);
                        pairs.push((prediction as f64, targets[index] as f64));
                    }
                }
                mean_q_error(&pairs, CARD_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        // Restore the parameters of the best validation epoch (early stopping, §3.3).
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    /// Reference per-sample training loop: the pre-batching implementation, issuing one
    /// forward and one backward per query.
    ///
    /// Kept public so the parity tests and the criterion benchmarks can compare the batched
    /// [`MscnModel::fit`] against it; there is no reason to use it for real training.
    pub fn fit_reference(&mut self, samples: &[CardinalitySample]) -> TrainingHistory {
        let features: Vec<MscnFeatures> = samples
            .iter()
            .map(|s| self.featurizer.featurize(&s.query))
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| s.cardinality as f32).collect();
        let max_card = targets.iter().cloned().fold(1.0f32, f32::max);
        self.log_max_cardinality = (max_card + 1.0).ln();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<MscnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                self.zero_grad();
                for &index in &batch {
                    let cache = self.forward_reference(&features[index]);
                    let sigmoid_out = cache.sigmoid_out.get(0, 0);
                    let prediction = self.unnormalize(sigmoid_out);
                    let loss = loss_and_grad(
                        self.config.loss,
                        prediction.max(CARD_FLOOR),
                        targets[index].max(CARD_FLOOR),
                        CARD_FLOOR,
                    );
                    epoch_loss += loss.loss as f64;
                    epoch_samples += 1;
                    let grad_sigmoid =
                        loss.grad * self.unnormalize_grad(sigmoid_out) / batch.len() as f32;
                    self.backward_reference(&cache, grad_sigmoid);
                }
                self.adam_step(&mut adam);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                let pairs: Vec<(f64, f64)> = valid_idx
                    .iter()
                    .map(|&i| {
                        let cache = self.forward_reference(&features[i]);
                        let prediction =
                            self.unnormalize(cache.sigmoid_out.get(0, 0)).max(0.0) as f64;
                        (prediction, targets[i] as f64)
                    })
                    .collect();
                mean_q_error(&pairs, CARD_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    fn predict_features(&self, features: &MscnFeatures) -> f32 {
        let out = self.forward_batch_inference(
            &RaggedBatch::from_sets([&features.tables]),
            &RaggedBatch::from_sets([&features.joins]),
            &RaggedBatch::from_sets([&features.predicates]),
        );
        self.unnormalize(out.get(0, 0)).max(0.0)
    }

    /// Predicts the cardinality of a query.
    pub fn predict(&self, query: &Query) -> f64 {
        let features = self.featurizer.featurize(query);
        self.predict_features(&features) as f64
    }
}

impl CardinalityEstimator for MscnModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.predict(query).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_exec::label_cardinalities;
    use crn_nn::q_error;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn training_data(db: &Database, n: usize, seed: u64) -> Vec<CardinalitySample> {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let queries = gen.generate_queries(n);
        label_cardinalities(db, &queries, 4)
    }

    #[test]
    fn untrained_model_produces_finite_positive_estimates() {
        let db = generate_imdb(&ImdbConfig::tiny(1));
        let model = MscnModel::new(&db, TrainConfig::fast_test());
        let q = Query::scan("title");
        let estimate = model.estimate(&q);
        assert!(estimate.is_finite() && estimate >= 1.0);
        assert!(model.num_params() > 0);
        assert_eq!(model.name(), "MSCN");
    }

    #[test]
    fn training_reduces_validation_error() {
        let db = generate_imdb(&ImdbConfig::tiny(2));
        let samples = training_data(&db, 120, 2);
        let mut model = MscnModel::new(&db, TrainConfig::fast_test());
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        let first = history.epochs.first().unwrap().validation_q_error;
        let best = history.best_validation;
        assert!(
            best <= first,
            "validation error should not get worse than the first epoch: {first} -> {best}"
        );
    }

    #[test]
    fn trained_model_beats_wild_guessing_on_single_tables() {
        let db = generate_imdb(&ImdbConfig::tiny(3));
        let samples = training_data(&db, 200, 3);
        let mut config = TrainConfig::fast_test();
        config.epochs = 30;
        let mut model = MscnModel::new(&db, config);
        model.fit(&samples);
        // Evaluate on the training distribution (just checking learning happens at all).
        let mut errors = Vec::new();
        for s in samples.iter().take(50) {
            errors.push(q_error(model.estimate(&s.query), s.cardinality as f64, 1.0));
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errors[errors.len() / 2];
        assert!(
            median < 40.0,
            "median training q-error should be moderate after training, got {median}"
        );
    }

    #[test]
    fn sample_enhanced_variant_has_wider_table_vectors_and_trains() {
        let db = generate_imdb(&ImdbConfig::tiny(4));
        let samples = training_data(&db, 60, 4);
        let mut model = MscnModel::with_samples(&db, 16, TrainConfig::fast_test());
        assert_eq!(model.name(), "MSCN16");
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        let estimate = model.estimate(&samples[0].query);
        assert!(estimate.is_finite() && estimate >= 1.0);
    }

    /// The batched forward pass must agree with per-query forwards to float tolerance,
    /// including queries with empty join/predicate sets.
    #[test]
    fn batched_forward_matches_per_query_forward() {
        let db = generate_imdb(&ImdbConfig::tiny(6));
        let samples = training_data(&db, 50, 6);
        let model = MscnModel::new(&db, TrainConfig::fast_test());
        let features: Vec<_> = samples
            .iter()
            .map(|s| model.featurizer.featurize(&s.query))
            .collect();
        let indices: Vec<usize> = (0..features.len()).collect();
        let (tables, joins, predicates) = MscnModel::pack_batch(&features, &indices);
        assert!(
            features.iter().any(|f| f.joins.rows() == 0),
            "fixture should include at least one join-free query"
        );
        let batched = model.forward_batch(tables, joins, predicates).sigmoid_out;
        for (index, feature) in features.iter().enumerate() {
            let single = model.forward_reference(feature).sigmoid_out.get(0, 0);
            assert!(
                (batched.get(index, 0) - single).abs() < 1e-5,
                "query {index}: batched {} vs single {single}",
                batched.get(index, 0)
            );
        }
    }

    /// The batched backward pass must accumulate the same parameter gradients as the
    /// per-sample loop, to 1e-5 (relative).
    #[test]
    fn batched_gradients_match_per_sample_accumulation() {
        let db = generate_imdb(&ImdbConfig::tiny(7));
        let samples = training_data(&db, 24, 7);
        let mut batched_model = MscnModel::new(&db, TrainConfig::fast_test());
        let mut reference_model = batched_model.clone();
        let features: Vec<_> = samples
            .iter()
            .map(|s| batched_model.featurizer.featurize(&s.query))
            .collect();
        let scale = 1.0 / samples.len() as f32;

        reference_model.zero_grad();
        for (sample, feature) in samples.iter().zip(&features) {
            let cache = reference_model.forward_reference(feature);
            let sigmoid_out = cache.sigmoid_out.get(0, 0);
            let prediction = reference_model.unnormalize(sigmoid_out);
            let loss = loss_and_grad(
                reference_model.config.loss,
                prediction.max(CARD_FLOOR),
                (sample.cardinality as f32).max(CARD_FLOOR),
                CARD_FLOOR,
            );
            let grad = loss.grad * reference_model.unnormalize_grad(sigmoid_out) * scale;
            reference_model.backward_reference(&cache, grad);
        }

        batched_model.zero_grad();
        let indices: Vec<usize> = (0..features.len()).collect();
        let (tables, joins, predicates) = MscnModel::pack_batch(&features, &indices);
        let cache = batched_model.forward_batch(tables, joins, predicates);
        let mut grad = Matrix::zeros(samples.len(), 1);
        for (index, sample) in samples.iter().enumerate() {
            let sigmoid_out = cache.sigmoid_out.get(index, 0);
            let prediction = batched_model.unnormalize(sigmoid_out);
            let loss = loss_and_grad(
                batched_model.config.loss,
                prediction.max(CARD_FLOOR),
                (sample.cardinality as f32).max(CARD_FLOOR),
                CARD_FLOOR,
            );
            grad.set(
                index,
                0,
                loss.grad * batched_model.unnormalize_grad(sigmoid_out) * scale,
            );
        }
        batched_model.backward_batch(&cache, &grad);

        for (name, a, b) in [
            (
                "tables.l1.w",
                &batched_model.table_module.l1.w.grad,
                &reference_model.table_module.l1.w.grad,
            ),
            (
                "tables.l2.w",
                &batched_model.table_module.l2.w.grad,
                &reference_model.table_module.l2.w.grad,
            ),
            (
                "joins.l1.w",
                &batched_model.join_module.l1.w.grad,
                &reference_model.join_module.l1.w.grad,
            ),
            (
                "predicates.l1.w",
                &batched_model.predicate_module.l1.w.grad,
                &reference_model.predicate_module.l1.w.grad,
            ),
            (
                "out1.w",
                &batched_model.out1.w.grad,
                &reference_model.out1.w.grad,
            ),
            (
                "out2.w",
                &batched_model.out2.w.grad,
                &reference_model.out2.w.grad,
            ),
            (
                "out2.b",
                &batched_model.out2.b.grad,
                &reference_model.out2.b.grad,
            ),
        ] {
            for (index, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-5 * y.abs().max(1.0),
                    "{name}[{index}]: batched {x} vs per-sample {y}"
                );
            }
        }
    }

    /// The batched and reference training loops see identical losses on the first epoch.
    #[test]
    fn fit_and_fit_reference_trace_the_same_first_epoch() {
        let db = generate_imdb(&ImdbConfig::tiny(8));
        let samples = training_data(&db, 80, 8);
        let config = TrainConfig {
            epochs: 1,
            ..TrainConfig::fast_test()
        };
        let mut batched = MscnModel::new(&db, config.clone());
        let mut reference = batched.clone();
        let batched_history = batched.fit(&samples);
        let reference_history = reference.fit_reference(&samples);
        let a = batched_history.epochs[0];
        let b = reference_history.epochs[0];
        assert!(
            (a.train_loss - b.train_loss).abs() < 1e-4 * b.train_loss.abs().max(1.0),
            "first-epoch losses must match: batched {} vs reference {}",
            a.train_loss,
            b.train_loss
        );
        assert!(
            (a.validation_q_error - b.validation_q_error).abs()
                < 1e-4 * b.validation_q_error.abs().max(1.0),
            "first-epoch validation must match: batched {} vs reference {}",
            a.validation_q_error,
            b.validation_q_error
        );
    }

    #[test]
    fn prediction_is_deterministic_after_training() {
        let db = generate_imdb(&ImdbConfig::tiny(5));
        let samples = training_data(&db, 60, 5);
        let mut model = MscnModel::new(&db, TrainConfig::fast_test());
        model.fit(&samples);
        let q = &samples[0].query;
        assert_eq!(model.estimate(q), model.estimate(q));
    }
}
