//! Training-loop utilities shared by the CRN and MSCN models.
//!
//! The models own their forward/backward passes (their architectures differ), but the
//! surrounding machinery is identical and lives here: hyperparameters, train/validation
//! splitting, mini-batch iteration and early stopping (§3.3: "we use the early stopping
//! technique and stop the training before convergence to avoid over-fitting").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::loss::LossKind;
use crate::parallel::ThreadPoolConfig;

/// Hyperparameters of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden layer size `H` (the paper sweeps this in Figure 3 and settles on 512; the
    /// reproduction defaults to a smaller value so CPU training stays fast).
    pub hidden_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper's default is 128, §3.5).
    pub batch_size: usize,
    /// Adam learning rate (the paper's default is 0.001, §3.5).
    pub learning_rate: f32,
    /// Training objective.
    pub loss: LossKind,
    /// Fraction of samples held out for validation (the paper uses 80/20, §3.1.2).
    pub validation_fraction: f64,
    /// Early-stopping patience: training stops after this many epochs without improvement of
    /// the validation metric. `None` disables early stopping.
    pub patience: Option<usize>,
    /// Random seed for parameter initialization and batch shuffling.
    pub seed: u64,
    /// Data-parallel epoch execution: worker-thread count and deterministic-reduction mode
    /// (see [`crate::parallel`] for the shard-pool design and determinism contract).  The
    /// shuffling, split and initialization seeds are unaffected by this — only how each
    /// mini-batch's forward/backward is sharded.
    ///
    /// Never serialized: the pool shape belongs to the *machine* running the training, not
    /// to a persisted model (a model saved on a 32-core box must not pin 32 workers when
    /// reloaded on a laptop), and skipping it keeps model files from before this field
    /// loadable.  Deserialized configs fall back to [`ThreadPoolConfig::from_env`].
    #[serde(skip)]
    pub parallel: ThreadPoolConfig,
}

/// Equality over the *persisted training recipe* only: `parallel` is machine-local
/// execution state (serde-skipped, refilled from the environment on deserialization), so
/// including it would make config equality depend on the host's `THREADS` setting rather
/// than the hyperparameters.
impl PartialEq for TrainConfig {
    fn eq(&self, other: &Self) -> bool {
        self.hidden_size == other.hidden_size
            && self.epochs == other.epochs
            && self.batch_size == other.batch_size
            && self.learning_rate == other.learning_rate
            && self.loss == other.loss
            && self.validation_fraction == other.validation_fraction
            && self.patience == other.patience
            && self.seed == other.seed
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden_size: 64,
            epochs: 40,
            batch_size: 128,
            learning_rate: 0.001,
            loss: LossKind::QError,
            validation_fraction: 0.2,
            patience: Some(8),
            seed: 42,
            // Environment-driven (`THREADS` / `DETERMINISTIC`), single-threaded when unset —
            // this is how the CI thread-matrix job pushes the whole suite through the
            // parallel engine without touching every call site.
            parallel: ThreadPoolConfig::from_env(),
        }
    }
}

impl TrainConfig {
    /// A configuration tuned for fast unit tests.
    pub fn fast_test() -> Self {
        TrainConfig {
            hidden_size: 16,
            epochs: 10,
            batch_size: 32,
            patience: Some(4),
            ..TrainConfig::default()
        }
    }
}

/// Record of one epoch: index, training loss, validation metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss of the epoch.
    pub train_loss: f64,
    /// Mean validation q-error after the epoch.
    pub validation_q_error: f64,
}

/// The history of a training run (used to reproduce the convergence plot, Figure 4).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Per-epoch statistics in order.
    pub epochs: Vec<EpochStats>,
    /// Index of the epoch with the best validation metric.
    pub best_epoch: usize,
    /// Best validation metric observed.
    pub best_validation: f64,
}

impl TrainingHistory {
    /// Records an epoch and returns `true` if it improved on the best validation metric.
    pub fn record(&mut self, stats: EpochStats) -> bool {
        let improved = self.epochs.is_empty() || stats.validation_q_error < self.best_validation;
        if improved {
            self.best_epoch = stats.epoch;
            self.best_validation = stats.validation_q_error;
        }
        self.epochs.push(stats);
        improved
    }

    /// Number of epochs actually run.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Returns true when no epoch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }
}

/// Early-stopping controller.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: Option<usize>,
    epochs_without_improvement: usize,
}

impl EarlyStopping {
    /// Creates a controller with the given patience (`None` disables early stopping).
    pub fn new(patience: Option<usize>) -> Self {
        EarlyStopping {
            patience,
            epochs_without_improvement: 0,
        }
    }

    /// Reports whether training should stop after observing an epoch that either improved the
    /// validation metric or not.
    pub fn should_stop(&mut self, improved: bool) -> bool {
        if improved {
            self.epochs_without_improvement = 0;
            return false;
        }
        self.epochs_without_improvement += 1;
        match self.patience {
            Some(patience) => self.epochs_without_improvement > patience,
            None => false,
        }
    }
}

/// A bounded reservoir of training history for incremental (continual-learning) fits.
///
/// Online fine-tuning on fresh feedback alone forgets the original training distribution
/// (catastrophic forgetting); the standard mitigation is a *replay buffer* mixing a
/// sample of history into every fine-tune corpus.  This implementation is Vitter's
/// Algorithm R: every item ever [`push`](ReplayBuffer::push)ed has equal probability
/// `capacity / seen` of sitting in the reservoir, and the whole process is deterministic
/// for a given seed and push/sample sequence (the continual-learning refresh loop keeps
/// the repository's reproducibility story).
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    items: Vec<T>,
    seen: u64,
    rng: StdRng,
}

impl<T> ReplayBuffer<T> {
    /// Creates an empty reservoir holding at most `capacity` items (at least one).
    pub fn new(capacity: usize, seed: u64) -> Self {
        ReplayBuffer {
            capacity: capacity.max(1),
            items: Vec::new(),
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offers one item to the reservoir (Algorithm R: kept outright while the buffer has
    /// room, otherwise it replaces a uniformly random resident with probability
    /// `capacity / seen`).
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        use rand::Rng;
        let slot = self.rng.gen_range(0..self.seen as usize);
        if slot < self.capacity {
            self.items[slot] = item;
        }
    }

    /// Items currently in the reservoir (unspecified order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true when the reservoir holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of items ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The reservoir's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Draws (up to) `n` items without replacement — the history half of a fine-tune
    /// corpus.  Returns fewer when the reservoir holds fewer.
    pub fn sample(&mut self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        use rand::seq::SliceRandom;
        let mut indices: Vec<usize> = (0..self.items.len()).collect();
        indices.shuffle(&mut self.rng);
        indices
            .into_iter()
            .take(n)
            .map(|index| self.items[index].clone())
            .collect()
    }
}

/// Splits sample indices into a training set and a validation set.
///
/// The split is deterministic for a given seed and keeps at least one sample on each side
/// whenever there are at least two samples.
pub fn train_validation_split(
    num_samples: usize,
    validation_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let mut indices: Vec<usize> = (0..num_samples).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut validation_size = ((num_samples as f64) * validation_fraction).round() as usize;
    if num_samples >= 2 {
        validation_size = validation_size.clamp(1, num_samples - 1);
    } else {
        validation_size = 0;
    }
    let validation = indices.split_off(num_samples - validation_size);
    (indices, validation)
}

/// Yields mini-batches of indices, reshuffled each epoch.
pub fn shuffled_batches(indices: &[usize], batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut shuffled = indices.to_vec();
    shuffled.shuffle(rng);
    shuffled
        .chunks(batch_size.max(1))
        .map(|chunk| chunk.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let (train_a, val_a) = train_validation_split(100, 0.2, 7);
        let (train_b, val_b) = train_validation_split(100, 0.2, 7);
        assert_eq!(train_a, train_b);
        assert_eq!(val_a, val_b);
        assert_eq!(train_a.len(), 80);
        assert_eq!(val_a.len(), 20);
        let mut all: Vec<usize> = train_a.iter().chain(val_a.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_handles_tiny_sample_counts() {
        let (train, val) = train_validation_split(1, 0.2, 1);
        assert_eq!(train.len(), 1);
        assert!(val.is_empty());
        let (train, val) = train_validation_split(2, 0.9, 1);
        assert_eq!(train.len(), 1);
        assert_eq!(val.len(), 1);
        let (train, val) = train_validation_split(0, 0.2, 1);
        assert!(train.is_empty() && val.is_empty());
    }

    #[test]
    fn batches_cover_all_indices() {
        let indices: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let batches = shuffled_batches(&indices, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, indices);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let mut es = EarlyStopping::new(Some(2));
        assert!(!es.should_stop(true));
        assert!(!es.should_stop(false));
        assert!(!es.should_stop(false));
        assert!(es.should_stop(false));
        // Improvement resets the counter.
        let mut es = EarlyStopping::new(Some(1));
        assert!(!es.should_stop(false));
        assert!(!es.should_stop(true));
        assert!(!es.should_stop(false));
        assert!(es.should_stop(false));
        // Disabled early stopping never stops.
        let mut es = EarlyStopping::new(None);
        for _ in 0..100 {
            assert!(!es.should_stop(false));
        }
    }

    #[test]
    fn history_tracks_best_epoch() {
        let mut history = TrainingHistory::default();
        assert!(history.is_empty());
        assert!(history.record(EpochStats {
            epoch: 0,
            train_loss: 5.0,
            validation_q_error: 4.0
        }));
        assert!(!history.record(EpochStats {
            epoch: 1,
            train_loss: 4.0,
            validation_q_error: 4.5
        }));
        assert!(history.record(EpochStats {
            epoch: 2,
            train_loss: 3.0,
            validation_q_error: 3.5
        }));
        assert_eq!(history.best_epoch, 2);
        assert_eq!(history.best_validation, 3.5);
        assert_eq!(history.len(), 3);
    }

    #[test]
    fn replay_buffer_reservoir_is_bounded_uniform_and_deterministic() {
        // Bounded: never exceeds capacity, and below capacity keeps everything.
        let mut buffer = ReplayBuffer::new(8, 7);
        for item in 0..5 {
            buffer.push(item);
        }
        assert_eq!(buffer.len(), 5);
        assert_eq!(buffer.seen(), 5);
        assert_eq!(buffer.items(), &[0, 1, 2, 3, 4]);
        for item in 5..100 {
            buffer.push(item);
        }
        assert_eq!(buffer.len(), 8);
        assert_eq!(buffer.capacity(), 8);
        assert_eq!(buffer.seen(), 100);

        // Deterministic: the same seed and push sequence yields the same reservoir.
        let run = |seed: u64| -> Vec<u32> {
            let mut buffer = ReplayBuffer::new(8, seed);
            for item in 0..100u32 {
                buffer.push(item);
            }
            buffer.items().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(
            run(3),
            run(4),
            "different seeds should differ on 100 pushes"
        );

        // Roughly uniform inclusion: over many seeds, early items survive about as often
        // as late ones (Algorithm R's defining property).  Count item 0 vs item 99.
        let mut first = 0usize;
        let mut last = 0usize;
        for seed in 0..200 {
            let items = run(seed);
            first += items.contains(&0) as usize;
            last += items.contains(&99) as usize;
        }
        // Expected inclusion is 8/100 = 16 of 200; allow a generous band.
        assert!((4..=40).contains(&first), "item 0 survived {first}/200");
        assert!((4..=40).contains(&last), "item 99 survived {last}/200");
    }

    #[test]
    fn replay_buffer_sampling_is_without_replacement() {
        let mut buffer = ReplayBuffer::new(16, 5);
        for item in 0..10 {
            buffer.push(item);
        }
        let sample = buffer.sample(6);
        assert_eq!(sample.len(), 6);
        let mut unique = sample.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 6, "no repeats within one draw");
        // Asking for more than the reservoir holds returns everything once.
        let all = buffer.sample(100);
        assert_eq!(all.len(), 10);
        // An empty reservoir yields an empty draw.
        let mut empty: ReplayBuffer<u8> = ReplayBuffer::new(4, 1);
        assert!(empty.is_empty());
        assert!(empty.sample(3).is_empty());
    }

    #[test]
    fn config_equality_ignores_the_machine_local_pool_shape() {
        let a = TrainConfig::default();
        let mut b = a.clone();
        b.parallel = crate::parallel::ThreadPoolConfig::deterministic(8);
        assert_eq!(a, b, "parallel is execution state, not a hyperparameter");
        b.seed = a.seed + 1;
        assert_ne!(a, b);
    }

    #[test]
    fn default_config_matches_paper_defaults() {
        let config = TrainConfig::default();
        assert_eq!(config.batch_size, 128);
        assert!((config.learning_rate - 0.001).abs() < 1e-9);
        assert_eq!(config.loss, LossKind::QError);
        assert!((config.validation_fraction - 0.2).abs() < 1e-9);
    }
}
