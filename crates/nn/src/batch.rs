//! Ragged-batch execution: many variable-sized sets through one GEMM.
//!
//! The CRN and MSCN models consume *sets* of vectors — one set per query (CRN) or three sets
//! per query (MSCN) — and different queries have different set sizes.  Training with
//! mini-batches of 128 (paper §3.5) and the Cnt2Crd technique's per-anchor evaluation
//! (§5.3, Figure 8) therefore used to issue hundreds of tiny 1-sample matrix products per
//! step.  This module replaces that with a **ragged batch**: the sets of a whole mini-batch
//! are flattened into one tall matrix plus a segment-offset table, so that
//!
//! * every dense layer runs once per mini-batch as a `(Σnᵢ×d)·(d×H)` GEMM instead of `B`
//!   separate `(nᵢ×d)·(d×H)` products,
//! * pooling becomes a segment reduction ([`segment_pool`]) producing one `(B×H)` matrix,
//! * the paper's `Expand` combination (§3.2.3) and its gradient are vectorized over all `B`
//!   pairs at once ([`expand_full`] / [`expand_full_backward`]).
//!
//! The backward pass mirrors each step; gradients are *mathematically identical* to the
//! per-sample accumulation the models used before (the same sums, reassociated), which the
//! parity tests in `crn-core` and `crn-estimators` verify to 1e-5.
//!
//! Segment conventions: `offsets` has length `num_segments() + 1`, `offsets[0] == 0`,
//! `offsets[i] <= offsets[i+1]`, and `offsets.last() == rows.rows()`.  Empty segments are
//! legal (MSCN queries without joins) and pool to a zero row, matching the models' previous
//! empty-set handling.

use crate::matrix::Matrix;

/// A batch of variable-sized vector sets, flattened row-major with segment offsets.
///
/// When the packed rows are sparse enough (one-hot featurized query vectors are ~97% zeros),
/// a CSR view is built at packing time so the set encoders can iterate non-zeros directly
/// instead of scanning the dense rows — see [`RaggedBatch::sparse`].
#[derive(Debug, Clone, PartialEq)]
pub struct RaggedBatch {
    /// Dense flattened rows.  Empty (0×d) for CSR-only batches built by
    /// [`RaggedBatch::from_sparse_sets`] — consumers that can use [`RaggedBatch::sparse`]
    /// never touch it.
    rows: Matrix,
    offsets: Vec<usize>,
    sparse: Option<SparseRows>,
    num_rows: usize,
    dim: usize,
}

/// A compressed-sparse-rows view of a ragged batch's flattened rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRows {
    /// Row start positions into `columns` / `values` (`num_rows + 1` entries).
    row_offsets: Vec<u32>,
    /// Column index of each non-zero.
    columns: Vec<u32>,
    /// Value of each non-zero.
    values: Vec<f32>,
}

impl SparseRows {
    /// Builds the CSR view of a dense row-major matrix (used per sample, once, before the
    /// epoch loop — mini-batches then concatenate these via
    /// [`RaggedBatch::from_sparse_sets`]).
    pub fn from_matrix(rows: &Matrix) -> SparseRows {
        let nnz = rows.data().iter().filter(|v| **v != 0.0).count();
        let mut row_offsets = Vec::with_capacity(rows.rows() + 1);
        let mut columns = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_offsets.push(0);
        for r in 0..rows.rows() {
            for (col, &v) in rows.row(r).iter().enumerate() {
                if v != 0.0 {
                    columns.push(col as u32);
                    values.push(v);
                }
            }
            row_offsets.push(columns.len() as u32);
        }
        SparseRows {
            row_offsets,
            columns,
            values,
        }
    }

    /// Builds the CSR view of a dense row-major matrix, or `None` when more than
    /// `max_density` of the entries are non-zero (the dense kernels win there).
    fn from_dense(rows: &Matrix, max_density: f64) -> Option<SparseRows> {
        let total = rows.len();
        if total == 0 {
            return None;
        }
        let nnz = rows.data().iter().filter(|v| **v != 0.0).count();
        if (nnz as f64) > (total as f64) * max_density {
            return None;
        }
        Some(SparseRows::from_matrix(rows))
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// The `(column, value)` non-zeros of one row.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_offsets[r] as usize;
        let end = self.row_offsets[r + 1] as usize;
        self.columns[start..end]
            .iter()
            .map(|&c| c as usize)
            .zip(self.values[start..end].iter().copied())
    }

    /// Total number of stored non-zeros.
    pub fn num_non_zeros(&self) -> usize {
        self.columns.len()
    }
}

/// Rows sparser than this get a CSR view at packing time (featurized one-hot rows sit far
/// below it; dense activations far above).
const CSR_DENSITY_THRESHOLD: f64 = 0.25;

impl RaggedBatch {
    /// Creates a ragged batch from a flattened row matrix and its segment offsets.
    ///
    /// # Panics
    /// Panics if the offsets are not monotonically non-decreasing from `0` to `rows.rows()`.
    pub fn new(rows: Matrix, offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().expect("non-empty"),
            rows.rows(),
            "offsets must end at the total row count"
        );
        let sparse = SparseRows::from_dense(&rows, CSR_DENSITY_THRESHOLD);
        let (num_rows, dim) = (rows.rows(), rows.cols());
        RaggedBatch {
            rows,
            offsets,
            sparse,
            num_rows,
            dim,
        }
    }

    /// Builds a CSR-only ragged batch by concatenating pre-computed per-set sparse rows —
    /// the zero-copy packing the training loops use: features are converted to
    /// [`SparseRows`] once before the epoch loop, and assembling a mini-batch only copies
    /// the (few) non-zeros instead of the dense rows.
    ///
    /// The dense [`RaggedBatch::rows`] view is left empty; every consumer of such a batch
    /// must go through [`RaggedBatch::sparse`] (the set-encoder paths all do).
    pub fn from_sparse_sets<'a>(
        dim: usize,
        sets: impl IntoIterator<Item = &'a SparseRows>,
    ) -> Self {
        let mut offsets = vec![0usize];
        let mut row_offsets = vec![0u32];
        let mut columns = Vec::new();
        let mut values = Vec::new();
        for set in sets {
            let base = *row_offsets.last().expect("non-empty");
            for r in 0..set.num_rows() {
                row_offsets.push(base + set.row_offsets[r + 1]);
            }
            columns.extend_from_slice(&set.columns);
            values.extend_from_slice(&set.values);
            offsets.push(offsets.last().expect("non-empty") + set.num_rows());
        }
        let num_rows = *offsets.last().expect("non-empty");
        RaggedBatch {
            rows: Matrix::zeros(0, dim),
            offsets,
            sparse: Some(SparseRows {
                row_offsets,
                columns,
                values,
            }),
            num_rows,
            dim,
        }
    }

    /// Packs a sequence of per-query set matrices (each `nᵢ × d`) into one ragged batch.
    ///
    /// # Panics
    /// Panics if the sets disagree on the vector dimension `d`.
    pub fn from_sets<'a>(sets: impl IntoIterator<Item = &'a Matrix>) -> Self {
        let sets: Vec<&Matrix> = sets.into_iter().collect();
        let dim = sets.first().map_or(0, |m| m.cols());
        let total_rows: usize = sets.iter().map(|m| m.rows()).sum();
        let mut data = Vec::with_capacity(total_rows * dim);
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        offsets.push(0);
        for set in &sets {
            assert_eq!(set.cols(), dim, "all sets must share the vector dimension");
            data.extend_from_slice(set.data());
            offsets.push(offsets.last().expect("non-empty") + set.rows());
        }
        RaggedBatch::new(Matrix::from_vec(total_rows, dim, data), offsets)
    }

    /// [`RaggedBatch::from_sets`] with the CSR view built **unconditionally**, independent
    /// of batch density.
    ///
    /// The serving layer packs featurized query/anchor sets with this: those rows are the
    /// one-hot regime where the CSR path wins anyway, and — unlike the density-routed
    /// [`RaggedBatch::from_sets`] — the chosen execution path (and therefore the f32
    /// summation order per row) is a structural constant, not a function of which subset of
    /// rows happens to share a batch.  That invariance is what lets sharded serving split an
    /// anchor set arbitrarily and stay bit-identical to the unsharded scan.
    pub fn from_sets_csr<'a>(sets: impl IntoIterator<Item = &'a Matrix>) -> Self {
        let mut batch = RaggedBatch::from_sets(sets);
        if batch.sparse.is_none() {
            batch.sparse = Some(SparseRows::from_matrix(&batch.rows));
        }
        batch
    }

    /// Packs `copies` repetitions of one set (used to broadcast a single query against a
    /// batch of anchors in the Cnt2Crd serving path).
    pub fn from_repeated(set: &Matrix, copies: usize) -> Self {
        let mut data = Vec::with_capacity(set.len() * copies);
        let mut offsets = Vec::with_capacity(copies + 1);
        offsets.push(0);
        for i in 0..copies {
            data.extend_from_slice(set.data());
            offsets.push((i + 1) * set.rows());
        }
        RaggedBatch::new(
            Matrix::from_vec(set.rows() * copies, set.cols(), data),
            offsets,
        )
    }

    /// Number of sets (segments) in the batch.
    pub fn num_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of flattened rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The shared vector dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flattened `(Σnᵢ × d)` row matrix.
    ///
    /// Empty (0×d) for CSR-only batches from [`RaggedBatch::from_sparse_sets`]; check
    /// [`RaggedBatch::sparse`] first.
    pub fn rows(&self) -> &Matrix {
        &self.rows
    }

    /// The segment offset table (`num_segments() + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Number of rows of segment `i`.
    pub fn segment_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The CSR view of the flattened rows, when they were sparse enough at packing time.
    pub fn sparse(&self) -> Option<&SparseRows> {
        self.sparse.as_ref()
    }

    /// Extracts the sub-batch of the segments in `range` — the shard primitive of the
    /// data-parallel training engine.
    ///
    /// Shards cut strictly at segment boundaries (a segment-pool reduction never straddles
    /// two shards), row data and segment offsets are rebased to the shard, and the storage
    /// form is preserved: a CSR-only batch ([`RaggedBatch::from_sparse_sets`]) yields
    /// CSR-only shards by slicing the non-zeros, a dense batch yields dense shards.
    /// Concatenating the shards of [`RaggedBatch::split_shards`] therefore reproduces the
    /// original batch exactly (pinned by the proptest invariants).
    ///
    /// # Panics
    /// Panics if `range` exceeds [`RaggedBatch::num_segments`].
    pub fn slice_segments(&self, range: std::ops::Range<usize>) -> RaggedBatch {
        assert!(
            range.start <= range.end && range.end <= self.num_segments(),
            "segment range {range:?} out of bounds for {} segments",
            self.num_segments()
        );
        let row_start = self.offsets[range.start];
        let row_end = self.offsets[range.end];
        let offsets: Vec<usize> = self.offsets[range.start..=range.end]
            .iter()
            .map(|&offset| offset - row_start)
            .collect();
        if let Some(sparse) = self.sparse.as_ref().filter(|_| self.rows.rows() == 0) {
            // CSR-only batch: slice the non-zeros directly, keeping the shard CSR-only so
            // the set encoders take the same sparse path they would for the whole batch.
            let nnz_start = sparse.row_offsets[row_start] as usize;
            let nnz_end = sparse.row_offsets[row_end] as usize;
            let row_offsets: Vec<u32> = sparse.row_offsets[row_start..=row_end]
                .iter()
                .map(|&offset| offset - nnz_start as u32)
                .collect();
            RaggedBatch {
                rows: Matrix::zeros(0, self.dim),
                offsets,
                sparse: Some(SparseRows {
                    row_offsets,
                    columns: sparse.columns[nnz_start..nnz_end].to_vec(),
                    values: sparse.values[nnz_start..nnz_end].to_vec(),
                }),
                num_rows: row_end - row_start,
                dim: self.dim,
            }
        } else {
            let data = self.rows.data()[row_start * self.dim..row_end * self.dim].to_vec();
            RaggedBatch::new(
                Matrix::from_vec(row_end - row_start, self.dim, data),
                offsets,
            )
        }
    }

    /// Splits the batch into at most `num_shards` canonical contiguous shards (see
    /// [`shard_ranges`] for the partition and [`RaggedBatch::slice_segments`] for the
    /// slicing guarantees).
    pub fn split_shards(&self, num_shards: usize) -> Vec<RaggedBatch> {
        shard_ranges(self.num_segments(), num_shards)
            .into_iter()
            .map(|range| self.slice_segments(range))
            .collect()
    }
}

/// The canonical partition of `num_items` consecutive items into at most `num_shards`
/// contiguous, non-empty, near-even ranges (the first `num_items % shards` ranges hold one
/// extra item).
///
/// The partition is a pure function of `(num_items, num_shards)` — this is what makes
/// deterministic-mode training independent of scheduling: the shard boundaries, and hence
/// every per-shard f32 sum, depend only on the batch and the shard count.
pub fn shard_ranges(num_items: usize, num_shards: usize) -> Vec<std::ops::Range<usize>> {
    if num_items == 0 || num_shards == 0 {
        return Vec::new();
    }
    let shards = num_shards.min(num_items);
    let base = num_items / shards;
    let extra = num_items % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, num_items);
    ranges
}

/// How a segment of transformed element vectors is reduced to one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentPool {
    /// Average over the segment rows (the paper's choice, §3.2.2).
    Mean,
    /// Sum over the segment rows (ablation).
    Sum,
}

/// Reduces each segment of `values` to one row: `(Σnᵢ × d) -> (B × d)`.
///
/// Empty segments produce a zero row (the models' established empty-set encoding).
///
/// # Panics
/// Panics if `offsets` does not describe `values` (see [`RaggedBatch::new`] conventions).
pub fn segment_pool(values: &Matrix, offsets: &[usize], pool: SegmentPool) -> Matrix {
    assert_eq!(
        *offsets.last().expect("offsets non-empty"),
        values.rows(),
        "offsets must cover the value rows"
    );
    let num_segments = offsets.len() - 1;
    let mut out = Matrix::zeros(num_segments, values.cols());
    for segment in 0..num_segments {
        let (start, end) = (offsets[segment], offsets[segment + 1]);
        if start == end {
            continue;
        }
        let out_row = out.row_mut(segment);
        for row in start..end {
            for (acc, &v) in out_row.iter_mut().zip(values.row(row)) {
                *acc += v;
            }
        }
        if pool == SegmentPool::Mean {
            let scale = 1.0 / (end - start) as f32;
            for acc in out_row.iter_mut() {
                *acc *= scale;
            }
        }
    }
    out
}

/// Backward pass of [`segment_pool`]: scatters each pooled-row gradient back over its
/// segment rows (scaled by `1/nᵢ` for the mean).
pub fn segment_pool_backward(offsets: &[usize], grad_pooled: &Matrix, pool: SegmentPool) -> Matrix {
    assert_eq!(
        grad_pooled.rows(),
        offsets.len() - 1,
        "one pooled gradient row per segment"
    );
    let total_rows = *offsets.last().expect("offsets non-empty");
    let mut grad = Matrix::zeros(total_rows, grad_pooled.cols());
    for segment in 0..grad_pooled.rows() {
        let (start, end) = (offsets[segment], offsets[segment + 1]);
        if start == end {
            continue;
        }
        let scale = match pool {
            SegmentPool::Mean => 1.0 / (end - start) as f32,
            SegmentPool::Sum => 1.0,
        };
        for row in start..end {
            for (g, &o) in grad.row_mut(row).iter_mut().zip(grad_pooled.row(segment)) {
                *g = o * scale;
            }
        }
    }
    grad
}

/// The paper's `Expand` combination, vectorized over a batch:
/// `(B×H, B×H) -> (B×4H)` with layout `[v1, v2, |v1 − v2|, v1 ⊙ v2]` per row (§3.2.3).
///
/// # Panics
/// Panics if the two inputs disagree in shape.
pub fn expand_full(q1: &Matrix, q2: &Matrix) -> Matrix {
    assert_eq!(q1.rows(), q2.rows(), "expand inputs must pair up");
    assert_eq!(q1.cols(), q2.cols(), "expand inputs must share the width");
    let (batch, hidden) = (q1.rows(), q1.cols());
    let mut out = Matrix::zeros(batch, 4 * hidden);
    for row in 0..batch {
        let left = q1.row(row);
        let right = q2.row(row);
        let out_row = out.row_mut(row);
        out_row[..hidden].copy_from_slice(left);
        out_row[hidden..2 * hidden].copy_from_slice(right);
        for i in 0..hidden {
            out_row[2 * hidden + i] = (left[i] - right[i]).abs();
            out_row[3 * hidden + i] = left[i] * right[i];
        }
    }
    out
}

/// Backward pass of [`expand_full`]: maps `dL/d expanded (B×4H)` to
/// `(dL/d q1, dL/d q2)`, both `(B×H)`.
///
/// The sub-gradient of `|a − b|` at `a == b` is taken as 0, matching the scalar
/// implementation the models used before batching.
pub fn expand_full_backward(q1: &Matrix, q2: &Matrix, grad: &Matrix) -> (Matrix, Matrix) {
    let (batch, hidden) = (q1.rows(), q1.cols());
    assert_eq!(grad.rows(), batch);
    assert_eq!(grad.cols(), 4 * hidden);
    let mut grad1 = Matrix::zeros(batch, hidden);
    let mut grad2 = Matrix::zeros(batch, hidden);
    for row in 0..batch {
        let left = q1.row(row);
        let right = q2.row(row);
        let grad_row = grad.row(row);
        for i in 0..hidden {
            let (a, b) = (left[i], right[i]);
            let g_a = grad_row[i];
            let g_b = grad_row[hidden + i];
            let g_abs = grad_row[2 * hidden + i];
            let g_prod = grad_row[3 * hidden + i];
            let sign = if a > b {
                1.0
            } else if a < b {
                -1.0
            } else {
                0.0
            };
            grad1.set(row, i, g_a + g_abs * sign + g_prod * b);
            grad2.set(row, i, g_b - g_abs * sign + g_prod * a);
        }
    }
    (grad1, grad2)
}

/// Plain concatenation `(B×H, B×H) -> (B×2H)` (the `Expand` ablation).
pub fn expand_concat(q1: &Matrix, q2: &Matrix) -> Matrix {
    assert_eq!(q1.rows(), q2.rows(), "concat inputs must pair up");
    assert_eq!(q1.cols(), q2.cols(), "concat inputs must share the width");
    let (batch, hidden) = (q1.rows(), q1.cols());
    let mut out = Matrix::zeros(batch, 2 * hidden);
    for row in 0..batch {
        out.row_mut(row)[..hidden].copy_from_slice(q1.row(row));
        out.row_mut(row)[hidden..].copy_from_slice(q2.row(row));
    }
    out
}

/// Backward pass of [`expand_concat`].
pub fn expand_concat_backward(grad: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(grad.cols() % 2, 0, "concat gradient width must be even");
    let (batch, hidden) = (grad.rows(), grad.cols() / 2);
    let mut grad1 = Matrix::zeros(batch, hidden);
    let mut grad2 = Matrix::zeros(batch, hidden);
    for row in 0..batch {
        grad1.row_mut(row).copy_from_slice(&grad.row(row)[..hidden]);
        grad2.row_mut(row).copy_from_slice(&grad.row(row)[hidden..]);
    }
    (grad1, grad2)
}

/// Broadcasts a single row to `copies` identical rows: `(1×d) -> (copies×d)` (used by the
/// serving path to pair one query encoding against a whole anchor batch).
pub fn broadcast_rows(row: &Matrix, copies: usize) -> Matrix {
    assert_eq!(row.rows(), 1, "broadcast source must be a single row");
    let mut data = Vec::with_capacity(copies * row.cols());
    for _ in 0..copies {
        data.extend_from_slice(row.data());
    }
    Matrix::from_vec(copies, row.cols(), data)
}

/// Vertical concatenation of equal-width blocks: `[(B₁×d), (B₂×d), ...] -> (ΣBᵢ×d)` (used
/// by the group serving path to fuse per-query containment-head inputs into one batch —
/// the head kernels compute every output row independently, so stacking is bit-neutral).
pub fn concat_rows(blocks: &[Matrix]) -> Matrix {
    let dim = blocks.first().map_or(0, |m| m.cols());
    let total: usize = blocks.iter().map(|m| m.rows()).sum();
    let mut data = Vec::with_capacity(total * dim);
    for block in blocks {
        assert_eq!(block.cols(), dim, "all blocks must share the width");
        data.extend_from_slice(block.data());
    }
    Matrix::from_vec(total, dim, data)
}

/// Horizontal concatenation of equal-height blocks: `[(B×d₁), (B×d₂), ...] -> (B×Σdⱼ)`
/// (used by MSCN to join its three pooled set representations).
pub fn concat_columns(blocks: &[&Matrix]) -> Matrix {
    let batch = blocks.first().map_or(0, |m| m.rows());
    let total: usize = blocks.iter().map(|m| m.cols()).sum();
    let mut out = Matrix::zeros(batch, total);
    for row in 0..batch {
        let out_row = out.row_mut(row);
        let mut cursor = 0;
        for block in blocks {
            assert_eq!(block.rows(), batch, "all blocks must share the batch size");
            out_row[cursor..cursor + block.cols()].copy_from_slice(block.row(row));
            cursor += block.cols();
        }
    }
    out
}

/// Splits a `(B×Σdⱼ)` gradient back into per-block gradients of the given widths.
pub fn split_columns(grad: &Matrix, widths: &[usize]) -> Vec<Matrix> {
    assert_eq!(
        widths.iter().sum::<usize>(),
        grad.cols(),
        "widths must cover the gradient columns"
    );
    let mut blocks: Vec<Matrix> = widths
        .iter()
        .map(|&w| Matrix::zeros(grad.rows(), w))
        .collect();
    for row in 0..grad.rows() {
        let grad_row = grad.row(row);
        let mut cursor = 0;
        for (block, &width) in blocks.iter_mut().zip(widths) {
            block
                .row_mut(row)
                .copy_from_slice(&grad_row[cursor..cursor + width]);
            cursor += width;
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{mean_pool, mean_pool_backward};

    fn ragged_fixture() -> RaggedBatch {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::zeros(0, 3);
        let c = Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]);
        RaggedBatch::from_sets([&a, &b, &c])
    }

    #[test]
    fn packing_preserves_rows_and_offsets() {
        let batch = ragged_fixture();
        assert_eq!(batch.num_segments(), 3);
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.dim(), 3);
        assert_eq!(batch.offsets(), &[0, 2, 2, 3]);
        assert_eq!(batch.segment_len(0), 2);
        assert_eq!(batch.segment_len(1), 0);
        assert_eq!(batch.rows().row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn repeated_packing_broadcasts_one_set() {
        let set = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let batch = RaggedBatch::from_repeated(&set, 3);
        assert_eq!(batch.num_segments(), 3);
        assert_eq!(batch.num_rows(), 6);
        assert_eq!(batch.rows().row(4), &[1.0, 2.0]);
        assert_eq!(batch.offsets(), &[0, 2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "share the vector dimension")]
    fn packing_rejects_mismatched_dims() {
        let a = Matrix::zeros(1, 3);
        let b = Matrix::zeros(1, 4);
        let _ = RaggedBatch::from_sets([&a, &b]);
    }

    #[test]
    #[should_panic(expected = "end at the total row count")]
    fn new_rejects_inconsistent_offsets() {
        let _ = RaggedBatch::new(Matrix::zeros(3, 2), vec![0, 1]);
    }

    #[test]
    fn segment_pool_matches_per_set_mean_pool() {
        let batch = ragged_fixture();
        let pooled = segment_pool(batch.rows(), batch.offsets(), SegmentPool::Mean);
        assert_eq!(
            pooled.row(0),
            mean_pool(&Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])).row(0)
        );
        assert_eq!(
            pooled.row(1),
            &[0.0, 0.0, 0.0],
            "empty segment pools to zero"
        );
        assert_eq!(pooled.row(2), &[7.0, 8.0, 9.0]);
        let summed = segment_pool(batch.rows(), batch.offsets(), SegmentPool::Sum);
        assert_eq!(summed.row(0), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn segment_pool_backward_matches_per_set_backward() {
        let batch = ragged_fixture();
        let grad_pooled = Matrix::from_vec(3, 3, vec![3.0; 9]);
        let grad = segment_pool_backward(batch.offsets(), &grad_pooled, SegmentPool::Mean);
        // Segment 0 (2 rows): the per-set backward distributes 3.0 / 2 per row.
        let reference = mean_pool_backward(2, &Matrix::from_vec(1, 3, vec![3.0; 3]));
        assert_eq!(grad.row(0), reference.row(0));
        assert_eq!(grad.row(1), reference.row(1));
        // Segment 2 (1 row): gradient passes through unscaled.
        assert_eq!(grad.row(2), &[3.0, 3.0, 3.0]);
        let grad_sum = segment_pool_backward(batch.offsets(), &grad_pooled, SegmentPool::Sum);
        assert_eq!(grad_sum.row(0), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn expand_full_matches_manual_layout_and_gradient() {
        let q1 = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 0.5]);
        let q2 = Matrix::from_vec(2, 2, vec![3.0, 1.0, 0.5, -0.5]);
        let expanded = expand_full(&q1, &q2);
        assert_eq!(expanded.row(0), &[1.0, -2.0, 3.0, 1.0, 2.0, 3.0, 3.0, -2.0]);
        assert_eq!(
            expanded.row(1),
            &[0.5, 0.5, 0.5, -0.5, 0.0, 1.0, 0.25, -0.25]
        );

        // Finite-difference check of the backward pass.
        let grad_out = Matrix::from_vec(2, 8, (1..=16).map(|v| v as f32 / 8.0).collect());
        let (g1, g2) = expand_full_backward(&q1, &q2, &grad_out);
        let loss = |q1: &Matrix, q2: &Matrix| -> f32 {
            expand_full(q1, q2)
                .data()
                .iter()
                .zip(grad_out.data())
                .map(|(v, g)| v * g)
                .sum()
        };
        let eps = 1e-3f32;
        for (row, col) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
            for (which, analytic) in [(&q1, &g1), (&q2, &g2)] {
                let mut plus = (*which).clone();
                plus.set(row, col, which.get(row, col) + eps);
                let mut minus = (*which).clone();
                minus.set(row, col, which.get(row, col) - eps);
                let (lp, lm) = if std::ptr::eq(which, &q1) {
                    (loss(&plus, &q2), loss(&minus, &q2))
                } else {
                    (loss(&q1, &plus), loss(&q1, &minus))
                };
                let numeric = (lp - lm) / (2.0 * eps);
                // Skip points that straddle the |a-b| kink (row 1 has a == b in column 1).
                if (q1.get(row, col) - q2.get(row, col)).abs() > 2.0 * eps {
                    assert!(
                        (numeric - analytic.get(row, col)).abs() < 1e-2,
                        "({row},{col}): numeric {numeric} vs analytic {}",
                        analytic.get(row, col)
                    );
                }
            }
        }
    }

    #[test]
    fn concat_expand_round_trips_gradients() {
        let q1 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let q2 = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let cat = expand_concat(&q1, &q2);
        assert_eq!(cat.row(0), &[1.0, 2.0, 5.0, 6.0]);
        let (g1, g2) = expand_concat_backward(&cat);
        assert_eq!(g1, q1);
        assert_eq!(g2, q2);
    }

    #[test]
    fn shard_ranges_partition_canonically() {
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(4, 4), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(shard_ranges(2, 5), vec![0..1, 1..2], "capped by item count");
        assert_eq!(shard_ranges(5, 1), vec![0..5]);
        assert!(shard_ranges(0, 3).is_empty());
        assert!(shard_ranges(3, 0).is_empty());
    }

    #[test]
    fn slice_segments_preserves_rows_and_empty_segments() {
        let batch = ragged_fixture(); // segments of 2, 0, 1 rows
        let head = batch.slice_segments(0..2);
        assert_eq!(head.num_segments(), 2);
        assert_eq!(head.num_rows(), 2);
        assert_eq!(head.offsets(), &[0, 2, 2]);
        assert_eq!(head.rows().row(1), &[4.0, 5.0, 6.0]);
        let tail = batch.slice_segments(2..3);
        assert_eq!(tail.num_segments(), 1);
        assert_eq!(tail.rows().row(0), &[7.0, 8.0, 9.0]);
        let empty = batch.slice_segments(1..1);
        assert_eq!(empty.num_segments(), 0);
        assert_eq!(empty.num_rows(), 0);
    }

    #[test]
    fn split_shards_of_csr_batch_stays_csr() {
        let a = Matrix::from_vec(2, 4, vec![0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0]);
        let b = Matrix::from_vec(1, 4, vec![0.0, 0.0, 3.0, 0.0]);
        let sparse: Vec<SparseRows> = [&a, &b].map(SparseRows::from_matrix).to_vec();
        let batch = RaggedBatch::from_sparse_sets(4, sparse.iter());
        let shards = batch.split_shards(2);
        assert_eq!(shards.len(), 2);
        for shard in &shards {
            assert!(shard.sparse().is_some(), "CSR-only shards stay CSR-only");
            assert_eq!(shard.rows().rows(), 0);
        }
        let nz: Vec<(usize, f32)> = shards[1].sparse().unwrap().row(0).collect();
        assert_eq!(nz, vec![(2, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_segments_rejects_out_of_range() {
        let _ = ragged_fixture().slice_segments(0..4);
    }

    #[test]
    fn column_concat_and_split_are_inverses() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let joined = concat_columns(&[&a, &b]);
        assert_eq!(joined.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(joined.row(1), &[2.0, 5.0, 6.0]);
        let split = split_columns(&joined, &[1, 2]);
        assert_eq!(split[0], a);
        assert_eq!(split[1], b);
    }
}

#[cfg(test)]
mod shard_proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a random ragged shape: per-segment row counts (empty segments included) and
    /// random row values.
    fn random_sets(seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_segments = rng.gen_range(0..12usize);
        let dim = rng.gen_range(1..7usize);
        (0..num_segments)
            .map(|_| {
                let rows = rng.gen_range(0..5usize);
                let data = (0..rows * dim)
                    .map(|_| rng.gen_range(-2.0f32..2.0))
                    .collect();
                Matrix::from_vec(rows, dim, data)
            })
            .collect()
    }

    /// Checks the shard invariants for one batch: the partition is exhaustive and ordered,
    /// no segment (and hence no segment-pool boundary) straddles two shards, and
    /// concatenating the shards reproduces the original batch's offsets and row data.
    fn assert_shards_reassemble(batch: &RaggedBatch, num_shards: usize) -> Result<(), String> {
        let shards = batch.split_shards(num_shards);
        let ranges = shard_ranges(batch.num_segments(), num_shards);
        prop_assert_eq!(shards.len(), ranges.len());

        let mut segment_lens = Vec::new();
        let mut rows_seen = 0usize;
        for (shard, range) in shards.iter().zip(&ranges) {
            prop_assert_eq!(shard.num_segments(), range.len());
            prop_assert_eq!(shard.dim(), batch.dim());
            prop_assert_eq!(shard.offsets()[0], 0usize);
            // Segment boundaries survive intact: each shard segment is exactly one
            // original segment, in order.
            for i in 0..shard.num_segments() {
                segment_lens.push(shard.segment_len(i));
            }
            rows_seen += shard.num_rows();
        }
        let original_lens: Vec<usize> = (0..batch.num_segments())
            .map(|i| batch.segment_len(i))
            .collect();
        prop_assert_eq!(segment_lens, original_lens);
        prop_assert_eq!(rows_seen, batch.num_rows());

        // Row data round-trips: walk the shards in order and compare against the original
        // flattened rows (through the CSR view for CSR-only shards).
        let densify = |b: &RaggedBatch| -> Vec<f32> {
            match b.sparse() {
                Some(sparse) if b.rows().rows() == 0 => {
                    let mut data = vec![0.0f32; b.num_rows() * b.dim()];
                    for r in 0..b.num_rows() {
                        for (col, value) in sparse.row(r) {
                            data[r * b.dim() + col] = value;
                        }
                    }
                    data
                }
                _ => b.rows().data().to_vec(),
            }
        };
        let reassembled: Vec<f32> = shards.iter().flat_map(&densify).collect();
        prop_assert_eq!(reassembled, densify(batch));
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Dense batches: for random ragged shapes and shard counts, concatenating the
        /// shards reproduces the original batch and segments never straddle a shard.
        #[test]
        fn dense_shards_reassemble(seed in 0u64..10_000, num_shards in 1usize..10) {
            let sets = random_sets(seed);
            if sets.is_empty() {
                let batch = RaggedBatch::from_sets(std::iter::empty::<&Matrix>());
                prop_assert!(batch.split_shards(num_shards).is_empty());
            } else {
                let batch = RaggedBatch::from_sets(sets.iter());
                assert_shards_reassemble(&batch, num_shards)?;
            }
        }

        /// CSR-only batches (the training loop's packing): same invariants, and the shards
        /// must stay CSR-only.
        #[test]
        fn sparse_shards_reassemble(seed in 10_000u64..20_000, num_shards in 1usize..10) {
            let sets = random_sets(seed);
            if sets.is_empty() {
                return Ok(());
            }
            let dim = sets[0].cols();
            let sparse_sets: Vec<SparseRows> =
                sets.iter().map(SparseRows::from_matrix).collect();
            let batch = RaggedBatch::from_sparse_sets(dim, sparse_sets.iter());
            for shard in batch.split_shards(num_shards) {
                prop_assert!(shard.sparse().is_some());
            }
            assert_shards_reassemble(&batch, num_shards)?;
        }

        /// Sharding then segment-pooling each shard equals pooling the whole batch: the
        /// invariant the data-parallel forward pass relies on.
        #[test]
        fn shard_pooling_matches_whole_batch_pooling(seed in 20_000u64..30_000, num_shards in 1usize..10) {
            let sets = random_sets(seed);
            if sets.is_empty() {
                return Ok(());
            }
            let batch = RaggedBatch::from_sets(sets.iter());
            let whole = segment_pool(batch.rows(), batch.offsets(), SegmentPool::Mean);
            let mut segment = 0usize;
            for shard in batch.split_shards(num_shards) {
                let pooled = segment_pool(shard.rows(), shard.offsets(), SegmentPool::Mean);
                for row in 0..pooled.rows() {
                    prop_assert_eq!(pooled.row(row), whole.row(segment));
                    segment += 1;
                }
            }
            prop_assert_eq!(segment, batch.num_segments());
        }
    }
}
