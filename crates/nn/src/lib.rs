//! `crn-nn` — a minimal, dependency-free neural-network stack.
//!
//! The paper's models are small multi-layer perceptrons trained with Adam on a q-error
//! objective (§3.2–3.3).  This crate provides exactly those ingredients:
//!
//! * [`matrix`] — dense row-major `f32` matrices with the handful of products backprop needs;
//! * [`layers`] — trainable parameters, fully-connected layers, ReLU / sigmoid activations and
//!   set average-pooling, each with an explicit hand-written backward pass (verified against
//!   finite differences in tests);
//! * [`optim`] — the Adam optimizer;
//! * [`loss`] — the q-error objective (plus MSE / MAE, which §3.2.4 considers and rejects);
//! * [`train`] — train/validation splitting, mini-batching, early stopping and training
//!   history (used to reproduce Figures 3 and 4).
//!
//! # Example
//!
//! ```
//! use crn_nn::{Dense, Matrix, relu};
//!
//! let layer = Dense::new(4, 8, 1);
//! let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
//! let y = relu(&layer.forward(&x));
//! assert_eq!(y.cols(), 8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod train;

pub use layers::{
    mean_pool, mean_pool_backward, relu, relu_backward, sigmoid, sigmoid_backward, Dense, Param,
};
pub use loss::{loss_and_grad, mean_q_error, q_error, LossKind, LossValue};
pub use matrix::Matrix;
pub use optim::Adam;
pub use train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, TrainConfig,
    TrainingHistory,
};
