//! `crn-nn` — a minimal, dependency-free neural-network stack.
//!
//! The paper's models are small multi-layer perceptrons trained with Adam on a q-error
//! objective (§3.2–3.3).  This crate provides exactly those ingredients:
//!
//! * [`matrix`] — dense row-major `f32` matrices with the handful of products backprop needs;
//! * [`layers`] — trainable parameters, fully-connected layers, ReLU / sigmoid activations and
//!   set average-pooling, each with an explicit hand-written backward pass (verified against
//!   finite differences in tests);
//! * [`batch`] — the ragged-batch execution engine: variable-sized sets of a whole mini-batch
//!   flattened into one matrix with segment offsets, so dense layers run as one GEMM per
//!   batch, pooling becomes a segment reduction, and the CRN `Expand` combination is
//!   vectorized over all pairs (see the module docs for the design);
//! * [`parallel`] — data-parallel execution: a persistent spawn-once worker pool (plus the
//!   original scoped shard pool), detached per-shard gradient sets and fixed-order
//!   (optionally fully deterministic) gradient reduction;
//! * [`optim`] — the Adam optimizer;
//! * [`loss`] — the q-error objective (plus MSE / MAE, which §3.2.4 considers and rejects);
//! * [`train`] — train/validation splitting, mini-batching, early stopping and training
//!   history (used to reproduce Figures 3 and 4).
//!
//! # Example
//!
//! ```
//! use crn_nn::{Dense, Matrix, relu};
//!
//! let layer = Dense::new(4, 8, 1);
//! let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
//! let y = relu(&layer.forward(&x));
//! assert_eq!(y.cols(), 8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod parallel;
pub mod train;

pub use batch::{
    broadcast_rows, concat_columns, concat_rows, expand_concat, expand_concat_backward,
    expand_full, expand_full_backward, segment_pool, segment_pool_backward, shard_ranges,
    split_columns, RaggedBatch, SegmentPool, SparseRows,
};
pub use layers::{
    mean_pool, mean_pool_backward, relu, relu_backward, relu_backward_in_place, relu_in_place,
    sigmoid, sigmoid_backward, sigmoid_in_place, Dense, Param,
};
pub use loss::{loss_and_grad, mean_q_error, q_error, LossKind, LossValue};
pub use matrix::Matrix;
pub use optim::Adam;
pub use parallel::{
    reduce_gradients, run_over_ranges, run_sharded, GradientSet, ThreadPoolConfig, WorkerPool,
    DETERMINISTIC_SHARDS,
};
pub use train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, ReplayBuffer, TrainConfig,
    TrainingHistory,
};
