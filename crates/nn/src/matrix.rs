//! A minimal dense row-major matrix type.
//!
//! The CRN and MSCN models are small multi-layer perceptrons (a few hundred units), so an
//! unblocked `f32` matrix with straightforward `ikj` matrix multiplication is entirely
//! sufficient — the training bottleneck is the number of samples, not BLAS throughput.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(data: &[f32]) -> Self {
        Matrix::from_vec(1, data.len(), data.to_vec())
    }

    /// Xavier/Glorot-uniform initialization, the standard choice for ReLU/sigmoid MLPs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Deterministic Xavier initialization from a seed.
    pub fn xavier_seeded(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier(rows, cols, &mut rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix multiplication `self (m×k) * other (k×n) -> (m×n)`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order keeps the inner loop contiguous over both `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T (k×m) * other (k×n) -> (m×n)`, without materializing the transpose.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let left_row = self.row(k);
            let right_row = other.row(k);
            for (i, &a) in left_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(right_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self (m×k) * other^T (n×k) -> (m×n)`, without materializing the transpose.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let left_row = self.row(i);
            for j in 0..other.rows {
                let right_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in left_row.iter().zip(right_row) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Adds a row vector (broadcast over rows), e.g. a bias.
    ///
    /// # Panics
    /// Panics if the bias length does not match the number of columns.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise addition of another matrix (in place).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements (in place).
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Sets every element to zero (used to reset accumulated gradients).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of each column, returned as a vector of length `cols`.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all rows, returned as a single-row matrix (used for set average-pooling).
    pub fn row_mean(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        let sums = self.column_sums();
        for (o, s) in out.row_mut(0).iter_mut().zip(sums) {
            *o = s / self.rows as f32;
        }
        out
    }

    /// Frobenius norm (used in tests and for diagnostics).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols(), m.len()), (2, 3, 6));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert!(!m.is_empty());
        let r = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!((r.rows(), r.cols()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::xavier_seeded(4, 3, 1);
        let b = Matrix::xavier_seeded(4, 5, 2);
        let c = Matrix::xavier_seeded(5, 3, 3);
        // a^T * b == transpose(a).matmul(b)
        let expected = a.transpose().matmul(&b);
        let actual = a.transpose_matmul(&b);
        for (x, y) in expected.data().iter().zip(actual.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        // a * c^T == a.matmul(transpose(c))
        let expected = a.matmul(&c.transpose());
        let actual = a.matmul_transpose(&c);
        for (x, y) in expected.data().iter().zip(actual.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn broadcast_and_elementwise_helpers() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        let other = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        m.add_assign(&other);
        assert_eq!(m.data(), &[12.0, 23.0, 14.0, 25.0]);
        m.scale(0.5);
        assert_eq!(m.data(), &[6.0, 11.5, 7.0, 12.5]);
        m.fill_zero();
        assert_eq!(m.data(), &[0.0; 4]);
    }

    #[test]
    fn column_sums_and_row_mean() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.column_sums(), vec![5.0, 7.0, 9.0]);
        let mean = m.row_mean();
        assert_eq!(mean.data(), &[2.5, 3.5, 4.5]);
        let empty = Matrix::zeros(0, 3);
        assert_eq!(empty.row_mean().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn xavier_initialization_is_bounded_and_seeded() {
        let a = Matrix::xavier_seeded(10, 20, 7);
        let b = Matrix::xavier_seeded(10, 20, 7);
        assert_eq!(a, b);
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    proptest! {
        #[test]
        fn prop_matmul_is_associative_with_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::xavier_seeded(rows, cols, seed);
            let mut identity = Matrix::zeros(cols, cols);
            for i in 0..cols {
                identity.set(i, i, 1.0);
            }
            let result = m.matmul(&identity);
            for (a, b) in m.data().iter().zip(result.data()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::xavier_seeded(rows, cols, seed);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_row_mean_is_bounded_by_extremes(rows in 1usize..8, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::xavier_seeded(rows, cols, seed);
            let mean = m.row_mean();
            for c in 0..cols {
                let col_values: Vec<f32> = (0..rows).map(|r| m.get(r, c)).collect();
                let lo = col_values.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = col_values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(mean.get(0, c) >= lo - 1e-6 && mean.get(0, c) <= hi + 1e-6);
            }
        }
    }
}
