//! A minimal dense row-major matrix type.
//!
//! The CRN and MSCN models are small multi-layer perceptrons (a few hundred units), so an
//! unblocked `f32` matrix with straightforward `ikj` matrix multiplication is entirely
//! sufficient — the training bottleneck is the number of samples, not BLAS throughput.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(data: &[f32]) -> Self {
        Matrix::from_vec(1, data.len(), data.to_vec())
    }

    /// Xavier/Glorot-uniform initialization, the standard choice for ReLU/sigmoid MLPs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Deterministic Xavier initialization from a seed.
    pub fn xavier_seeded(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier(rows, cols, &mut rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix multiplication `self (m×k) * other (k×n) -> (m×n)` — the dense kernel.
    ///
    /// Dispatches to a register-blocked AVX2+FMA microkernel when the CPU supports it (the
    /// mechanism that makes one `(B×d)·(d×H)` GEMM over a ragged batch several times faster
    /// than `B` per-sample products — per-sample execution is a register-starved GEMV that
    /// re-streams the weight matrix from cache for every sample, while the blocked kernel
    /// reuses each weight load across a block of batch rows).  Falls back to the portable
    /// `ikj` loop elsewhere.
    ///
    /// The kernel is branch-free: an earlier version skipped zero left entries inside the
    /// inner loop, but benchmarking showed the check costs ~7% on dense activations (the
    /// common case for this kernel) while only paying off on sparse inputs — use
    /// [`Matrix::matmul_sparse`] when the left operand is known to be mostly zeros.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::gemm(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// Matrix multiplication `self (m×k) * other (k×n) -> (m×n)` — the sparsity-aware kernel.
    ///
    /// Identical contract to [`Matrix::matmul`], but zero left entries skip the inner loop.
    /// Benchmarked on this workspace's shapes (`nn_kernels/matmul_*` in the `primitives`
    /// bench): the skip only wins when the left operand is one-hot featurized query vectors
    /// (~3 non-zeros per row, ~1.4× faster than the SIMD dense kernel); on post-ReLU
    /// activations (~50% zeros) the unpredictable branch makes it ~5× *slower*, and on dense
    /// inputs ~7× slower.  The models therefore route only featurized one-hot rows here
    /// (via [`crate::batch::RaggedBatch`]'s CSR view or this kernel) and every activation
    /// through the branch-free SIMD kernel.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul_sparse(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T (k×m) * other (k×n) -> (m×n)` through the blocked dense kernel, for dense
    /// operands: materializes the transpose once (O(k·m), negligible next to the O(k·m·n)
    /// product) so the whole contraction runs through [`Matrix::matmul`]'s SIMD path.
    pub fn transpose_matmul_dense(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        self.transpose().matmul(other)
    }

    /// `self (m×k) * other^T (n×k) -> (m×n)` through the blocked dense kernel, for dense
    /// operands: materializes the transpose of `other` once so the contraction runs through
    /// [`Matrix::matmul`]'s SIMD path instead of row-by-row dot products.
    pub fn matmul_transpose_dense(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        self.matmul(&other.transpose())
    }

    /// `self^T (k×m) * other (k×n) -> (m×n)`, without materializing the transpose.
    ///
    /// Keeps the zero-skip: every call site feeds `self` with layer *inputs* during backprop
    /// (`dW = x^T·g`), which are one-hot feature rows or post-ReLU activations — the sparse
    /// regimes where the skip measures faster (see [`Matrix::matmul_sparse`]).  For dense
    /// operands of batched shapes use [`Matrix::transpose_matmul_dense`].
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let left_row = self.row(k);
            let right_row = other.row(k);
            for (i, &a) in left_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(right_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self (m×k) * other^T (n×k) -> (m×n)`, without materializing the transpose.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose dimension mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let left_row = self.row(i);
            for j in 0..other.rows {
                let right_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in left_row.iter().zip(right_row) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Adds a row vector (broadcast over rows), e.g. a bias.
    ///
    /// # Panics
    /// Panics if the bias length does not match the number of columns.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise addition of another matrix (in place).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements (in place).
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Sets every element to zero (used to reset accumulated gradients).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of each column, returned as a vector of length `cols`.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all rows, returned as a single-row matrix (used for set average-pooling).
    pub fn row_mean(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        let sums = self.column_sums();
        for (o, s) in out.row_mut(0).iter_mut().zip(sums) {
            *o = s / self.rows as f32;
        }
        out
    }

    /// Frobenius norm (used in tests and for diagnostics).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// The dense GEMM kernel behind [`Matrix::matmul`]: a register-blocked AVX2+FMA microkernel
/// with runtime feature detection, falling back to the portable `ikj` loop.
mod gemm {
    /// `c (m×n) = a (m×k) · b (k×n)`, all row-major; `c` must arrive zeroed.
    pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if n == 1 {
            // Thin output (the models' scalar heads): per-row dot products with unrolled
            // accumulators beat both the strided scalar loop and 1-lane SIMD.
            gemv_single_column(a, b, c, m, k);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            /// 0 = scalar, 1 = AVX2+FMA, 2 = AVX-512F.
            static SIMD_TIER: OnceLock<u8> = OnceLock::new();
            let tier = *SIMD_TIER.get_or_init(|| {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    2
                } else if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    1
                } else {
                    0
                }
            });
            // SAFETY: the required CPU features were just detected, and the slice dimensions
            // are checked by the debug asserts above / enforced by Matrix.
            if tier == 2 && n >= 4 {
                unsafe { avx512::gemm(a, b, c, m, k, n) };
                return;
            }
            if tier >= 1 && n >= 8 {
                unsafe { avx2::gemm(a, b, c, m, k, n) };
                return;
            }
        }
        gemm_scalar(a, b, c, 0..m, k, n, 0, n);
    }

    /// `c (m×1) = a (m×k) · b (k×1)`: four independent accumulator chains per row.
    fn gemv_single_column(a: &[f32], b: &[f32], c: &mut [f32], _m: usize, k: usize) {
        let unrolled = k / 4 * 4;
        for (i, out) in c.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let mut p = 0;
            while p < unrolled {
                s0 += row[p] * b[p];
                s1 += row[p + 1] * b[p + 1];
                s2 += row[p + 2] * b[p + 2];
                s3 += row[p + 3] * b[p + 3];
                p += 4;
            }
            let mut sum = (s0 + s1) + (s2 + s3);
            for q in unrolled..k {
                sum += row[q] * b[q];
            }
            *out = sum;
        }
    }

    /// Portable `ikj` kernel over a row range and column stripe (also the remainder path of
    /// the SIMD kernel).
    #[allow(clippy::too_many_arguments)]
    fn gemm_scalar(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        rows: std::ops::Range<usize>,
        k: usize,
        n: usize,
        col_start: usize,
        col_end: usize,
    ) {
        for i in rows {
            for p in 0..k {
                let scale = a[i * k + p];
                let b_row = &b[p * n + col_start..p * n + col_end];
                let c_row = &mut c[i * n + col_start..i * n + col_end];
                for (o, &v) in c_row.iter_mut().zip(b_row) {
                    *o += scale * v;
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod avx512 {
        use std::arch::x86_64::*;

        /// Rows per register block.
        const MR: usize = 8;
        /// Columns per wide strip (two 16-lane ZMM vectors).
        const NR: usize = 32;

        /// Register-blocked AVX-512 GEMM: 8×32 blocks (sixteen ZMM accumulators) over the
        /// bulk, then an 8×16 masked strip for the column tail — every matrix width
        /// vectorizes, including the models' narrow `H`/`2H` layers, with no scalar
        /// remainder at all.
        ///
        /// # Safety
        /// Requires AVX-512F; slices must have the advertised `m·k` / `k·n` / `m·n` lengths.
        #[target_feature(enable = "avx512f")]
        pub unsafe fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
            let a_ptr = a.as_ptr();
            let b_ptr = b.as_ptr();
            let c_ptr = c.as_mut_ptr();
            let m_blocked = m - m % MR;

            // Wide 32-column strips: two b loads amortized over sixteen FMAs per block row.
            let mut j = 0;
            while j + NR <= n {
                let mut i = 0;
                while i < m_blocked {
                    let mut acc = [[_mm512_setzero_ps(); 2]; MR];
                    for p in 0..k {
                        let b0 = _mm512_loadu_ps(b_ptr.add(p * n + j));
                        let b1 = _mm512_loadu_ps(b_ptr.add(p * n + j + 16));
                        for (r, acc_row) in acc.iter_mut().enumerate() {
                            let scale = _mm512_set1_ps(*a_ptr.add((i + r) * k + p));
                            acc_row[0] = _mm512_fmadd_ps(scale, b0, acc_row[0]);
                            acc_row[1] = _mm512_fmadd_ps(scale, b1, acc_row[1]);
                        }
                    }
                    for (r, acc_row) in acc.iter().enumerate() {
                        _mm512_storeu_ps(c_ptr.add((i + r) * n + j), acc_row[0]);
                        _mm512_storeu_ps(c_ptr.add((i + r) * n + j + 16), acc_row[1]);
                    }
                    i += MR;
                }
                while i < m {
                    let mut acc0 = _mm512_setzero_ps();
                    let mut acc1 = _mm512_setzero_ps();
                    for p in 0..k {
                        let b0 = _mm512_loadu_ps(b_ptr.add(p * n + j));
                        let b1 = _mm512_loadu_ps(b_ptr.add(p * n + j + 16));
                        let scale = _mm512_set1_ps(*a_ptr.add(i * k + p));
                        acc0 = _mm512_fmadd_ps(scale, b0, acc0);
                        acc1 = _mm512_fmadd_ps(scale, b1, acc1);
                    }
                    _mm512_storeu_ps(c_ptr.add(i * n + j), acc0);
                    _mm512_storeu_ps(c_ptr.add(i * n + j + 16), acc1);
                    i += 1;
                }
                j += NR;
            }

            // Column tail: masked 16-lane strips.
            while j < n {
                let width = (n - j).min(16);
                let mask: __mmask16 = if width == 16 {
                    0xFFFF
                } else {
                    (1u16 << width) - 1
                };

                let mut i = 0;
                while i < m_blocked {
                    let mut acc = [_mm512_setzero_ps(); MR];
                    for p in 0..k {
                        let b_vec = _mm512_maskz_loadu_ps(mask, b_ptr.add(p * n + j));
                        for (r, acc_row) in acc.iter_mut().enumerate() {
                            let scale = _mm512_set1_ps(*a_ptr.add((i + r) * k + p));
                            *acc_row = _mm512_fmadd_ps(scale, b_vec, *acc_row);
                        }
                    }
                    for (r, acc_row) in acc.iter().enumerate() {
                        _mm512_mask_storeu_ps(c_ptr.add((i + r) * n + j), mask, *acc_row);
                    }
                    i += MR;
                }
                while i < m {
                    let mut acc = _mm512_setzero_ps();
                    for p in 0..k {
                        let b_vec = _mm512_maskz_loadu_ps(mask, b_ptr.add(p * n + j));
                        let scale = _mm512_set1_ps(*a_ptr.add(i * k + p));
                        acc = _mm512_fmadd_ps(scale, b_vec, acc);
                    }
                    _mm512_mask_storeu_ps(c_ptr.add(i * n + j), mask, acc);
                    i += 1;
                }
                j += width;
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2 {
        use std::arch::x86_64::*;

        /// Rows per register block.
        const MR: usize = 4;
        /// Columns per register block (two 8-lane vectors).
        const NR: usize = 16;

        /// Register-blocked GEMM: 4×16 blocks of `c` are held in eight YMM accumulators
        /// across the whole `k` reduction, so every `b` load is reused four times and every
        /// FMA issues back-to-back — the reuse a 1-row GEMV cannot express, which is what
        /// separates the batched from the per-sample execution cost.
        ///
        /// # Safety
        /// Requires AVX2+FMA; slices must have the advertised `m·k` / `k·n` / `m·n` lengths.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub unsafe fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
            let a_ptr = a.as_ptr();
            let b_ptr = b.as_ptr();
            let c_ptr = c.as_mut_ptr();
            let n_blocked = n - n % NR;
            let m_blocked = m - m % MR;

            let mut i = 0;
            while i < m_blocked {
                let mut j = 0;
                while j < n_blocked {
                    let mut acc00 = _mm256_setzero_ps();
                    let mut acc01 = _mm256_setzero_ps();
                    let mut acc10 = _mm256_setzero_ps();
                    let mut acc11 = _mm256_setzero_ps();
                    let mut acc20 = _mm256_setzero_ps();
                    let mut acc21 = _mm256_setzero_ps();
                    let mut acc30 = _mm256_setzero_ps();
                    let mut acc31 = _mm256_setzero_ps();
                    for p in 0..k {
                        let b0 = _mm256_loadu_ps(b_ptr.add(p * n + j));
                        let b1 = _mm256_loadu_ps(b_ptr.add(p * n + j + 8));
                        let a0 = _mm256_set1_ps(*a_ptr.add(i * k + p));
                        acc00 = _mm256_fmadd_ps(a0, b0, acc00);
                        acc01 = _mm256_fmadd_ps(a0, b1, acc01);
                        let a1 = _mm256_set1_ps(*a_ptr.add((i + 1) * k + p));
                        acc10 = _mm256_fmadd_ps(a1, b0, acc10);
                        acc11 = _mm256_fmadd_ps(a1, b1, acc11);
                        let a2 = _mm256_set1_ps(*a_ptr.add((i + 2) * k + p));
                        acc20 = _mm256_fmadd_ps(a2, b0, acc20);
                        acc21 = _mm256_fmadd_ps(a2, b1, acc21);
                        let a3 = _mm256_set1_ps(*a_ptr.add((i + 3) * k + p));
                        acc30 = _mm256_fmadd_ps(a3, b0, acc30);
                        acc31 = _mm256_fmadd_ps(a3, b1, acc31);
                    }
                    _mm256_storeu_ps(c_ptr.add(i * n + j), acc00);
                    _mm256_storeu_ps(c_ptr.add(i * n + j + 8), acc01);
                    _mm256_storeu_ps(c_ptr.add((i + 1) * n + j), acc10);
                    _mm256_storeu_ps(c_ptr.add((i + 1) * n + j + 8), acc11);
                    _mm256_storeu_ps(c_ptr.add((i + 2) * n + j), acc20);
                    _mm256_storeu_ps(c_ptr.add((i + 2) * n + j + 8), acc21);
                    _mm256_storeu_ps(c_ptr.add((i + 3) * n + j), acc30);
                    _mm256_storeu_ps(c_ptr.add((i + 3) * n + j + 8), acc31);
                    j += NR;
                }
                if j < n {
                    super::gemm_scalar(a, b, c, i..i + MR, k, n, j, n);
                }
                i += MR;
            }

            // Row remainder: 1×16 blocks (a SIMD GEMV), then the scalar corner.
            while i < m {
                let mut j = 0;
                while j < n_blocked {
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    for p in 0..k {
                        let b0 = _mm256_loadu_ps(b_ptr.add(p * n + j));
                        let b1 = _mm256_loadu_ps(b_ptr.add(p * n + j + 8));
                        let a0 = _mm256_set1_ps(*a_ptr.add(i * k + p));
                        acc0 = _mm256_fmadd_ps(a0, b0, acc0);
                        acc1 = _mm256_fmadd_ps(a0, b1, acc1);
                    }
                    _mm256_storeu_ps(c_ptr.add(i * n + j), acc0);
                    _mm256_storeu_ps(c_ptr.add(i * n + j + 8), acc1);
                    j += NR;
                }
                if j < n {
                    super::gemm_scalar(a, b, c, i..i + 1, k, n, j, n);
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols(), m.len()), (2, 3, 6));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert!(!m.is_empty());
        let r = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!((r.rows(), r.cols()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn sparse_kernel_matches_dense_kernel() {
        // Dense, post-ReLU-like and one-hot left operands must all give identical products.
        let b = Matrix::xavier_seeded(6, 5, 21);
        let mut left_variants = vec![Matrix::xavier_seeded(4, 6, 20)];
        let mut relu_like = Matrix::xavier_seeded(4, 6, 22);
        for v in relu_like.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        left_variants.push(relu_like);
        let mut one_hot = Matrix::zeros(4, 6);
        for r in 0..4 {
            one_hot.set(r, (r * 5) % 6, 1.0);
        }
        left_variants.push(one_hot);
        for a in left_variants {
            let dense = a.matmul(&b);
            let sparse = a.matmul_sparse(&b);
            // The kernels may differ in FMA contraction, so compare to float tolerance.
            for (x, y) in dense.data().iter().zip(sparse.data()) {
                assert!((x - y).abs() < 1e-6, "dense {x} vs sparse {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::xavier_seeded(4, 3, 1);
        let b = Matrix::xavier_seeded(4, 5, 2);
        let c = Matrix::xavier_seeded(5, 3, 3);
        // a^T * b == transpose(a).matmul(b)
        let expected = a.transpose().matmul(&b);
        for actual in [a.transpose_matmul(&b), a.transpose_matmul_dense(&b)] {
            for (x, y) in expected.data().iter().zip(actual.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
        // a * c^T == a.matmul(transpose(c))
        let expected = a.matmul(&c.transpose());
        for actual in [a.matmul_transpose(&c), a.matmul_transpose_dense(&c)] {
            for (x, y) in expected.data().iter().zip(actual.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    /// The dispatched kernel (SIMD where available) must match a plain reference product on
    /// shapes that exercise every register-block remainder combination.
    #[test]
    fn blocked_kernel_matches_reference_on_remainder_shapes() {
        let reference = |a: &Matrix, b: &Matrix| -> Matrix {
            let mut out = Matrix::zeros(a.rows(), b.cols());
            for i in 0..a.rows() {
                for j in 0..b.cols() {
                    let mut acc = 0.0f32;
                    for p in 0..a.cols() {
                        acc += a.get(i, p) * b.get(p, j);
                    }
                    out.set(i, j, acc);
                }
            }
            out
        };
        // m covers {<MR, =MR, MR+r}, n covers {<8, <NR, =NR, NR+r}, k odd/even.
        for (m, k, n) in [
            (1, 7, 5),
            (3, 8, 16),
            (4, 91, 64),
            (5, 13, 17),
            (8, 10, 33),
            (13, 24, 91),
            (128, 91, 64),
        ] {
            let a = Matrix::xavier_seeded(m, k, (m * 31 + n) as u64);
            let b = Matrix::xavier_seeded(k, n, (n * 17 + k) as u64);
            let expected = reference(&a, &b);
            let actual = a.matmul(&b);
            for (index, (x, y)) in expected.data().iter().zip(actual.data()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-4 * x.abs().max(1.0),
                    "({m}x{k}x{n})[{index}]: reference {x} vs kernel {y}"
                );
            }
        }
    }

    #[test]
    fn broadcast_and_elementwise_helpers() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        let other = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        m.add_assign(&other);
        assert_eq!(m.data(), &[12.0, 23.0, 14.0, 25.0]);
        m.scale(0.5);
        assert_eq!(m.data(), &[6.0, 11.5, 7.0, 12.5]);
        m.fill_zero();
        assert_eq!(m.data(), &[0.0; 4]);
    }

    #[test]
    fn column_sums_and_row_mean() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.column_sums(), vec![5.0, 7.0, 9.0]);
        let mean = m.row_mean();
        assert_eq!(mean.data(), &[2.5, 3.5, 4.5]);
        let empty = Matrix::zeros(0, 3);
        assert_eq!(empty.row_mean().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn xavier_initialization_is_bounded_and_seeded() {
        let a = Matrix::xavier_seeded(10, 20, 7);
        let b = Matrix::xavier_seeded(10, 20, 7);
        assert_eq!(a, b);
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    proptest! {
        #[test]
        fn prop_matmul_is_associative_with_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::xavier_seeded(rows, cols, seed);
            let mut identity = Matrix::zeros(cols, cols);
            for i in 0..cols {
                identity.set(i, i, 1.0);
            }
            let result = m.matmul(&identity);
            for (a, b) in m.data().iter().zip(result.data()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::xavier_seeded(rows, cols, seed);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_row_mean_is_bounded_by_extremes(rows in 1usize..8, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::xavier_seeded(rows, cols, seed);
            let mean = m.row_mean();
            for c in 0..cols {
                let col_values: Vec<f32> = (0..rows).map(|r| m.get(r, c)).collect();
                let lo = col_values.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = col_values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(mean.get(0, c) >= lo - 1e-6 && mean.get(0, c) <= hi + 1e-6);
            }
        }
    }
}
