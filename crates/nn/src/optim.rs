//! The Adam optimizer.
//!
//! The paper trains both CRN and MSCN with Adam (§3.3, citing Kingma & Ba).  The implementation
//! follows the original algorithm with bias-corrected moment estimates.

use crate::layers::Param;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Adam optimizer state and hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper's default is `0.001`, §3.5).
    pub learning_rate: f32,
    /// Exponential decay rate of the first moment.
    pub beta1: f32,
    /// Exponential decay rate of the second moment.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub epsilon: f32,
    /// Number of optimizer steps taken so far (used for bias correction).
    pub step_count: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's default hyperparameters.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
        }
    }

    /// Performs one update step over the given parameters, consuming their accumulated
    /// gradients (which are cleared afterwards).
    pub fn step(&mut self, params: Vec<&mut Param>) {
        self.advance();
        let (bias1, bias2) = self.bias_corrections();
        for param in params {
            debug_assert_eq!(param.value.len(), param.grad.len());
            let grads = param.grad.data().to_vec();
            self.update_param(param, &grads, bias1, bias2);
            param.zero_grad();
        }
    }

    /// Performs one update step reading the gradients from `grads` (one matrix per
    /// parameter, in the same order) instead of the parameters' own accumulators.
    ///
    /// This is the data-parallel training path: per-shard gradients are merged into a
    /// [`crate::parallel::GradientSet`] and applied here in one pass, so the parameters'
    /// `grad` accumulators are never touched (and are left unchanged).  The update
    /// arithmetic is identical to [`Adam::step`] — only the gradient source differs.
    ///
    /// # Panics
    /// Panics if `grads` does not match the parameters in arity or element counts.
    pub fn step_with(&mut self, params: Vec<&mut Param>, grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "one gradient per parameter");
        self.advance();
        let (bias1, bias2) = self.bias_corrections();
        for (param, grad) in params.into_iter().zip(grads) {
            assert_eq!(param.value.len(), grad.len(), "gradient shape mismatch");
            self.update_param(param, grad.data(), bias1, bias2);
        }
    }

    /// Advances the step counter (shared prologue of the step variants).
    fn advance(&mut self) {
        self.step_count += 1;
    }

    /// The bias-correction denominators of the current step.
    fn bias_corrections(&self) -> (f32, f32) {
        let t = self.step_count as f32;
        (1.0 - self.beta1.powf(t), 1.0 - self.beta2.powf(t))
    }

    /// The core Adam update of one parameter tensor against an explicit gradient slice.
    fn update_param(&self, param: &mut Param, grads: &[f32], bias1: f32, bias2: f32) {
        let values = param.value.data_mut();
        let m = param.m.data_mut();
        let v = param.v.data_mut();
        for i in 0..grads.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            values[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new(0.001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn adam_moves_parameters_against_the_gradient() {
        let mut param = Param::new(Matrix::from_vec(1, 2, vec![1.0, -1.0]));
        param.grad = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let mut adam = Adam::new(0.1);
        adam.step(vec![&mut param]);
        // A positive gradient decreases the value, a negative gradient increases it.
        assert!(param.value.get(0, 0) < 1.0);
        assert!(param.value.get(0, 1) > -1.0);
        // Gradients are cleared after the step.
        assert_eq!(param.grad.data(), &[0.0, 0.0]);
        assert_eq!(adam.step_count, 1);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimize f(x) = (x - 3)^2 starting from 0.
        let mut param = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.05);
        for _ in 0..2000 {
            let x = param.value.get(0, 0);
            param.grad = Matrix::from_vec(1, 1, vec![2.0 * (x - 3.0)]);
            adam.step(vec![&mut param]);
        }
        assert!((param.value.get(0, 0) - 3.0).abs() < 1e-2);
    }

    /// `step_with` over external gradients must produce bit-identical parameters, moments
    /// and step count as `step` over accumulated gradients — it is the same update, the
    /// data-parallel engine only changes where the gradients live.
    #[test]
    fn step_with_matches_step_exactly() {
        let mut via_grad = Param::new(Matrix::from_vec(1, 3, vec![0.4, -0.8, 1.5]));
        let mut via_set = via_grad.clone();
        let mut adam_a = Adam::new(0.01);
        let mut adam_b = Adam::new(0.01);
        for step in 0..5 {
            let grads = Matrix::from_vec(1, 3, vec![0.3 * step as f32, -0.2, 0.05]);
            via_grad.grad = grads.clone();
            adam_a.step(vec![&mut via_grad]);
            adam_b.step_with(vec![&mut via_set], std::slice::from_ref(&grads));
        }
        assert_eq!(via_grad.value, via_set.value);
        assert_eq!(via_grad.m, via_set.m);
        assert_eq!(via_grad.v, via_set.v);
        assert_eq!(adam_a.step_count, adam_b.step_count);
        // step_with leaves the accumulator untouched.
        assert_eq!(via_set.grad.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one gradient per parameter")]
    fn step_with_rejects_arity_mismatch() {
        let mut param = Param::new(Matrix::zeros(1, 2));
        Adam::default().step_with(vec![&mut param], &[]);
    }

    #[test]
    fn zero_gradient_leaves_parameters_nearly_unchanged() {
        let mut param = Param::new(Matrix::from_vec(1, 2, vec![0.5, 0.25]));
        let before = param.value.clone();
        let mut adam = Adam::default();
        adam.step(vec![&mut param]);
        for (a, b) in before.data().iter().zip(param.value.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
