//! Trainable parameters, dense layers and activations with hand-written backpropagation.
//!
//! The two networks in the paper (the CRN set encoders + `MLPout`, and the MSCN set modules +
//! output MLP) are compositions of the exact same primitives: fully-connected layers, ReLU,
//! sigmoid and average pooling.  Rather than shipping a generic autograd, each primitive
//! exposes an explicit `forward` and `backward`, and the models compose them; a
//! finite-difference gradient check in this crate's tests guards the hand-written derivatives.

use crate::batch::RaggedBatch;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor together with its gradient accumulator and Adam moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Matrix,
    /// Accumulated gradient of the current mini-batch.
    pub grad: Matrix,
    /// Adam first-moment estimate.
    pub m: Matrix,
    /// Adam second-moment estimate.
    pub v: Matrix,
}

impl Param {
    /// Creates a parameter from initial values, with zeroed gradient and moments.
    pub fn new(value: Matrix) -> Self {
        let shape = (value.rows(), value.cols());
        Param {
            value,
            grad: Matrix::zeros(shape.0, shape.1),
            m: Matrix::zeros(shape.0, shape.1),
            v: Matrix::zeros(shape.0, shape.1),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns true when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A fully-connected layer `y = x W + b`.
///
/// `W` has shape `(input_dim, output_dim)` and `b` has shape `(1, output_dim)`; inputs are
/// batches of row vectors `(batch, input_dim)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix.
    pub w: Param,
    /// Bias row vector.
    pub b: Param,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        Dense {
            w: Param::new(Matrix::xavier_seeded(input_dim, output_dim, seed)),
            b: Param::new(Matrix::zeros(1, output_dim)),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass: `x (batch×in) -> (batch×out)`, for dense inputs.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Forward pass for inputs known to be mostly zeros (one-hot featurized query vectors,
    /// post-ReLU activations) — same result as [`Dense::forward`] through the zero-skipping
    /// kernel ([`Matrix::matmul_sparse`]).
    pub fn forward_sparse(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul_sparse(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Backward pass.
    ///
    /// Accumulates `dL/dW = x^T · grad_y` and `dL/db = Σ_batch grad_y` into the parameter
    /// gradients and returns `dL/dx = grad_y · W^T`.
    pub fn backward(&mut self, x: &Matrix, grad_y: &Matrix) -> Matrix {
        let grad_w = x.transpose_matmul(grad_y);
        self.w.grad.add_assign(&grad_w);
        let bias_grad = Matrix::row_vector(&grad_y.column_sums());
        self.b.grad.add_assign(&bias_grad);
        grad_y.matmul_transpose(&self.w.value)
    }

    /// Backward pass for dense operands of batched shapes: same gradients as
    /// [`Dense::backward`], but both contractions run through the blocked dense kernel
    /// ([`Matrix::transpose_matmul_dense`] / [`Matrix::matmul_transpose_dense`]).
    pub fn backward_dense(&mut self, x: &Matrix, grad_y: &Matrix) -> Matrix {
        let (grad_w, grad_b, grad_x) = self.backward_dense_calc(x, grad_y);
        self.w.grad.add_assign(&grad_w);
        self.b.grad.add_assign(&grad_b);
        grad_x
    }

    /// Non-mutating form of [`Dense::backward_dense`]: returns `(dL/dW, dL/db, dL/dx)`
    /// without touching the parameter gradient accumulators.  The data-parallel training
    /// engine uses this so every shard of a mini-batch can accumulate into its own private
    /// [`crate::parallel::GradientSet`] while sharing one read-only model.
    pub fn backward_dense_calc(&self, x: &Matrix, grad_y: &Matrix) -> (Matrix, Matrix, Matrix) {
        let grad_w = x.transpose_matmul_dense(grad_y);
        let grad_b = Matrix::row_vector(&grad_y.column_sums());
        let grad_x = grad_y.matmul_transpose_dense(&self.w.value);
        (grad_w, grad_b, grad_x)
    }

    /// Backward pass for an *input* layer fed with sparse rows (one-hot featurized query
    /// vectors): accumulates `dL/dW` (through the zero-skipping kernel) and `dL/db`, and
    /// skips the `dL/dx = grad_y · W^T` product entirely — there is nothing upstream of an
    /// input layer to propagate to, and that discarded product is the single largest term of
    /// the set encoders' backward cost.
    pub fn backward_weights_only_sparse(&mut self, x: &Matrix, grad_y: &Matrix) {
        let grad_w = x.transpose_matmul(grad_y);
        self.w.grad.add_assign(&grad_w);
        let bias_grad = Matrix::row_vector(&grad_y.column_sums());
        self.b.grad.add_assign(&bias_grad);
    }

    /// Forward pass over a ragged batch of featurized set rows: iterates the CSR non-zeros
    /// directly when the batch carries them (each row becomes `b + Σ val·W[col]`, a handful
    /// of vector AXPYs instead of a full dense-row scan), falling back to the zero-skipping
    /// dense kernel otherwise.
    pub fn forward_ragged(&self, batch: &RaggedBatch) -> Matrix {
        match batch.sparse() {
            Some(sparse) => {
                let out_dim = self.output_dim();
                let bias = self.b.value.row(0);
                let mut y = Matrix::zeros(batch.num_rows(), out_dim);
                for r in 0..batch.num_rows() {
                    let y_row = y.row_mut(r);
                    y_row.copy_from_slice(bias);
                    for (col, val) in sparse.row(r) {
                        for (o, &w) in y_row.iter_mut().zip(self.w.value.row(col)) {
                            *o += val * w;
                        }
                    }
                }
                y
            }
            // No CSR view means the rows were judged too dense for it — so route through
            // the blocked dense kernel, not the zero-skip one.
            None => self.forward(batch.rows()),
        }
    }

    /// [`Dense::backward_weights_only_sparse`] over a ragged batch: accumulates `dL/dW` by
    /// scattering each non-zero input against its gradient row (CSR when available).
    pub fn backward_ragged_weights_only(&mut self, batch: &RaggedBatch, grad_y: &Matrix) {
        Dense::accumulate_ragged_weights_only(batch, grad_y, &mut self.w.grad, &mut self.b.grad);
    }

    /// [`Dense::backward_ragged_weights_only`] into caller-provided gradient buffers (which
    /// need not belong to any layer): the form the data-parallel engine uses to scatter an
    /// input layer's weight gradient directly into a shard's private
    /// [`crate::parallel::GradientSet`], with no intermediate allocation on the CSR path.
    pub fn accumulate_ragged_weights_only(
        batch: &RaggedBatch,
        grad_y: &Matrix,
        grad_w: &mut Matrix,
        grad_b: &mut Matrix,
    ) {
        match batch.sparse() {
            Some(sparse) => {
                debug_assert_eq!(grad_y.rows(), batch.num_rows());
                for r in 0..batch.num_rows() {
                    let grad_row = grad_y.row(r);
                    for (col, val) in sparse.row(r) {
                        for (o, &g) in grad_w.row_mut(col).iter_mut().zip(grad_row) {
                            *o += val * g;
                        }
                    }
                }
                let bias_grad = Matrix::row_vector(&grad_y.column_sums());
                grad_b.add_assign(&bias_grad);
            }
            // No CSR view ⇒ dense rows ⇒ dense transpose kernel for the weight gradient.
            None => {
                let delta = batch.rows().transpose_matmul_dense(grad_y);
                grad_w.add_assign(&delta);
                let bias_grad = Matrix::row_vector(&grad_y.column_sums());
                grad_b.add_assign(&bias_grad);
            }
        }
    }

    /// The `(rows, cols)` shapes of the layer's parameters in `[W, b]` order — the building
    /// block models use to size their [`crate::parallel::GradientSet`]s.
    pub fn grad_shapes(&self) -> [(usize, usize); 2] {
        [
            (self.w.value.rows(), self.w.value.cols()),
            (self.b.value.rows(), self.b.value.cols()),
        ]
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }

    /// All parameters of the layer (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// ReLU activation: forward pass.
pub fn relu(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    relu_in_place(&mut out);
    out
}

/// ReLU applied in place — the allocation-free form the batched engine uses (the
/// pre-activations are consumed: the activation itself serves as the backward mask, since
/// `a == 0 ⇔ z ≤ 0`).  Written branch-free (`max`) — a sign branch on activation data
/// mispredicts ~50% of the time and measured ~10× slower on batch-sized tensors.
pub fn relu_in_place(x: &mut Matrix) {
    for v in x.data_mut() {
        *v = v.max(0.0);
    }
}

/// ReLU activation: backward pass. `pre_activation` is the input that was fed to [`relu`] —
/// or, equivalently, the *output* of [`relu`] (the mask `x ≤ 0` is identical for both, since
/// the activation is zero exactly where the pre-activation was non-positive).
pub fn relu_backward(pre_activation: &Matrix, grad_out: &Matrix) -> Matrix {
    let mut grad = grad_out.clone();
    relu_backward_in_place(pre_activation, &mut grad);
    grad
}

/// In-place form of [`relu_backward`]: masks `grad` directly (no allocation).  The mask is
/// applied as a 0/1 multiply — branch-free and vectorizable, unlike a sign test on
/// unpredictable activation data.
pub fn relu_backward_in_place(pre_activation: &Matrix, grad: &mut Matrix) {
    assert_eq!(pre_activation.rows(), grad.rows());
    assert_eq!(pre_activation.cols(), grad.cols());
    for (g, &x) in grad.data_mut().iter_mut().zip(pre_activation.data()) {
        *g *= (x > 0.0) as u8 as f32;
    }
}

/// Sigmoid activation: forward pass.
pub fn sigmoid(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    sigmoid_in_place(&mut out);
    out
}

/// Sigmoid applied in place (allocation-free form for the batched engine).
pub fn sigmoid_in_place(x: &mut Matrix) {
    for v in x.data_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// Sigmoid activation: backward pass. `activated` is the **output** of [`sigmoid`].
pub fn sigmoid_backward(activated: &Matrix, grad_out: &Matrix) -> Matrix {
    assert_eq!(activated.rows(), grad_out.rows());
    assert_eq!(activated.cols(), grad_out.cols());
    let mut grad = grad_out.clone();
    for (g, &y) in grad.data_mut().iter_mut().zip(activated.data()) {
        *g *= y * (1.0 - y);
    }
    grad
}

/// Average pooling over the rows of a set representation: `(n×d) -> (1×d)`.
///
/// This is the paper's set aggregation (§3.2.2): the representative vector of a query is the
/// *average* of the transformed element vectors (average rather than sum, to generalize over
/// different set sizes).
pub fn mean_pool(x: &Matrix) -> Matrix {
    x.row_mean()
}

/// Backward pass of [`mean_pool`]: distributes the output gradient equally over the rows.
pub fn mean_pool_backward(num_rows: usize, grad_out: &Matrix) -> Matrix {
    assert_eq!(grad_out.rows(), 1, "mean_pool output is a single row");
    let mut grad = Matrix::zeros(num_rows, grad_out.cols());
    if num_rows == 0 {
        return grad;
    }
    let scale = 1.0 / num_rows as f32;
    for r in 0..num_rows {
        for (g, &o) in grad.row_mut(r).iter_mut().zip(grad_out.row(0)) {
            *g = o * scale;
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_matches_manual_computation() {
        let mut layer = Dense::new(2, 2, 1);
        layer.w.value = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        layer.b.value = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
        assert_eq!(layer.input_dim(), 2);
        assert_eq!(layer.output_dim(), 2);
        assert_eq!(layer.num_params(), 6);
    }

    #[test]
    fn dense_backward_accumulates_gradients() {
        let mut layer = Dense::new(2, 1, 3);
        layer.w.value = Matrix::from_vec(2, 1, vec![1.0, -1.0]);
        layer.b.value = Matrix::zeros(1, 1);
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let grad_y = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let grad_x = layer.backward(&x, &grad_y);
        // dL/dW = x^T grad_y = [[4], [6]]
        assert_eq!(layer.w.grad.data(), &[4.0, 6.0]);
        // dL/db = sum of grad_y = 2
        assert_eq!(layer.b.grad.data(), &[2.0]);
        // dL/dx = grad_y W^T = [[1, -1], [1, -1]]
        assert_eq!(grad_x.data(), &[1.0, -1.0, 1.0, -1.0]);
        layer.zero_grad();
        assert_eq!(layer.w.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let grad = relu_backward(&x, &Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(grad.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_and_backward() {
        let x = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let y = sigmoid(&x);
        assert!(y.get(0, 0) < 1e-4);
        assert!((y.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(y.get(0, 2) > 1.0 - 1e-4);
        let grad = sigmoid_backward(&y, &Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]));
        // Derivative peaks at 0.25 for input 0 and vanishes at the saturated ends.
        assert!((grad.get(0, 1) - 0.25).abs() < 1e-6);
        assert!(grad.get(0, 0) < 1e-4 && grad.get(0, 2) < 1e-4);
    }

    #[test]
    fn mean_pool_and_backward() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let pooled = mean_pool(&x);
        assert_eq!(pooled.data(), &[2.0, 3.0]);
        let grad = mean_pool_backward(2, &Matrix::from_vec(1, 2, vec![4.0, 8.0]));
        assert_eq!(grad.data(), &[2.0, 4.0, 2.0, 4.0]);
        assert_eq!(mean_pool_backward(0, &Matrix::zeros(1, 2)).rows(), 0);
    }

    /// Finite-difference gradient check of a two-layer network with ReLU and sigmoid:
    /// the analytic gradients produced by the hand-written backward passes must match
    /// numerical differentiation of the loss.
    #[test]
    fn gradient_check_dense_relu_dense_sigmoid() {
        let mut l1 = Dense::new(3, 4, 11);
        let mut l2 = Dense::new(4, 1, 12);
        let x = Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.7, 0.1, 0.5, -0.4]);
        let target = [0.3f32, 0.8];

        // Forward + backward once to collect analytic gradients.
        let forward = |l1: &Dense, l2: &Dense| -> (Matrix, Matrix, Matrix, Matrix) {
            let z1 = l1.forward(&x);
            let a1 = relu(&z1);
            let z2 = l2.forward(&a1);
            let y = sigmoid(&z2);
            (z1, a1, z2, y)
        };
        let loss_of = |y: &Matrix| -> f32 {
            // Simple squared error loss.
            y.data()
                .iter()
                .zip(target.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
                / y.rows() as f32
        };

        let (z1, a1, _z2, y) = forward(&l1, &l2);
        // dL/dy for the squared error above.
        let mut grad_y = Matrix::zeros(y.rows(), y.cols());
        #[allow(clippy::needless_range_loop)]
        for i in 0..y.rows() {
            grad_y.set(i, 0, 2.0 * (y.get(i, 0) - target[i]) / y.rows() as f32);
        }
        let grad_z2 = sigmoid_backward(&y, &grad_y);
        let grad_a1 = l2.backward(&a1, &grad_z2);
        let grad_z1 = relu_backward(&z1, &grad_a1);
        let _ = l1.backward(&x, &grad_z1);

        // Numerically check a handful of weights from both layers.
        let epsilon = 1e-2f32;
        let check = |layer_sel: usize,
                     row: usize,
                     col: usize,
                     analytic: f32,
                     l1: &mut Dense,
                     l2: &mut Dense| {
            let read = |l1: &Dense, l2: &Dense| {
                let (_, _, _, y) = forward(l1, l2);
                loss_of(&y)
            };
            let bump = |l1: &mut Dense, l2: &mut Dense, delta: f32| {
                let target = if layer_sel == 0 { &mut l1.w } else { &mut l2.w };
                let old = target.value.get(row, col);
                target.value.set(row, col, old + delta);
            };
            bump(l1, l2, epsilon);
            let plus = read(l1, l2);
            bump(l1, l2, -2.0 * epsilon);
            let minus = read(l1, l2);
            bump(l1, l2, epsilon);
            let numeric = (plus - minus) / (2.0 * epsilon);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "gradient mismatch at layer {layer_sel} ({row},{col}): numeric {numeric} vs analytic {analytic}"
            );
        };

        for (row, col) in [(0usize, 0usize), (1, 2), (2, 3)] {
            let analytic = l1.w.grad.get(row, col);
            check(0, row, col, analytic, &mut l1, &mut l2);
        }
        for (row, col) in [(0usize, 0usize), (3, 0)] {
            let analytic = l2.w.grad.get(row, col);
            check(1, row, col, analytic, &mut l1, &mut l2);
        }
    }
}
