//! Training objectives: the q-error loss, mean squared error and mean absolute error.
//!
//! The paper optimizes the **mean q-error** — `max(ŷ/y, y/ŷ)` — because the ratio between
//! predicted and actual values is exactly what matters for plan costing; MSE and MAE are also
//! implemented because §3.2.4 examines them as alternative objectives (and our ablation bench
//! reproduces that comparison).

use serde::{Deserialize, Serialize};

/// The training objective to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Mean q-error (the paper's choice).
    QError,
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
}

/// The q-error of a single prediction: `max(ŷ/y, y/ŷ)`.
///
/// Both values are clamped to `floor` so that zero targets (empty queries / 0% containment)
/// do not produce infinite errors; the paper's metric is only evaluated on positive values.
pub fn q_error(prediction: f64, truth: f64, floor: f64) -> f64 {
    let p = prediction.max(floor);
    let t = truth.max(floor);
    if p > t {
        p / t
    } else {
        t / p
    }
}

/// The mean q-error over a slice of `(prediction, truth)` pairs.
pub fn mean_q_error(pairs: &[(f64, f64)], floor: f64) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|&(p, t)| q_error(p, t, floor))
        .sum::<f64>()
        / pairs.len() as f64
}

/// Per-sample loss value and its derivative with respect to the prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossValue {
    /// The loss value.
    pub loss: f32,
    /// `dL/dŷ`.
    pub grad: f32,
}

/// Computes one sample's loss and gradient for the given objective.
///
/// For [`LossKind::QError`], both prediction and target are clamped to `floor > 0` before the
/// ratio is formed; the gradient is the sub-gradient of `max(ŷ/y, y/ŷ)`:
/// `1/y` when `ŷ ≥ y` and `-y/ŷ²` otherwise (zero when the prediction is at the clamp floor
/// and the gradient would push it further down).
pub fn loss_and_grad(kind: LossKind, prediction: f32, target: f32, floor: f32) -> LossValue {
    match kind {
        LossKind::QError => {
            let clamped_pred = prediction.max(floor);
            let clamped_target = target.max(floor);
            if clamped_pred >= clamped_target {
                let grad = if prediction <= floor {
                    0.0
                } else {
                    1.0 / clamped_target
                };
                LossValue {
                    loss: clamped_pred / clamped_target,
                    grad,
                }
            } else {
                let grad = if prediction <= floor {
                    0.0
                } else {
                    -clamped_target / (clamped_pred * clamped_pred)
                };
                LossValue {
                    loss: clamped_target / clamped_pred,
                    grad,
                }
            }
        }
        LossKind::Mse => {
            let diff = prediction - target;
            LossValue {
                loss: diff * diff,
                grad: 2.0 * diff,
            }
        }
        LossKind::Mae => {
            let diff = prediction - target;
            LossValue {
                loss: diff.abs(),
                grad: if diff >= 0.0 { 1.0 } else { -1.0 },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 10.0, 1e-6), 1.0);
        assert_eq!(q_error(10.0, 5.0, 1e-6), 2.0);
        assert_eq!(q_error(5.0, 10.0, 1e-6), 2.0);
    }

    #[test]
    fn q_error_clamps_zero_values() {
        let floor = 1.0;
        assert!(q_error(0.0, 100.0, floor).is_finite());
        assert_eq!(q_error(0.0, 100.0, floor), 100.0);
        assert_eq!(q_error(100.0, 0.0, floor), 100.0);
    }

    #[test]
    fn mean_q_error_averages() {
        let pairs = [(2.0, 1.0), (1.0, 4.0)];
        assert_eq!(mean_q_error(&pairs, 1e-6), 3.0);
        assert_eq!(mean_q_error(&[], 1e-6), 0.0);
    }

    #[test]
    fn qerror_gradient_signs() {
        // Over-estimation: positive gradient pushes the prediction down.
        let over = loss_and_grad(LossKind::QError, 4.0, 2.0, 1e-3);
        assert!(over.grad > 0.0);
        assert_eq!(over.loss, 2.0);
        // Under-estimation: negative gradient pushes the prediction up.
        let under = loss_and_grad(LossKind::QError, 1.0, 2.0, 1e-3);
        assert!(under.grad < 0.0);
        assert_eq!(under.loss, 2.0);
        // At the floor the gradient is muted to avoid chasing the clamp.
        let floored = loss_and_grad(LossKind::QError, 0.0, 2.0, 1e-3);
        assert_eq!(floored.grad, 0.0);
    }

    #[test]
    fn qerror_gradient_matches_finite_differences() {
        let floor = 1e-3;
        // Points away from the kink at ŷ = y, where the central difference is valid.
        for (p, t) in [(0.3f32, 0.7f32), (0.9, 0.2), (2.0, 8.0), (5.0, 1.5)] {
            let analytic = loss_and_grad(LossKind::QError, p, t, floor).grad;
            let eps = 1e-3;
            let plus = loss_and_grad(LossKind::QError, p + eps, t, floor).loss;
            let minus = loss_and_grad(LossKind::QError, p - eps, t, floor).loss;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "({p},{t}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn mse_and_mae_values_and_gradients() {
        let mse = loss_and_grad(LossKind::Mse, 3.0, 1.0, 0.0);
        assert_eq!(mse.loss, 4.0);
        assert_eq!(mse.grad, 4.0);
        let mae = loss_and_grad(LossKind::Mae, 1.0, 3.0, 0.0);
        assert_eq!(mae.loss, 2.0);
        assert_eq!(mae.grad, -1.0);
    }

    proptest! {
        #[test]
        fn prop_q_error_at_least_one(p in 1e-3f64..1e6, t in 1e-3f64..1e6) {
            prop_assert!(q_error(p, t, 1e-6) >= 1.0);
        }

        #[test]
        fn prop_q_error_symmetric(p in 1e-3f64..1e6, t in 1e-3f64..1e6) {
            let a = q_error(p, t, 1e-6);
            let b = q_error(t, p, 1e-6);
            prop_assert!((a - b).abs() / a.max(b) < 1e-9);
        }
    }
}
