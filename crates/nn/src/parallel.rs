//! Data-parallel epoch execution: a `std::thread`-scoped shard pool with deterministic
//! gradient reduction.
//!
//! Mini-batch training is data-parallel up to the optimizer step: the per-sample losses and
//! gradients of one mini-batch are independent, only their *sum* feeds Adam.  This module
//! supplies the machinery the CRN and MSCN training loops use to exploit that:
//!
//! * [`ThreadPoolConfig`] — how many worker threads to use and whether to run in
//!   *deterministic* mode;
//! * [`run_sharded`] — a scoped shard pool: `num_shards` independent work items executed by
//!   at most `threads` `std::thread::scope` workers (the vendored-deps policy rules out
//!   rayon), results returned **in canonical shard order** regardless of which worker ran
//!   which shard;
//! * [`WorkerPool`] — the persistent (spawn-once) form of the same shard pool, shared
//!   process-wide per thread count: training loops and the Cnt2Crd serving layer submit
//!   every mini-batch / per-query job to the same long-lived workers instead of re-spawning
//!   scoped threads per call;
//! * [`GradientSet`] — a model's gradient tensors as plain matrices, detached from the
//!   parameters so every shard can accumulate privately;
//! * [`reduce_gradients`] — merges per-shard gradient sets in a **fixed shard order**
//!   (tree reduction by default, strictly sequential in deterministic mode).
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so *how* shard gradients are merged decides
//! reproducibility:
//!
//! * **Default mode** shards each mini-batch into `threads` pieces and tree-reduces them in
//!   fixed shard order.  Results are bit-for-bit reproducible *for a given thread count*
//!   (re-running with the same `threads` gives identical models), but change when the
//!   thread count changes, because the shard boundaries move.
//! * **Deterministic mode** ([`ThreadPoolConfig::deterministic`]) always splits into
//!   [`DETERMINISTIC_SHARDS`] canonical shards — independent of the thread count — and
//!   reduces them in canonical (sequential) order.  Training is then bit-for-bit identical
//!   at `threads = 1, 2, 4, ...`; the thread count only changes wall-clock time.  The
//!   cross-thread parity tests in `crn-core` and `crn-estimators` pin this.
//!
//! In both modes the work queue hands shards to workers dynamically (an atomic cursor), but
//! every shard's result lands in its own slot and merging happens on the calling thread in
//! shard order, so scheduling jitter never reaches the arithmetic.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Number of canonical shards used by deterministic mode, chosen independently of the
/// thread count so that the f32 reduction order — and therefore the trained model — is
/// identical no matter how many workers execute the shards.  8 keeps per-shard batches
/// large enough for the blocked GEMM kernels at the paper's batch size of 128 while
/// allowing up to 8 workers to help.
pub const DETERMINISTIC_SHARDS: usize = 8;

/// Thread-pool configuration of the data-parallel training engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadPoolConfig {
    /// Number of worker threads for sharded epoch work (`1` disables spawning entirely and
    /// runs the exact single-threaded batched path).
    pub threads: usize,
    /// Deterministic mode: shard each mini-batch into [`DETERMINISTIC_SHARDS`] canonical
    /// pieces and reduce gradients in canonical order, so results are bit-identical for
    /// every thread count (see the module docs for the full contract).
    pub deterministic: bool,
}

impl ThreadPoolConfig {
    /// The exact PR-1 single-threaded batched path: one shard per mini-batch, no spawning.
    pub fn single_threaded() -> Self {
        ThreadPoolConfig {
            threads: 1,
            deterministic: false,
        }
    }

    /// `threads` workers in default (per-thread-count reproducible) mode.
    pub fn with_threads(threads: usize) -> Self {
        ThreadPoolConfig {
            threads: threads.max(1),
            deterministic: false,
        }
    }

    /// `threads` workers in deterministic mode (bit-identical across thread counts).
    pub fn deterministic(threads: usize) -> Self {
        ThreadPoolConfig {
            threads: threads.max(1),
            deterministic: true,
        }
    }

    /// Reads the configuration from the environment: `THREADS` (worker count, default 1)
    /// and `DETERMINISTIC` (`1`/`true`/`yes` enables deterministic mode).  This is what
    /// [`crate::train::TrainConfig::default`] uses, so `THREADS=4 cargo test` runs the whole
    /// suite through the parallel engine — the CI thread-matrix job relies on it.
    pub fn from_env() -> Self {
        Self::parse(
            std::env::var("THREADS").ok().as_deref(),
            std::env::var("DETERMINISTIC").ok().as_deref(),
        )
    }

    /// Pure parsing core of [`ThreadPoolConfig::from_env`] (split out for testability).
    fn parse(threads: Option<&str>, deterministic: Option<&str>) -> Self {
        let threads = threads
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        let deterministic = deterministic.map(str::trim).is_some_and(|v| {
            ["1", "true", "yes"]
                .iter()
                .any(|on| v.eq_ignore_ascii_case(on))
        });
        ThreadPoolConfig {
            threads,
            deterministic,
        }
    }

    /// Number of shards one mini-batch of `num_items` samples is split into: the canonical
    /// [`DETERMINISTIC_SHARDS`] in deterministic mode, else the thread count — capped by the
    /// item count in both cases (a shard is never empty).
    pub fn shard_count(&self, num_items: usize) -> usize {
        if num_items == 0 {
            return 0;
        }
        let shards = if self.deterministic {
            DETERMINISTIC_SHARDS
        } else {
            self.threads.max(1)
        };
        shards.min(num_items)
    }
}

impl Default for ThreadPoolConfig {
    /// Environment-driven ([`ThreadPoolConfig::from_env`]): single-threaded unless `THREADS`
    /// is set.
    fn default() -> Self {
        ThreadPoolConfig::from_env()
    }
}

/// Executes `num_shards` independent work items on at most `threads` scoped workers and
/// returns the results **in shard order**.
///
/// Shards are handed out dynamically (an atomic cursor), so uneven shard costs balance
/// across workers; results are written into per-shard slots, so the returned order — and
/// any reduction the caller performs over it — is independent of scheduling.  The calling
/// thread participates as a worker (only `threads - 1` threads are spawned), so with
/// `threads <= 1` (or a single shard) the work runs inline, spawning nothing.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn run_sharded<T, F>(threads: usize, num_shards: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_shards == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(num_shards);
    if workers <= 1 {
        return (0..num_shards).map(work).collect();
    }
    let cursor = AtomicUsize::new(0);
    let work = &work;
    let drain = |produced: &mut Vec<(usize, T)>| loop {
        let shard = cursor.fetch_add(1, Ordering::Relaxed);
        if shard >= num_shards {
            break;
        }
        produced.push((shard, work(shard)));
    };
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    drain(&mut produced);
                    produced
                })
            })
            .collect();
        // The calling thread is worker 0: it drains the queue alongside the spawned
        // workers instead of blocking idle on the joins.
        let mut own = Vec::new();
        drain(&mut own);
        let mut all = vec![own];
        all.extend(
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard worker panicked")),
        );
        all
    });
    let mut slots: Vec<Option<T>> = (0..num_shards).map(|_| None).collect();
    for (shard, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[shard].is_none(), "shard {shard} produced twice");
        slots[shard] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard produced exactly once"))
        .collect()
}

/// Convenience form of [`run_sharded`] for range-partitioned work: runs `work` once per
/// range of `ranges` and returns the results in range order.
pub fn run_over_ranges<T, F>(threads: usize, ranges: &[Range<usize>], work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    run_sharded(threads, ranges.len(), |shard| work(ranges[shard].clone()))
}

/// A persistent data-parallel worker pool: `threads - 1` workers spawned **once** and reused
/// across jobs, with the same contract as [`run_sharded`] (dynamic shard hand-out via an
/// atomic cursor, results in canonical shard order, the calling thread draining the queue
/// alongside the workers, panics propagated).
///
/// [`run_sharded`] spawns fresh `std::thread::scope` workers per call, which is fine for a
/// handful of epoch-level calls but measurably not for per-mini-batch or per-query work: at
/// PR 2's scale the spawn/join overhead was +24% of a small-batch training epoch.  Training
/// (`CrnModel::fit` / `MscnModel::fit`) and the Cnt2Crd serving layer therefore take a
/// `WorkerPool` handle — obtained once via [`WorkerPool::shared`] — and submit every
/// mini-batch and every per-shard serving job to the same long-lived workers.
///
/// Handles are cheap clones of one shared pool (`Arc` internally); the spawned threads exit
/// when the last handle drops.  Jobs from concurrent submitters are serialized in submission
/// order — the pool runs one job at a time, so per-job determinism is exactly that of
/// [`run_sharded`].  Jobs must not submit nested jobs to the same pool (the nested submit
/// would wait on its own job's completion); shard bodies are expected to be pure compute.
#[derive(Clone)]
pub struct WorkerPool {
    core: Arc<PoolCore>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.core.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (the calling thread counts as one: only
    /// `threads - 1` OS threads are spawned, and `threads <= 1` spawns none and runs every
    /// job inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner::default());
        let handles = (1..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        WorkerPool {
            core: Arc::new(PoolCore {
                inner,
                threads,
                handles,
            }),
        }
    }

    /// Returns the process-wide shared pool for the given thread count, creating (and
    /// spawning) it on first use.  This is how the training loops and the serving layer
    /// amortize thread spawns across *all* mini-batches and queries of the process: every
    /// `ThreadPoolConfig` with the same `threads` resolves to the same OS threads.
    ///
    /// Shared pools live for the remainder of the process (the registry keeps one handle).
    pub fn shared(threads: usize) -> WorkerPool {
        static REGISTRY: OnceLock<Mutex<HashMap<usize, WorkerPool>>> = OnceLock::new();
        let threads = threads.max(1);
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut pools = lock_ignoring_poison(registry);
        pools
            .entry(threads)
            .or_insert_with(|| WorkerPool::new(threads))
            .clone()
    }

    /// The pool's worker count (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Executes `num_shards` work items on the pool and returns the results **in shard
    /// order** — the persistent-pool form of [`run_sharded`], with the identical contract:
    /// shards are handed out dynamically, every result lands in its own slot, and the
    /// returned order is independent of scheduling.
    ///
    /// # Panics
    /// Propagates a panic from any shard's work.
    pub fn run_sharded<T, F>(&self, num_shards: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if num_shards == 0 {
            return Vec::new();
        }
        if self.core.threads <= 1 || num_shards <= 1 {
            return (0..num_shards).map(work).collect();
        }
        let slots: Vec<ResultSlot<T>> = (0..num_shards).map(|_| ResultSlot::new()).collect();
        let slots_ref = &slots;
        let work_ref = &work;
        let task = move |shard: usize| {
            let value = work_ref(shard);
            // SAFETY: the job cursor hands each shard index to exactly one executor, so
            // this is the only writer of slot `shard`.
            unsafe { slots_ref[shard].set(value) };
        };
        let erased: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: `submit_and_drain` blocks until every shard invocation has returned, so
        // the erased borrow of `task` (and everything it captures) outlives all uses.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(erased) };
        let panicked = self.core.inner.submit_and_drain(erased, num_shards);
        if panicked {
            panic!("worker pool shard panicked");
        }
        slots
            .into_iter()
            .map(|slot| slot.take().expect("every shard produced exactly once"))
            .collect()
    }

    /// [`run_over_ranges`] on the persistent pool: runs `work` once per range, results in
    /// range order.
    pub fn run_over_ranges<T, F>(&self, ranges: &[Range<usize>], work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        self.run_sharded(ranges.len(), |shard| work(ranges[shard].clone()))
    }
}

impl ThreadPoolConfig {
    /// The process-shared persistent [`WorkerPool`] for this configuration's thread count.
    pub fn worker_pool(&self) -> WorkerPool {
        WorkerPool::shared(self.threads)
    }
}

/// The user-facing shared state of one pool: dropped when the last [`WorkerPool`] handle
/// drops, which shuts the workers down.
struct PoolCore {
    inner: Arc<PoolInner>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut state = lock_ignoring_poison(&self.inner.state);
            state.shutdown = true;
            self.inner.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job already surfaced through the submit
            // path; at shutdown all that matters is that the thread is gone.
            let _ = handle.join();
        }
    }
}

/// Worker-visible pool state.
#[derive(Default)]
struct PoolInner {
    /// Serializes submitters: one job runs at a time, in submission order.
    submit: Mutex<()>,
    /// The published job and the shutdown flag, guarded for the condvars.
    state: Mutex<JobState>,
    /// Signalled when a new job is published (and at shutdown).
    work_ready: Condvar,
    /// Signalled when a job's last shard completes.
    work_done: Condvar,
}

#[derive(Default)]
struct JobState {
    job: Option<Job>,
    /// Bumped per job so a worker never re-enters the job it just drained.
    generation: u64,
    shutdown: bool,
}

/// One submitted job.  Each job owns its *own* cursor/completion atomics: a worker that
/// wakes up late (or lingers after draining) can only touch the atomics of the job it
/// actually observed, never a successor job's hand-out state.
#[derive(Clone)]
struct Job {
    task: TaskPtr,
    num_shards: usize,
    cursor: Arc<AtomicUsize>,
    completed: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
}

/// The erased task pointer of a [`Job`].
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from many threads is its contract), and
// the submitter keeps it alive until the job completes, which bounds every dereference.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

impl PoolInner {
    /// Publishes a job, drains it from the calling thread alongside the workers, and blocks
    /// until every shard has completed.  Returns whether any shard panicked.
    fn submit_and_drain(&self, task: *const (dyn Fn(usize) + Sync), num_shards: usize) -> bool {
        let _submit = lock_ignoring_poison(&self.submit);
        let job = Job {
            task: TaskPtr(task),
            num_shards,
            cursor: Arc::new(AtomicUsize::new(0)),
            completed: Arc::new(AtomicUsize::new(0)),
            panicked: Arc::new(AtomicBool::new(false)),
        };
        {
            let mut state = lock_ignoring_poison(&self.state);
            debug_assert!(state.job.is_none(), "submitters are serialized");
            state.generation = state.generation.wrapping_add(1);
            state.job = Some(job.clone());
            self.work_ready.notify_all();
        }
        self.drain(&job);
        {
            let mut state = lock_ignoring_poison(&self.state);
            while job.completed.load(Ordering::Acquire) < num_shards {
                state = wait_ignoring_poison(&self.work_done, state);
            }
            state.job = None;
        }
        job.panicked.load(Ordering::Acquire)
    }

    /// Pulls shards off a job's cursor until the queue is exhausted.  Shared by the workers
    /// and the submitting thread.
    fn drain(&self, job: &Job) {
        loop {
            let shard = job.cursor.fetch_add(1, Ordering::Relaxed);
            if shard >= job.num_shards {
                return;
            }
            // SAFETY: the submitter keeps the task alive until `completed == num_shards`,
            // and this dereference strictly precedes this shard's completion increment.
            let task = unsafe { &*job.task.0 };
            if catch_unwind(AssertUnwindSafe(|| task(shard))).is_err() {
                job.panicked.store(true, Ordering::Release);
            }
            if job.completed.fetch_add(1, Ordering::AcqRel) + 1 == job.num_shards {
                // Lock the state mutex before notifying so the submitter cannot check the
                // predicate and then miss this wakeup.
                let _state = lock_ignoring_poison(&self.state);
                self.work_done.notify_all();
            }
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = lock_ignoring_poison(&inner.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    if let Some(job) = &state.job {
                        seen_generation = state.generation;
                        break job.clone();
                    }
                }
                state = wait_ignoring_poison(&inner.work_ready, state);
            }
        };
        inner.drain(&job);
    }
}

/// One shard's result cell: written exactly once by whichever thread ran the shard, read by
/// the submitter after the completion barrier.
struct ResultSlot<T>(UnsafeCell<Option<T>>);

// SAFETY: the job cursor hands each shard index out exactly once, so each cell has exactly
// one writer, and the submitter only reads after the `completed` acquire barrier.
unsafe impl<T: Send> Sync for ResultSlot<T> {}

impl<T> ResultSlot<T> {
    fn new() -> Self {
        ResultSlot(UnsafeCell::new(None))
    }

    /// # Safety
    /// Must be called at most once per slot, by the unique executor of its shard.
    unsafe fn set(&self, value: T) {
        *self.0.get() = Some(value);
    }

    fn take(self) -> Option<T> {
        self.0.into_inner()
    }
}

/// `Mutex::lock` that recovers the guard from a poisoned lock: a panicked shard is already
/// reported through the job's `panicked` flag, and pool state transitions are all
/// exception-safe single-field writes.
///
/// Public because this is the worker pool's wakeup machinery, shared by everything that
/// parks threads against the pool's job lifecycle — `crn-serve`'s submission queue and
/// completion tickets sleep and wake through these same helpers, so a poisoned lock never
/// wedges a serving runtime any more than it wedges the pool itself.
pub fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `Condvar::wait` with the same poison recovery as [`lock_ignoring_poison`].
pub fn wait_ignoring_poison<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `Condvar::wait_timeout` with the same poison recovery as [`lock_ignoring_poison`];
/// returns the guard and whether the wait timed out.
///
/// This is the primitive behind batching *windows*: `crn-serve`'s scheduler parks on its
/// submission queue with the window's remaining time as the timeout, so a new submission
/// wakes it early (to check the size threshold) and an expired window wakes it at the
/// deadline — the same wakeup discipline the worker pool uses for job hand-out, extended
/// with a deadline.
pub fn wait_timeout_ignoring_poison<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: std::time::Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, result)) => (guard, result.timed_out()),
        Err(poisoned) => {
            let (guard, result) = poisoned.into_inner();
            (guard, result.timed_out())
        }
    }
}

/// A model's gradient tensors as plain matrices in a fixed, model-defined parameter order,
/// detached from the parameters themselves so that every shard of a mini-batch can
/// accumulate into its own private set before the merge.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientSet {
    parts: Vec<Matrix>,
}

impl GradientSet {
    /// Creates a zeroed gradient set with one matrix per `(rows, cols)` shape.
    pub fn zeros(shapes: &[(usize, usize)]) -> Self {
        GradientSet {
            parts: shapes
                .iter()
                .map(|&(rows, cols)| Matrix::zeros(rows, cols))
                .collect(),
        }
    }

    /// Number of gradient tensors.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns true when the set holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The gradient tensors in parameter order.
    pub fn parts(&self) -> &[Matrix] {
        &self.parts
    }

    /// Mutable access to the gradient tensors in parameter order.
    pub fn parts_mut(&mut self) -> &mut [Matrix] {
        &mut self.parts
    }

    /// Mutable access to one gradient tensor.
    pub fn part_mut(&mut self, index: usize) -> &mut Matrix {
        &mut self.parts[index]
    }

    /// Mutable access to two distinct gradient tensors at once (e.g. a layer's weight and
    /// bias gradients for a fused scatter).
    ///
    /// # Panics
    /// Panics unless `first < second < len`.
    pub fn pair_mut(&mut self, first: usize, second: usize) -> (&mut Matrix, &mut Matrix) {
        assert!(first < second && second < self.parts.len());
        let (left, right) = self.parts.split_at_mut(second);
        (&mut left[first], &mut right[0])
    }

    /// Element-wise `self += other` over every tensor.
    ///
    /// # Panics
    /// Panics if the two sets disagree in arity or shapes.
    pub fn add_assign(&mut self, other: &GradientSet) {
        assert_eq!(
            self.parts.len(),
            other.parts.len(),
            "gradient arity mismatch"
        );
        for (mine, theirs) in self.parts.iter_mut().zip(&other.parts) {
            mine.add_assign(theirs);
        }
    }
}

/// Merges per-shard gradient sets into one, consuming the shards.
///
/// * `deterministic = false`: **fixed shard-order tree reduction** — pairwise merges with
///   doubling stride (`0+=1, 2+=3, ... then 0+=2, ...`).  The association depends only on
///   the shard *count*, never on scheduling, so results are reproducible for a given
///   thread count.
/// * `deterministic = true`: strictly **canonical (sequential) order** — shard 0 absorbs
///   shard 1, then 2, ... — the association a single thread walking the shards would
///   produce, making the merged gradient independent of how the shard work was scheduled
///   *and* of the thread count (the shard count is canonical in this mode, see
///   [`ThreadPoolConfig::shard_count`]).
///
/// Returns `None` for an empty input.
pub fn reduce_gradients(mut shards: Vec<GradientSet>, deterministic: bool) -> Option<GradientSet> {
    if shards.is_empty() {
        return None;
    }
    if deterministic {
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.add_assign(shard);
        }
        return Some(merged);
    }
    let mut stride = 1;
    while stride < shards.len() {
        let mut left = 0;
        while left + stride < shards.len() {
            let (head, tail) = shards.split_at_mut(left + stride);
            head[left].add_assign(&tail[0]);
            left += 2 * stride;
        }
        stride *= 2;
    }
    Some(shards.swap_remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reads_threads_and_deterministic() {
        assert_eq!(
            ThreadPoolConfig::parse(None, None),
            ThreadPoolConfig::single_threaded()
        );
        assert_eq!(
            ThreadPoolConfig::parse(Some("4"), None),
            ThreadPoolConfig::with_threads(4)
        );
        assert_eq!(
            ThreadPoolConfig::parse(Some(" 2 "), Some("true")),
            ThreadPoolConfig::deterministic(2)
        );
        // Garbage and zero fall back to a single thread.
        assert_eq!(ThreadPoolConfig::parse(Some("zero"), None).threads, 1);
        assert_eq!(ThreadPoolConfig::parse(Some("0"), None).threads, 1);
        assert!(!ThreadPoolConfig::parse(None, Some("no")).deterministic);
        // The deterministic switch is case-insensitive.
        assert!(ThreadPoolConfig::parse(None, Some("TRUE")).deterministic);
        assert!(ThreadPoolConfig::parse(None, Some(" Yes ")).deterministic);
    }

    #[test]
    fn shard_count_is_canonical_in_deterministic_mode() {
        for threads in [1, 2, 4, 16] {
            let config = ThreadPoolConfig::deterministic(threads);
            assert_eq!(config.shard_count(128), DETERMINISTIC_SHARDS);
            assert_eq!(config.shard_count(3), 3, "capped by item count");
            assert_eq!(config.shard_count(0), 0);
        }
        assert_eq!(ThreadPoolConfig::with_threads(4).shard_count(128), 4);
        assert_eq!(ThreadPoolConfig::with_threads(4).shard_count(2), 2);
        assert_eq!(ThreadPoolConfig::single_threaded().shard_count(128), 1);
    }

    #[test]
    fn run_sharded_returns_results_in_shard_order() {
        for threads in [1, 2, 4, 7] {
            let results = run_sharded(threads, 23, |shard| shard * shard);
            assert_eq!(results, (0..23).map(|s| s * s).collect::<Vec<_>>());
        }
        assert!(run_sharded::<usize, _>(4, 0, |_| unreachable!()).is_empty());
    }

    #[test]
    fn run_sharded_balances_uneven_work() {
        // Shard 0 is slow; the dynamic queue must still hand every other shard out and the
        // results must come back in order.
        let results = run_sharded(4, 8, |shard| {
            if shard == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            shard
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_over_ranges_passes_each_range() {
        let ranges = vec![0..3, 3..5, 5..9];
        let lens = run_over_ranges(2, &ranges, |range| range.len());
        assert_eq!(lens, vec![3, 2, 4]);
    }

    fn set_of(values: &[f32]) -> GradientSet {
        let mut set = GradientSet::zeros(&[(1, values.len())]);
        set.part_mut(0).data_mut().copy_from_slice(values);
        set
    }

    #[test]
    fn reductions_sum_every_shard() {
        for deterministic in [false, true] {
            for count in 1..=9usize {
                let shards: Vec<GradientSet> =
                    (0..count).map(|i| set_of(&[i as f32, 1.0])).collect();
                let merged = reduce_gradients(shards, deterministic).expect("non-empty");
                let expected: f32 = (0..count).map(|i| i as f32).sum();
                assert_eq!(merged.parts()[0].data(), &[expected, count as f32]);
            }
            assert!(reduce_gradients(Vec::new(), deterministic).is_none());
        }
    }

    #[test]
    fn sequential_reduction_is_shard_count_order() {
        // With values chosen to expose association, sequential order must equal a plain
        // left fold (this is the canonical order deterministic mode promises).
        let values = [1.0e8f32, 1.0, -1.0e8, 1.0];
        let shards: Vec<GradientSet> = values.iter().map(|&v| set_of(&[v])).collect();
        let merged = reduce_gradients(shards, true).expect("non-empty");
        let folded = values.iter().fold(0.0f32, |acc, &v| acc + v);
        assert_eq!(merged.parts()[0].data(), &[folded]);
    }

    #[test]
    fn worker_pool_matches_scoped_run_sharded() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.threads(), threads);
            // The pool is persistent: several jobs reuse the same workers.
            for job in 0..3usize {
                let results = pool.run_sharded(23, |shard| shard * shard + job);
                assert_eq!(results, (0..23).map(|s| s * s + job).collect::<Vec<_>>());
            }
            assert!(pool
                .run_sharded::<usize, _>(0, |_| unreachable!())
                .is_empty());
        }
    }

    #[test]
    fn worker_pool_balances_uneven_work() {
        let pool = WorkerPool::new(4);
        let results = pool.run_sharded(8, |shard| {
            if shard == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            shard
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn worker_pool_runs_ranges_in_order() {
        let pool = WorkerPool::new(3);
        let ranges = vec![0..3, 3..5, 5..9];
        assert_eq!(pool.run_over_ranges(&ranges, |r| r.len()), vec![3, 2, 4]);
    }

    #[test]
    fn worker_pool_propagates_shard_panics() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_sharded(6, |shard| {
                if shard == 3 {
                    panic!("boom");
                }
                shard
            })
        }));
        assert!(result.is_err(), "a shard panic must reach the submitter");
        // The pool survives a panicked job and serves the next one.
        assert_eq!(pool.run_sharded(4, |shard| shard), vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_pool_serializes_concurrent_submitters() {
        let pool = WorkerPool::new(3);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        let results = pool.clone().run_sharded(9, |shard| shard + 1);
                        assert_eq!(results, (1..=9).collect::<Vec<_>>());
                        sum.fetch_add(results.iter().sum::<usize>(), Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 5 * 45);
    }

    #[test]
    fn shared_pools_are_reused_per_thread_count() {
        let a = WorkerPool::shared(2);
        let b = WorkerPool::shared(2);
        assert!(
            Arc::ptr_eq(&a.core, &b.core),
            "same thread count, same pool"
        );
        let c = WorkerPool::shared(3);
        assert!(!Arc::ptr_eq(&a.core, &c.core));
        assert_eq!(ThreadPoolConfig::with_threads(2).worker_pool().threads(), 2);
    }

    #[test]
    fn wait_timeout_helper_reports_timeouts_and_wakeups() {
        use std::time::Duration;
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        // Nothing signals: the wait must report a timeout with the predicate unchanged.
        {
            let guard = lock_ignoring_poison(&state.0);
            let (guard, timed_out) =
                wait_timeout_ignoring_poison(&state.1, guard, Duration::from_millis(5));
            assert!(timed_out);
            assert!(!*guard);
        }
        // A signaller flips the predicate: the wait must wake well before a long deadline.
        let signaller = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                *lock_ignoring_poison(&state.0) = true;
                state.1.notify_all();
            })
        };
        let mut guard = lock_ignoring_poison(&state.0);
        while !*guard {
            let (next, timed_out) =
                wait_timeout_ignoring_poison(&state.1, guard, Duration::from_secs(10));
            guard = next;
            assert!(!timed_out || *guard, "a 10s timeout must not expire here");
        }
        drop(guard);
        signaller.join().expect("signaller exits");
    }

    #[test]
    fn gradient_set_pair_mut_returns_disjoint_parts() {
        let mut set = GradientSet::zeros(&[(1, 1), (1, 2), (1, 3)]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let (a, b) = set.pair_mut(0, 2);
        a.data_mut()[0] = 1.0;
        b.data_mut()[2] = 2.0;
        assert_eq!(set.parts()[0].data(), &[1.0]);
        assert_eq!(set.parts()[2].data(), &[0.0, 0.0, 2.0]);
    }
}
