//! Data-parallel epoch execution: a `std::thread`-scoped shard pool with deterministic
//! gradient reduction.
//!
//! Mini-batch training is data-parallel up to the optimizer step: the per-sample losses and
//! gradients of one mini-batch are independent, only their *sum* feeds Adam.  This module
//! supplies the machinery the CRN and MSCN training loops use to exploit that:
//!
//! * [`ThreadPoolConfig`] — how many worker threads to use and whether to run in
//!   *deterministic* mode;
//! * [`run_sharded`] — a scoped shard pool: `num_shards` independent work items executed by
//!   at most `threads` `std::thread::scope` workers (the vendored-deps policy rules out
//!   rayon), results returned **in canonical shard order** regardless of which worker ran
//!   which shard;
//! * [`GradientSet`] — a model's gradient tensors as plain matrices, detached from the
//!   parameters so every shard can accumulate privately;
//! * [`reduce_gradients`] — merges per-shard gradient sets in a **fixed shard order**
//!   (tree reduction by default, strictly sequential in deterministic mode).
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so *how* shard gradients are merged decides
//! reproducibility:
//!
//! * **Default mode** shards each mini-batch into `threads` pieces and tree-reduces them in
//!   fixed shard order.  Results are bit-for-bit reproducible *for a given thread count*
//!   (re-running with the same `threads` gives identical models), but change when the
//!   thread count changes, because the shard boundaries move.
//! * **Deterministic mode** ([`ThreadPoolConfig::deterministic`]) always splits into
//!   [`DETERMINISTIC_SHARDS`] canonical shards — independent of the thread count — and
//!   reduces them in canonical (sequential) order.  Training is then bit-for-bit identical
//!   at `threads = 1, 2, 4, ...`; the thread count only changes wall-clock time.  The
//!   cross-thread parity tests in `crn-core` and `crn-estimators` pin this.
//!
//! In both modes the work queue hands shards to workers dynamically (an atomic cursor), but
//! every shard's result lands in its own slot and merging happens on the calling thread in
//! shard order, so scheduling jitter never reaches the arithmetic.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of canonical shards used by deterministic mode, chosen independently of the
/// thread count so that the f32 reduction order — and therefore the trained model — is
/// identical no matter how many workers execute the shards.  8 keeps per-shard batches
/// large enough for the blocked GEMM kernels at the paper's batch size of 128 while
/// allowing up to 8 workers to help.
pub const DETERMINISTIC_SHARDS: usize = 8;

/// Thread-pool configuration of the data-parallel training engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadPoolConfig {
    /// Number of worker threads for sharded epoch work (`1` disables spawning entirely and
    /// runs the exact single-threaded batched path).
    pub threads: usize,
    /// Deterministic mode: shard each mini-batch into [`DETERMINISTIC_SHARDS`] canonical
    /// pieces and reduce gradients in canonical order, so results are bit-identical for
    /// every thread count (see the module docs for the full contract).
    pub deterministic: bool,
}

impl ThreadPoolConfig {
    /// The exact PR-1 single-threaded batched path: one shard per mini-batch, no spawning.
    pub fn single_threaded() -> Self {
        ThreadPoolConfig {
            threads: 1,
            deterministic: false,
        }
    }

    /// `threads` workers in default (per-thread-count reproducible) mode.
    pub fn with_threads(threads: usize) -> Self {
        ThreadPoolConfig {
            threads: threads.max(1),
            deterministic: false,
        }
    }

    /// `threads` workers in deterministic mode (bit-identical across thread counts).
    pub fn deterministic(threads: usize) -> Self {
        ThreadPoolConfig {
            threads: threads.max(1),
            deterministic: true,
        }
    }

    /// Reads the configuration from the environment: `THREADS` (worker count, default 1)
    /// and `DETERMINISTIC` (`1`/`true`/`yes` enables deterministic mode).  This is what
    /// [`crate::train::TrainConfig::default`] uses, so `THREADS=4 cargo test` runs the whole
    /// suite through the parallel engine — the CI thread-matrix job relies on it.
    pub fn from_env() -> Self {
        Self::parse(
            std::env::var("THREADS").ok().as_deref(),
            std::env::var("DETERMINISTIC").ok().as_deref(),
        )
    }

    /// Pure parsing core of [`ThreadPoolConfig::from_env`] (split out for testability).
    fn parse(threads: Option<&str>, deterministic: Option<&str>) -> Self {
        let threads = threads
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        let deterministic = deterministic.map(str::trim).is_some_and(|v| {
            ["1", "true", "yes"]
                .iter()
                .any(|on| v.eq_ignore_ascii_case(on))
        });
        ThreadPoolConfig {
            threads,
            deterministic,
        }
    }

    /// Number of shards one mini-batch of `num_items` samples is split into: the canonical
    /// [`DETERMINISTIC_SHARDS`] in deterministic mode, else the thread count — capped by the
    /// item count in both cases (a shard is never empty).
    pub fn shard_count(&self, num_items: usize) -> usize {
        if num_items == 0 {
            return 0;
        }
        let shards = if self.deterministic {
            DETERMINISTIC_SHARDS
        } else {
            self.threads.max(1)
        };
        shards.min(num_items)
    }
}

impl Default for ThreadPoolConfig {
    /// Environment-driven ([`ThreadPoolConfig::from_env`]): single-threaded unless `THREADS`
    /// is set.
    fn default() -> Self {
        ThreadPoolConfig::from_env()
    }
}

/// Executes `num_shards` independent work items on at most `threads` scoped workers and
/// returns the results **in shard order**.
///
/// Shards are handed out dynamically (an atomic cursor), so uneven shard costs balance
/// across workers; results are written into per-shard slots, so the returned order — and
/// any reduction the caller performs over it — is independent of scheduling.  The calling
/// thread participates as a worker (only `threads - 1` threads are spawned), so with
/// `threads <= 1` (or a single shard) the work runs inline, spawning nothing.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn run_sharded<T, F>(threads: usize, num_shards: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_shards == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(num_shards);
    if workers <= 1 {
        return (0..num_shards).map(work).collect();
    }
    let cursor = AtomicUsize::new(0);
    let work = &work;
    let drain = |produced: &mut Vec<(usize, T)>| loop {
        let shard = cursor.fetch_add(1, Ordering::Relaxed);
        if shard >= num_shards {
            break;
        }
        produced.push((shard, work(shard)));
    };
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    drain(&mut produced);
                    produced
                })
            })
            .collect();
        // The calling thread is worker 0: it drains the queue alongside the spawned
        // workers instead of blocking idle on the joins.
        let mut own = Vec::new();
        drain(&mut own);
        let mut all = vec![own];
        all.extend(
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard worker panicked")),
        );
        all
    });
    let mut slots: Vec<Option<T>> = (0..num_shards).map(|_| None).collect();
    for (shard, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[shard].is_none(), "shard {shard} produced twice");
        slots[shard] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard produced exactly once"))
        .collect()
}

/// Convenience form of [`run_sharded`] for range-partitioned work: runs `work` once per
/// range of `ranges` and returns the results in range order.
pub fn run_over_ranges<T, F>(threads: usize, ranges: &[Range<usize>], work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    run_sharded(threads, ranges.len(), |shard| work(ranges[shard].clone()))
}

/// A model's gradient tensors as plain matrices in a fixed, model-defined parameter order,
/// detached from the parameters themselves so that every shard of a mini-batch can
/// accumulate into its own private set before the merge.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientSet {
    parts: Vec<Matrix>,
}

impl GradientSet {
    /// Creates a zeroed gradient set with one matrix per `(rows, cols)` shape.
    pub fn zeros(shapes: &[(usize, usize)]) -> Self {
        GradientSet {
            parts: shapes
                .iter()
                .map(|&(rows, cols)| Matrix::zeros(rows, cols))
                .collect(),
        }
    }

    /// Number of gradient tensors.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns true when the set holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The gradient tensors in parameter order.
    pub fn parts(&self) -> &[Matrix] {
        &self.parts
    }

    /// Mutable access to the gradient tensors in parameter order.
    pub fn parts_mut(&mut self) -> &mut [Matrix] {
        &mut self.parts
    }

    /// Mutable access to one gradient tensor.
    pub fn part_mut(&mut self, index: usize) -> &mut Matrix {
        &mut self.parts[index]
    }

    /// Mutable access to two distinct gradient tensors at once (e.g. a layer's weight and
    /// bias gradients for a fused scatter).
    ///
    /// # Panics
    /// Panics unless `first < second < len`.
    pub fn pair_mut(&mut self, first: usize, second: usize) -> (&mut Matrix, &mut Matrix) {
        assert!(first < second && second < self.parts.len());
        let (left, right) = self.parts.split_at_mut(second);
        (&mut left[first], &mut right[0])
    }

    /// Element-wise `self += other` over every tensor.
    ///
    /// # Panics
    /// Panics if the two sets disagree in arity or shapes.
    pub fn add_assign(&mut self, other: &GradientSet) {
        assert_eq!(
            self.parts.len(),
            other.parts.len(),
            "gradient arity mismatch"
        );
        for (mine, theirs) in self.parts.iter_mut().zip(&other.parts) {
            mine.add_assign(theirs);
        }
    }
}

/// Merges per-shard gradient sets into one, consuming the shards.
///
/// * `deterministic = false`: **fixed shard-order tree reduction** — pairwise merges with
///   doubling stride (`0+=1, 2+=3, ... then 0+=2, ...`).  The association depends only on
///   the shard *count*, never on scheduling, so results are reproducible for a given
///   thread count.
/// * `deterministic = true`: strictly **canonical (sequential) order** — shard 0 absorbs
///   shard 1, then 2, ... — the association a single thread walking the shards would
///   produce, making the merged gradient independent of how the shard work was scheduled
///   *and* of the thread count (the shard count is canonical in this mode, see
///   [`ThreadPoolConfig::shard_count`]).
///
/// Returns `None` for an empty input.
pub fn reduce_gradients(mut shards: Vec<GradientSet>, deterministic: bool) -> Option<GradientSet> {
    if shards.is_empty() {
        return None;
    }
    if deterministic {
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.add_assign(shard);
        }
        return Some(merged);
    }
    let mut stride = 1;
    while stride < shards.len() {
        let mut left = 0;
        while left + stride < shards.len() {
            let (head, tail) = shards.split_at_mut(left + stride);
            head[left].add_assign(&tail[0]);
            left += 2 * stride;
        }
        stride *= 2;
    }
    Some(shards.swap_remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reads_threads_and_deterministic() {
        assert_eq!(
            ThreadPoolConfig::parse(None, None),
            ThreadPoolConfig::single_threaded()
        );
        assert_eq!(
            ThreadPoolConfig::parse(Some("4"), None),
            ThreadPoolConfig::with_threads(4)
        );
        assert_eq!(
            ThreadPoolConfig::parse(Some(" 2 "), Some("true")),
            ThreadPoolConfig::deterministic(2)
        );
        // Garbage and zero fall back to a single thread.
        assert_eq!(ThreadPoolConfig::parse(Some("zero"), None).threads, 1);
        assert_eq!(ThreadPoolConfig::parse(Some("0"), None).threads, 1);
        assert!(!ThreadPoolConfig::parse(None, Some("no")).deterministic);
        // The deterministic switch is case-insensitive.
        assert!(ThreadPoolConfig::parse(None, Some("TRUE")).deterministic);
        assert!(ThreadPoolConfig::parse(None, Some(" Yes ")).deterministic);
    }

    #[test]
    fn shard_count_is_canonical_in_deterministic_mode() {
        for threads in [1, 2, 4, 16] {
            let config = ThreadPoolConfig::deterministic(threads);
            assert_eq!(config.shard_count(128), DETERMINISTIC_SHARDS);
            assert_eq!(config.shard_count(3), 3, "capped by item count");
            assert_eq!(config.shard_count(0), 0);
        }
        assert_eq!(ThreadPoolConfig::with_threads(4).shard_count(128), 4);
        assert_eq!(ThreadPoolConfig::with_threads(4).shard_count(2), 2);
        assert_eq!(ThreadPoolConfig::single_threaded().shard_count(128), 1);
    }

    #[test]
    fn run_sharded_returns_results_in_shard_order() {
        for threads in [1, 2, 4, 7] {
            let results = run_sharded(threads, 23, |shard| shard * shard);
            assert_eq!(results, (0..23).map(|s| s * s).collect::<Vec<_>>());
        }
        assert!(run_sharded::<usize, _>(4, 0, |_| unreachable!()).is_empty());
    }

    #[test]
    fn run_sharded_balances_uneven_work() {
        // Shard 0 is slow; the dynamic queue must still hand every other shard out and the
        // results must come back in order.
        let results = run_sharded(4, 8, |shard| {
            if shard == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            shard
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_over_ranges_passes_each_range() {
        let ranges = vec![0..3, 3..5, 5..9];
        let lens = run_over_ranges(2, &ranges, |range| range.len());
        assert_eq!(lens, vec![3, 2, 4]);
    }

    fn set_of(values: &[f32]) -> GradientSet {
        let mut set = GradientSet::zeros(&[(1, values.len())]);
        set.part_mut(0).data_mut().copy_from_slice(values);
        set
    }

    #[test]
    fn reductions_sum_every_shard() {
        for deterministic in [false, true] {
            for count in 1..=9usize {
                let shards: Vec<GradientSet> =
                    (0..count).map(|i| set_of(&[i as f32, 1.0])).collect();
                let merged = reduce_gradients(shards, deterministic).expect("non-empty");
                let expected: f32 = (0..count).map(|i| i as f32).sum();
                assert_eq!(merged.parts()[0].data(), &[expected, count as f32]);
            }
            assert!(reduce_gradients(Vec::new(), deterministic).is_none());
        }
    }

    #[test]
    fn sequential_reduction_is_shard_count_order() {
        // With values chosen to expose association, sequential order must equal a plain
        // left fold (this is the canonical order deterministic mode promises).
        let values = [1.0e8f32, 1.0, -1.0e8, 1.0];
        let shards: Vec<GradientSet> = values.iter().map(|&v| set_of(&[v])).collect();
        let merged = reduce_gradients(shards, true).expect("non-empty");
        let folded = values.iter().fold(0.0f32, |acc, &v| acc + v);
        assert_eq!(merged.parts()[0].data(), &[folded]);
    }

    #[test]
    fn gradient_set_pair_mut_returns_disjoint_parts() {
        let mut set = GradientSet::zeros(&[(1, 1), (1, 2), (1, 3)]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let (a, b) = set.pair_mut(0, 2);
        a.data_mut()[0] = 1.0;
        b.data_mut()[2] = 2.0;
        assert_eq!(set.parts()[0].data(), &[1.0]);
        assert_eq!(set.parts()[2].data(), &[0.0, 0.0, 2.0]);
    }
}
