//! # crn-cluster — cross-process distributed serving
//!
//! The cluster tier spreads the queries-pool shards over N worker **processes** and
//! serves batches through a coordinator that scatters FROM-clause groups to shard
//! owners, gathers their ε-filtered per-entry estimate lists, and folds them locally —
//! in **canonical shard order**, with the same [`fold_entry_lists`]
//! (re-exported by `crn-core`) the single-process service uses, so distributed
//! estimates are **bit-identical** to single-process serving (ROADMAP: "Distributed
//! serving"; parity pinned at workers {1,2,4} × shards {1,4,8}).
//!
//! Three modules:
//!
//! * [`wire`] — hand-rolled length-prefixed frames over `std::net` TCP (no async
//!   runtime): `[u32 LE length][type byte][serde_json payload]`, bounded by
//!   [`wire::MAX_FRAME`], lossless for `f64` (pinned by a proptest roundtrip).
//! * [`worker`] — the shard-owning process: applies assignments, evaluates scattered
//!   batches shard-locally, mirrors canary probe traffic, stages/swaps models.  All
//!   policy stays on the coordinator.
//! * [`client`] — the coordinator-side [`ClusterClient`], a
//!   [`ComputeBackend`](crn_serve::ComputeBackend) the serving runtime schedules onto
//!   exactly like the in-process service.  Lost or slow workers degrade their queries
//!   to the fallback path (`EstimateSource::Degraded` downstream, counted in
//!   [`ClusterStats`], journaled as `worker_lost`) — never hung, never silently
//!   wrong — and reconnect with bounded backoff.  Model rollout goes through a canary
//!   worker gated by the refresh tier's rule ([`crn_online::gate_accepts`]); a batch
//!   can never mix model versions.
//!
//! [`fold_entry_lists`]: crn_core::fold_entry_lists

pub mod client;
pub mod wire;
pub mod worker;

pub use client::{ClusterClient, ClusterOptions, ClusterStats, RolloutOutcome};
pub use wire::{Message, WireError, MAX_FRAME};
pub use worker::{run_worker, spawn_worker};
