//! The cluster wire protocol: hand-rolled length-prefixed frames over `std::net` TCP.
//!
//! Every message is one frame: a 4-byte little-endian length, one message-type byte,
//! then a `serde_json` payload (possibly empty for payloadless acks).  JSON inside a
//! binary frame sounds lossy for a bit-parity system — it is not here: the vendored
//! `serde_json` round-trips `f64` exactly (shortest `{:?}` formatting parses back to
//! the identical bits), so estimate lists, pool cardinalities and model parameters all
//! survive the wire losslessly.  The framing test suite pins this with a proptest
//! roundtrip over queries, estimate lists and snapshot shard payloads.
//!
//! The length prefix counts the type byte plus the payload, is bounded by
//! [`MAX_FRAME`] (a malformed or hostile peer cannot make a worker allocate
//! unboundedly), and is written through the vendored `bytes` [`BytesMut`]/[`BufMut`]
//! so the frame is assembled once and handed to the socket as one contiguous write.

use bytes::{BufMut, Bytes, BytesMut};
use crn_core::{Cnt2CrdConfig, CrnModel, QueriesPool};
use crn_query::ast::Query;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Upper bound on one frame's `type byte + payload` length.  Large enough for a
/// serialized pool-shard assignment at demo scale, small enough that a corrupt length
/// prefix fails fast instead of allocating gigabytes.
pub const MAX_FRAME: usize = 256 << 20;

/// Errors of the framing layer.  IO and decode errors are not distinguished beyond
/// this enum — the coordinator treats *any* wire error on a worker link as that worker
/// being lost (degrade, then reconnect with backoff).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes timeouts and mid-frame EOF).
    Io(std::io::Error),
    /// The peer announced a frame longer than [`MAX_FRAME`] (or an empty frame).
    BadLength(usize),
    /// The payload failed to parse as the announced message type.
    BadPayload(String),
    /// The message-type byte is unknown to this build.
    BadType(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io: {e}"),
            WireError::BadLength(len) => write!(f, "bad frame length {len} (max {MAX_FRAME})"),
            WireError::BadPayload(e) => write!(f, "bad frame payload: {e}"),
            WireError::BadType(byte) => write!(f, "unknown message type {byte}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One global pool shard shipped to (or refreshed on) its owning worker: the shard's
/// entries as a standalone [`QueriesPool`] (entry order preserved — the worker rebuilds
/// a 1-shard [`crn_core::ShardedPool`] from it, and one-shard round-trips preserve
/// entry order, which is what makes the worker's per-shard entry lists bit-identical
/// to the single-process shard scan).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPayload {
    /// Global shard index in `0..total_shards`.
    pub index: usize,
    /// The shard's version at assignment time (coordinator-side bookkeeping echo).
    pub version: u64,
    /// The shard's entries, in canonical entry order.
    pub pool: QueriesPool,
}

/// Full worker assignment: everything a (re)connected worker needs to serve its shard
/// subset bit-identically — the model, the exact serving configuration (ε, final
/// function, default estimate), and its owned shards' anchor payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// This worker's index in the fleet.
    pub worker_id: usize,
    /// Total global shards across the fleet (shard `s` is owned by worker
    /// `s % workers`).
    pub total_shards: usize,
    /// The fleet model version this assignment ships.
    pub model_version: u64,
    /// The serving configuration (must match the coordinator's own fold).
    pub config: Cnt2CrdConfig,
    /// The containment model.
    pub model: CrnModel,
    /// The owned shards' anchors.
    pub shards: Vec<ShardPayload>,
}

/// Worker → coordinator acknowledgement of an [`Assignment`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignAck {
    /// Echoed worker index.
    pub worker_id: usize,
    /// Shards the worker now serves.
    pub shards: usize,
    /// The worker's model version after applying the assignment.
    pub model_version: u64,
}

/// Coordinator → worker: evaluate a scattered batch slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRequest {
    /// The fleet model version this batch MUST be served under.  A worker whose
    /// version differs answers [`ErrorReply`] instead of silently blending model
    /// generations into one batch.
    pub model_version: u64,
    /// The queries scattered to this worker (those whose FROM-clause group matches at
    /// least one of its owned shards).
    pub queries: Vec<Query>,
}

/// One owned shard's per-query entry-estimate lists (the worker-side half of layer 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardLists {
    /// Global shard index the lists came from.
    pub index: usize,
    /// One ε-filtered entry-estimate list per scattered query, in request order.
    pub lists: Vec<Vec<f64>>,
}

/// Worker → coordinator: the evaluated batch slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResponse {
    /// The model version the lists were computed under (echo of the request's).
    pub model_version: u64,
    /// Per owned shard, ascending by global shard index.
    pub shards: Vec<ShardLists>,
}

/// Coordinator → worker: stage a candidate model (not served yet).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageModel {
    /// The version the candidate will serve under if promoted.
    pub version: u64,
    /// The candidate model.
    pub model: CrnModel,
}

/// Coordinator → canary worker: mirror this probe traffic through the live model AND
/// the staged candidate, and report both probe medians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeRequest {
    /// The probe queries.
    pub queries: Vec<Query>,
    /// Their observed true cardinalities (the q-error denominators).
    pub truths: Vec<u64>,
}

/// Canary worker → coordinator: the mirrored probe medians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeResponse {
    /// Median q-error of the live model over the probe set (worker-local anchors).
    pub live_median: f64,
    /// Median q-error of the staged candidate over the same probe set and anchors.
    pub candidate_median: f64,
}

/// Coordinator → worker: promote the staged candidate to live under this version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwapModel {
    /// The fleet version being promoted (must match the staged candidate's).
    pub version: u64,
}

/// Coordinator → worker: apply one feedback upsert to the owning shard's anchors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpsertRequest {
    /// Global shard index the query routes to (`query_hash % total_shards`).
    pub shard: usize,
    /// The executed query.
    pub query: Query,
    /// Its observed true cardinality.
    pub cardinality: u64,
}

/// Worker → coordinator: a request could not be served (version mismatch, unknown
/// shard, pre-assignment eval).  The coordinator treats it like a lost worker for the
/// affected batch, then re-ships state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable reason (journaled, never parsed).
    pub reason: String,
}

/// Every message of the protocol.  The type byte on the wire is the discriminant
/// below; payloadless variants ship an empty payload.
#[derive(Debug, Clone)]
pub enum Message {
    /// Ship (or re-ship) a worker's shard subset + model.
    Assign(Assignment),
    /// Assignment applied.
    AssignAck(AssignAck),
    /// Evaluate a scattered batch slice.
    Eval(EvalRequest),
    /// The evaluated slice.
    EvalResult(EvalResponse),
    /// Stage a candidate model.
    Stage(StageModel),
    /// Candidate staged.
    StageAck,
    /// Mirror probe traffic through live + staged candidate.
    Probe(ProbeRequest),
    /// The probe medians.
    ProbeResult(ProbeResponse),
    /// Promote the staged candidate.
    Swap(SwapModel),
    /// Promotion applied.
    SwapAck,
    /// Discard the staged candidate (rejected at canary).
    Discard,
    /// Staged candidate discarded.
    DiscardAck,
    /// Apply a feedback upsert.
    Upsert(UpsertRequest),
    /// Upsert applied.
    UpsertAck,
    /// The request could not be served.
    Error(ErrorReply),
    /// Drain and exit the worker process.
    Shutdown,
}

impl Message {
    /// The on-wire type byte.
    fn type_byte(&self) -> u8 {
        match self {
            Message::Assign(_) => 1,
            Message::AssignAck(_) => 2,
            Message::Eval(_) => 3,
            Message::EvalResult(_) => 4,
            Message::Stage(_) => 5,
            Message::StageAck => 6,
            Message::Probe(_) => 7,
            Message::ProbeResult(_) => 8,
            Message::Swap(_) => 9,
            Message::SwapAck => 10,
            Message::Discard => 11,
            Message::DiscardAck => 12,
            Message::Upsert(_) => 13,
            Message::UpsertAck => 14,
            Message::Error(_) => 15,
            Message::Shutdown => 16,
        }
    }

    /// Short kind label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Assign(_) => "assign",
            Message::AssignAck(_) => "assign_ack",
            Message::Eval(_) => "eval",
            Message::EvalResult(_) => "eval_result",
            Message::Stage(_) => "stage",
            Message::StageAck => "stage_ack",
            Message::Probe(_) => "probe",
            Message::ProbeResult(_) => "probe_result",
            Message::Swap(_) => "swap",
            Message::SwapAck => "swap_ack",
            Message::Discard => "discard",
            Message::DiscardAck => "discard_ack",
            Message::Upsert(_) => "upsert",
            Message::UpsertAck => "upsert_ack",
            Message::Error(_) => "error",
            Message::Shutdown => "shutdown",
        }
    }
}

fn payload_json(message: &Message) -> Result<String, WireError> {
    let encode =
        |r: Result<String, serde_json::Error>| r.map_err(|e| WireError::BadPayload(e.to_string()));
    match message {
        Message::Assign(m) => encode(serde_json::to_string(m)),
        Message::AssignAck(m) => encode(serde_json::to_string(m)),
        Message::Eval(m) => encode(serde_json::to_string(m)),
        Message::EvalResult(m) => encode(serde_json::to_string(m)),
        Message::Stage(m) => encode(serde_json::to_string(m)),
        Message::Probe(m) => encode(serde_json::to_string(m)),
        Message::ProbeResult(m) => encode(serde_json::to_string(m)),
        Message::Swap(m) => encode(serde_json::to_string(m)),
        Message::Upsert(m) => encode(serde_json::to_string(m)),
        Message::Error(m) => encode(serde_json::to_string(m)),
        Message::StageAck
        | Message::SwapAck
        | Message::Discard
        | Message::DiscardAck
        | Message::UpsertAck
        | Message::Shutdown => Ok(String::new()),
    }
}

/// Encodes one message into a complete frame (length prefix + type byte + payload),
/// ready for a single socket write.
pub fn encode(message: &Message) -> Result<Bytes, WireError> {
    let payload = payload_json(message)?;
    let body_len = 1 + payload.len();
    if body_len > MAX_FRAME {
        return Err(WireError::BadLength(body_len));
    }
    let mut frame = BytesMut::with_capacity(4 + body_len);
    frame.put_slice(&(body_len as u32).to_le_bytes());
    frame.put_u8(message.type_byte());
    frame.put_slice(payload.as_bytes());
    Ok(frame.freeze())
}

fn parse<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload).map_err(|e| WireError::BadPayload(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| WireError::BadPayload(e.to_string()))
}

/// Decodes one frame's body (the bytes after the length prefix) into a message.
pub fn decode_body(body: &[u8]) -> Result<Message, WireError> {
    let Some((&type_byte, payload)) = body.split_first() else {
        return Err(WireError::BadLength(0));
    };
    Ok(match type_byte {
        1 => Message::Assign(parse(payload)?),
        2 => Message::AssignAck(parse(payload)?),
        3 => Message::Eval(parse(payload)?),
        4 => Message::EvalResult(parse(payload)?),
        5 => Message::Stage(parse(payload)?),
        6 => Message::StageAck,
        7 => Message::Probe(parse(payload)?),
        8 => Message::ProbeResult(parse(payload)?),
        9 => Message::Swap(parse(payload)?),
        10 => Message::SwapAck,
        11 => Message::Discard,
        12 => Message::DiscardAck,
        13 => Message::Upsert(parse(payload)?),
        14 => Message::UpsertAck,
        15 => Message::Error(parse(payload)?),
        16 => Message::Shutdown,
        other => return Err(WireError::BadType(other)),
    })
}

/// Writes one message as a single frame.
pub fn write_message<W: Write>(writer: &mut W, message: &Message) -> Result<(), WireError> {
    let frame = encode(message)?;
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

/// Reads exactly one frame and decodes it.  A length outside `1..=MAX_FRAME` is
/// rejected *before* any payload allocation; a connection that dies mid-frame surfaces
/// as [`WireError::Io`] (the coordinator's lost-worker path).
pub fn read_message<R: Read>(reader: &mut R) -> Result<Message, WireError> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let body_len = u32::from_le_bytes(len_bytes) as usize;
    if body_len == 0 || body_len > MAX_FRAME {
        return Err(WireError::BadLength(body_len));
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    decode_body(&body)
}

/// In-memory encode → decode roundtrip (the proptest surface: no sockets involved).
pub fn roundtrip(message: &Message) -> Result<Message, WireError> {
    let frame = encode(message)?;
    let mut cursor = std::io::Cursor::new(frame.as_ref().to_vec());
    read_message(&mut cursor)
}
