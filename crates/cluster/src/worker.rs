//! The worker process: owns a subset of the global pool shards and serves the
//! shard-local half of layer 3 (pool scan + per-entry containment estimates) for
//! batches scattered to it by the coordinator.
//!
//! A worker is deliberately dumb: it holds no routing knowledge, makes no gate
//! decisions, and never folds entry lists into estimates — it applies whatever
//! [`Assignment`](crate::wire::Assignment) the coordinator ships, answers
//! [`EvalRequest`](crate::wire::EvalRequest)s with raw per-shard entry-estimate lists,
//! and mirrors probe traffic through live + staged models when asked to play canary.
//! All policy (canonical-order merging, degradation, canary verdicts, reconnect
//! cadence) lives on the coordinator, so adding a worker never adds a decision point.
//!
//! Bit-parity note: each owned shard is reconstructed as a **one-shard**
//! [`ShardedPool`] from the shipped shard payload.  One-shard reconstruction
//! preserves entry order, so the worker's shard scan visits entries in exactly the
//! order the single-process service would — the lists it returns are bit-identical
//! to the corresponding single-process work items.
//!
//! Version discipline: an [`EvalRequest`] carries the fleet model version it must be
//! served under.  A worker whose live version differs (e.g. a swap raced a scatter)
//! answers [`ErrorReply`](crate::wire::ErrorReply) rather than serving — a mixed
//! fleet can degrade a batch, but can never silently blend model generations inside
//! one batch.

use crate::wire::{
    read_message, write_message, AssignAck, Assignment, ErrorReply, EvalResponse, Message,
    ProbeResponse, ShardLists, WireError,
};
use crn_core::{
    Cnt2Crd, Cnt2CrdConfig, CrnModel, EstimatorService, FinalFunction, QueriesPool, ShardedPool,
};
use crn_estimators::CardinalityEstimator;
use crn_nn::WorkerPool;
use crn_query::ast::Query;
use std::net::{TcpListener, TcpStream};

/// Matches `crn_online::feedback::CARDINALITY_FLOOR` (not re-exported there): the
/// floor under q-error ratios, so probe medians here are comparable to the refresh
/// controller's gate inputs.
const CARDINALITY_FLOOR: f64 = 1.0;

/// Everything a worker holds between messages.  Built wholesale from an
/// [`Assignment`]; absent until the first one arrives.
struct WorkerState {
    worker_id: usize,
    /// Live fleet model version this worker serves under.
    version: u64,
    config: Cnt2CrdConfig,
    /// The live model (kept outside the services for probe mirroring).
    model: CrnModel,
    /// One single-shard service per owned global shard, ascending by shard index.
    services: Vec<(usize, EstimatorService<CrnModel>)>,
    /// Union of the owned shards' anchors, used for canary probe traffic.
    owned_pool: QueriesPool,
    /// A staged candidate model awaiting a canary verdict: `(version, model)`.
    staged: Option<(u64, CrnModel)>,
}

impl WorkerState {
    fn from_assignment(assignment: Assignment, threads: usize) -> Self {
        let workers = WorkerPool::shared(threads.max(1));
        let mut owned_pool = QueriesPool::default();
        let mut shards = assignment.shards;
        shards.sort_by_key(|shard| shard.index);
        let services = shards
            .into_iter()
            .map(|payload| {
                for entry in payload.pool.entries() {
                    owned_pool.upsert(entry.query.clone(), entry.cardinality);
                }
                let sharded = ShardedPool::from_pool(&payload.pool, 1);
                let service =
                    EstimatorService::new(assignment.model.clone(), sharded, workers.clone())
                        .with_config(assignment.config);
                (payload.index, service)
            })
            .collect();
        WorkerState {
            worker_id: assignment.worker_id,
            version: assignment.model_version,
            config: assignment.config,
            model: assignment.model,
            services,
            owned_pool,
            staged: None,
        }
    }

    /// Median q-error of `model` over the probe set, evaluated through the sequential
    /// `Cnt2Crd` path over this worker's anchors — the same machinery for the live
    /// model and the staged candidate, so the canary comparison is apples-to-apples.
    fn probe_median(&self, model: &CrnModel, queries: &[Query], truths: &[u64]) -> f64 {
        let estimator =
            Cnt2Crd::new(model.clone(), self.owned_pool.clone()).with_config(self.config);
        let errors: Vec<f64> = queries
            .iter()
            .zip(truths)
            .map(|(query, &truth)| {
                crn_nn::q_error(
                    estimator.estimate(query).max(CARDINALITY_FLOOR),
                    (truth as f64).max(CARDINALITY_FLOOR),
                    CARDINALITY_FLOOR,
                )
            })
            .collect();
        FinalFunction::Median.apply(&errors).unwrap_or(0.0)
    }
}

fn error_reply(reason: impl Into<String>) -> Message {
    Message::Error(ErrorReply {
        reason: reason.into(),
    })
}

/// Handles one message against the (possibly absent) worker state.  Returns the reply
/// to send, or `None` for [`Message::Shutdown`].
fn handle(state: &mut Option<WorkerState>, message: Message, threads: usize) -> Option<Message> {
    match message {
        Message::Assign(assignment) => {
            let worker_id = assignment.worker_id;
            let model_version = assignment.model_version;
            let fresh = WorkerState::from_assignment(assignment, threads);
            let shards = fresh.services.len();
            *state = Some(fresh);
            Some(Message::AssignAck(AssignAck {
                worker_id,
                shards,
                model_version,
            }))
        }
        Message::Eval(request) => {
            let Some(state) = state.as_ref() else {
                return Some(error_reply("eval before assignment"));
            };
            if request.model_version != state.version {
                return Some(error_reply(format!(
                    "model version mismatch: batch wants v{}, worker {} serves v{}",
                    request.model_version, state.worker_id, state.version
                )));
            }
            let shards = state
                .services
                .iter()
                .map(|(index, service)| ShardLists {
                    index: *index,
                    lists: service.serve_entry_lists(&request.queries).per_query,
                })
                .collect();
            Some(Message::EvalResult(EvalResponse {
                model_version: state.version,
                shards,
            }))
        }
        Message::Stage(stage) => {
            let Some(state) = state.as_mut() else {
                return Some(error_reply("stage before assignment"));
            };
            state.staged = Some((stage.version, stage.model));
            Some(Message::StageAck)
        }
        Message::Probe(request) => {
            let Some(state) = state.as_ref() else {
                return Some(error_reply("probe before assignment"));
            };
            let Some((_, candidate)) = state.staged.as_ref() else {
                return Some(error_reply("probe without a staged candidate"));
            };
            let live_median = state.probe_median(&state.model, &request.queries, &request.truths);
            let candidate_median = state.probe_median(candidate, &request.queries, &request.truths);
            Some(Message::ProbeResult(ProbeResponse {
                live_median,
                candidate_median,
            }))
        }
        Message::Swap(swap) => {
            let Some(state) = state.as_mut() else {
                return Some(error_reply("swap before assignment"));
            };
            match state.staged.take() {
                Some((version, model)) if version == swap.version => {
                    for (_, service) in &state.services {
                        service.swap_model(model.clone());
                    }
                    state.model = model;
                    state.version = version;
                    Some(Message::SwapAck)
                }
                other => {
                    state.staged = other;
                    Some(error_reply(format!(
                        "swap v{} without a matching staged candidate",
                        swap.version
                    )))
                }
            }
        }
        Message::Discard => {
            if let Some(state) = state.as_mut() {
                state.staged = None;
            }
            Some(Message::DiscardAck)
        }
        Message::Upsert(request) => {
            let Some(state) = state.as_mut() else {
                return Some(error_reply("upsert before assignment"));
            };
            let Some((_, service)) = state
                .services
                .iter()
                .find(|(index, _)| *index == request.shard)
            else {
                return Some(error_reply(format!(
                    "upsert for shard {} not owned by worker {}",
                    request.shard, state.worker_id
                )));
            };
            service
                .pool()
                .upsert(request.query.clone(), request.cardinality);
            state.owned_pool.upsert(request.query, request.cardinality);
            Some(Message::UpsertAck)
        }
        Message::Shutdown => None,
        // Coordinator-bound message kinds arriving at a worker are protocol bugs;
        // answer loudly instead of hanging the connection.
        other => Some(error_reply(format!(
            "unexpected message kind {:?} at worker",
            other.kind()
        ))),
    }
}

/// Serves one coordinator connection until it closes, shutdown arrives, or the wire
/// breaks.  Returns `true` if the worker should exit (explicit shutdown).
fn serve_connection(
    stream: TcpStream,
    state: &mut Option<WorkerState>,
    threads: usize,
) -> Result<bool, WireError> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        let message = match read_message(&mut reader) {
            Ok(message) => message,
            // A dead coordinator link is not a worker failure: drop back to accept
            // and wait for the coordinator to re-dial (it re-ships the assignment).
            Err(WireError::Io(_)) => return Ok(false),
            Err(error) => return Err(error),
        };
        match handle(state, message, threads) {
            Some(reply) => write_message(&mut writer, &reply)?,
            None => return Ok(true),
        }
    }
}

/// Runs a worker on `listener` until a [`Message::Shutdown`] arrives.  Accepts one
/// coordinator connection at a time; a dropped connection returns the worker to
/// `accept`, where the coordinator's reconnect path re-dials and re-ships state.
pub fn run_worker(listener: TcpListener, threads: usize) -> Result<(), WireError> {
    let mut state: Option<WorkerState> = None;
    loop {
        let (stream, _) = listener.accept().map_err(WireError::Io)?;
        stream.set_nodelay(true).ok();
        if serve_connection(stream, &mut state, threads)? {
            return Ok(());
        }
    }
}

/// Spawns [`run_worker`] on a named thread — the in-process harness used by the
/// loopback parity and chaos tests (the eval demo forks real processes instead).
pub fn spawn_worker(listener: TcpListener, threads: usize) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("crn-cluster-worker".into())
        .spawn(move || {
            let _ = run_worker(listener, threads);
        })
        .expect("spawn cluster worker thread")
}
