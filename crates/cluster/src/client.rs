//! The coordinator-side cluster client: a [`ComputeBackend`] that scatters batches to
//! shard-owning worker processes and gathers their entry lists back into estimates.
//!
//! # Bit-parity by construction
//!
//! The client never re-implements serving math.  It keeps the authoritative pool
//! mirror in the same [`ShardedPool`] the single-process service uses, plans batches
//! with the same [`plan_groups`], and folds gathered lists with the same
//! [`fold_entry_lists`].  Workers return raw per-shard ε-filtered entry-estimate
//! lists; the client concatenates them **in canonical (ascending global) shard
//! order** — exactly the order the single-process `serve_entry_lists` concatenates
//! its work items — so every non-degraded estimate is bit-identical to single-process
//! serving.  The loopback parity tests pin this at workers {1,2,4} × shards {1,4,8}.
//!
//! # Never hung, never silently wrong
//!
//! Every socket carries a read/write timeout.  A worker that dies, stalls past its
//! timeout, or answers the wrong model version is treated as **lost**: its queries in
//! the current batch degrade to the coordinator-local fallback path, are reported in
//! [`ServeResponse::degraded`] (the runtime tags those tickets
//! `EstimateSource::Degraded` and keeps them out of the estimate cache), counted in
//! [`ClusterStats`], and journaled as [`Event::WorkerLost`].  Lost workers are
//! re-dialled with bounded backoff (reusing the serve tier's
//! [`RETRY_BACKOFF_FLOOR`]/[`RETRY_BACKOFF_CEIL`] envelope) and re-shipped their full
//! assignment on reconnect.
//!
//! # Canary rollout
//!
//! [`roll_out`](ClusterClient::roll_out) stages a candidate model on one canary
//! worker, mirrors held-out probe traffic through the live model *and* the candidate
//! on that worker's own anchors, and applies the refresh tier's gate rule
//! ([`crn_online::gate_accepts`]).  Only an accepted candidate is staged + swapped
//! fleet-wide under a new version.  Rollout and serving share one lock, and every
//! [`EvalRequest`](crate::wire::EvalRequest) carries the version it must be served
//! under (workers refuse mismatches), so a batch can never blend model generations.

use crate::wire::{
    read_message, write_message, Assignment, EvalRequest, Message, ProbeRequest, ShardPayload,
    StageModel, SwapModel, UpsertRequest, WireError,
};
use crn_core::{
    fold_entry_lists, plan_groups, Cnt2CrdConfig, CrnModel, QueriesPool, ServeResponse, ServeStats,
    ShardedPool,
};
use crn_estimators::CardinalityEstimator;
use crn_obs::{Event, Obs};
use crn_query::ast::Query;
use crn_serve::{
    ComputeBackend, FaultInjector, FaultSite, RETRY_BACKOFF_CEIL, RETRY_BACKOFF_FLOOR,
};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Coordinator-side knobs (serving math comes from [`Cnt2CrdConfig`], which is shared
/// with the workers via the assignment).
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// The serving configuration shipped to every worker and used by the local fold.
    pub config: Cnt2CrdConfig,
    /// Per-socket read/write timeout; a worker slower than this on one reply is
    /// treated as lost for the batch.
    pub worker_timeout: Duration,
    /// Canary gate margin (the refresh tier's rule: candidate must beat live by this
    /// relative margin on probe median q-error).
    pub gate_margin: f64,
    /// Batches between reconnect attempts to a lost worker.
    pub reconnect_every: u64,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            config: Cnt2CrdConfig::default(),
            worker_timeout: Duration::from_secs(2),
            gate_margin: 0.0,
            reconnect_every: 4,
        }
    }
}

/// A point-in-time read of the cluster's health counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStats {
    /// Workers in the fleet.
    pub workers: usize,
    /// Workers currently connected.
    pub workers_up: usize,
    /// Batches scattered so far.
    pub batches: u64,
    /// Queries answered by the degraded (coordinator-local fallback) path.
    pub degraded_queries: u64,
    /// Times a worker was declared lost (dead socket, timeout, wrong version).
    pub worker_losses: u64,
    /// Successful reconnect + re-ship cycles.
    pub reconnects: u64,
    /// Canary decisions that promoted the candidate fleet-wide.
    pub canary_promoted: u64,
    /// Canary decisions that rejected the candidate.
    pub canary_rejected: u64,
    /// Feedback upserts forwarded to shard owners.
    pub upserts_forwarded: u64,
}

/// A canary rollout's verdict (medians are the canary worker's probe q-errors).
#[derive(Debug, Clone, PartialEq)]
pub enum RolloutOutcome {
    /// The candidate beat the gate and now serves fleet-wide under `version`.
    Promoted {
        /// The new fleet model version.
        version: u64,
        /// Live model's probe median at decision time.
        live_median: f64,
        /// Candidate's probe median at decision time.
        candidate_median: f64,
    },
    /// The candidate failed the gate; the fleet still serves the prior version.
    Rejected {
        /// Live model's probe median at decision time.
        live_median: f64,
        /// Candidate's probe median at decision time.
        candidate_median: f64,
    },
}

/// One worker connection.  `stream: None` means lost — awaiting reconnect cadence.
struct WorkerLink {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    batches_since_attempt: u64,
}

struct Counters {
    batches: AtomicU64,
    degraded_queries: AtomicU64,
    worker_losses: AtomicU64,
    reconnects: AtomicU64,
    canary_promoted: AtomicU64,
    canary_rejected: AtomicU64,
    upserts_forwarded: AtomicU64,
}

/// The coordinator-side scatter/gather backend.  See the module docs for the three
/// contracts (parity, liveness, canary).
pub struct ClusterClient {
    mirror: ShardedPool,
    options: ClusterOptions,
    fallback: Option<Box<dyn CardinalityEstimator + Send + Sync>>,
    links: Mutex<Vec<WorkerLink>>,
    /// Fleet model version (workers refuse batches under any other).
    model_version: AtomicU64,
    /// The live model, kept for re-shipping assignments to reconnecting workers.
    live_model: Mutex<CrnModel>,
    counters: Counters,
    faults: Arc<FaultInjector>,
    obs: Obs,
    name: String,
}

fn lock_links(links: &Mutex<Vec<WorkerLink>>) -> MutexGuard<'_, Vec<WorkerLink>> {
    links
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ClusterClient {
    /// Connects to `addrs` (one worker process each), shards `pool` into
    /// `total_shards` canonical shards, and ships every worker its assignment (shard
    /// `s` is owned by worker `s % addrs.len()`).  Fails if any worker is unreachable
    /// at startup — a fleet that begins degraded is a deployment error, not a runtime
    /// condition.
    pub fn connect(
        addrs: &[SocketAddr],
        model: CrnModel,
        pool: &QueriesPool,
        total_shards: usize,
        options: ClusterOptions,
    ) -> Result<Self, WireError> {
        assert!(!addrs.is_empty(), "cluster needs at least one worker");
        let total_shards = total_shards.max(1);
        let mirror = ShardedPool::from_pool(pool, total_shards);
        let client = Self {
            mirror,
            name: format!("crn-cluster({} workers)", addrs.len()),
            options,
            fallback: None,
            links: Mutex::new(
                addrs
                    .iter()
                    .map(|addr| WorkerLink {
                        addr: *addr,
                        stream: None,
                        batches_since_attempt: 0,
                    })
                    .collect(),
            ),
            model_version: AtomicU64::new(1),
            live_model: Mutex::new(model),
            counters: Counters {
                batches: AtomicU64::new(0),
                degraded_queries: AtomicU64::new(0),
                worker_losses: AtomicU64::new(0),
                reconnects: AtomicU64::new(0),
                canary_promoted: AtomicU64::new(0),
                canary_rejected: AtomicU64::new(0),
                upserts_forwarded: AtomicU64::new(0),
            },
            faults: FaultInjector::none(),
            obs: Obs::disabled(),
        };
        {
            let mut links = lock_links(&client.links);
            let workers = links.len();
            for worker_id in 0..workers {
                let stream = client.dial(links[worker_id].addr)?;
                links[worker_id].stream = Some(stream);
                client.ship_assignment(&mut links[worker_id], worker_id, workers)?;
            }
        }
        Ok(client)
    }

    /// Replaces the degraded-path estimator (default: the flat
    /// `config.default_estimate`).
    pub fn with_fallback(mut self, fallback: Box<dyn CardinalityEstimator + Send + Sync>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Attaches an observability handle (per-worker RTT/in-flight gauges,
    /// scatter/gather timing histograms, worker-loss + canary journal events).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attaches a fault injector (the chaos tests script
    /// [`FaultSite::ClusterFrameDrop`] through it).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// The cluster health counters.
    pub fn stats(&self) -> ClusterStats {
        let links = lock_links(&self.links);
        ClusterStats {
            workers: links.len(),
            workers_up: links.iter().filter(|link| link.stream.is_some()).count(),
            batches: self.counters.batches.load(Ordering::Relaxed),
            degraded_queries: self.counters.degraded_queries.load(Ordering::Relaxed),
            worker_losses: self.counters.worker_losses.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            canary_promoted: self.counters.canary_promoted.load(Ordering::Relaxed),
            canary_rejected: self.counters.canary_rejected.load(Ordering::Relaxed),
            upserts_forwarded: self.counters.upserts_forwarded.load(Ordering::Relaxed),
        }
    }

    /// The fleet model version (what batches are currently served under).
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Acquire)
    }

    fn dial(&self, addr: SocketAddr) -> Result<TcpStream, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.options.worker_timeout))
            .ok();
        stream
            .set_write_timeout(Some(self.options.worker_timeout))
            .ok();
        Ok(stream)
    }

    /// Ships `worker_id`'s full assignment (owned shards + live model + version) over
    /// its connected link and waits for the ack.
    fn ship_assignment(
        &self,
        link: &mut WorkerLink,
        worker_id: usize,
        workers: usize,
    ) -> Result<(), WireError> {
        let snapshot = self.mirror.snapshot();
        let shards = (0..snapshot.num_shards())
            .filter(|shard| shard % workers == worker_id)
            .map(|shard| ShardPayload {
                index: shard,
                version: snapshot.shard_version(shard),
                pool: snapshot.shard_pool(shard),
            })
            .collect();
        let assignment = Message::Assign(Assignment {
            worker_id,
            total_shards: snapshot.num_shards(),
            model_version: self.model_version.load(Ordering::Acquire),
            config: self.options.config,
            model: lock_ignoring_poison_model(&self.live_model).clone(),
            shards,
        });
        let stream = link.stream.as_mut().expect("ship over connected link");
        write_message(stream, &assignment)?;
        match read_message(stream)? {
            Message::AssignAck(_) => Ok(()),
            Message::Error(error) => Err(WireError::BadPayload(error.reason)),
            other => Err(WireError::BadPayload(format!(
                "unexpected {} to assignment",
                other.kind()
            ))),
        }
    }

    /// Declares `worker_id` lost: drops the socket, bumps the loss counters, journals
    /// the event.  Its shards degrade until the reconnect cadence restores it.
    fn declare_lost(&self, links: &mut [WorkerLink], worker_id: usize) {
        if links[worker_id].stream.take().is_some() {
            links[worker_id].batches_since_attempt = 0;
            self.counters.worker_losses.fetch_add(1, Ordering::Relaxed);
            self.obs
                .record_event(Event::WorkerLost { worker: worker_id });
        }
    }

    /// Reconnect cadence, run at the top of every batch: each lost worker is
    /// re-dialled every `reconnect_every` batches with the serve tier's bounded
    /// backoff envelope between dial attempts — the cost is bounded per batch, so a
    /// permanently dead worker can only degrade its own shards, never stall serving.
    fn reconnect_due(&self, links: &mut [WorkerLink]) {
        let workers = links.len();
        for (worker_id, link) in links.iter_mut().enumerate() {
            if link.stream.is_some() {
                continue;
            }
            link.batches_since_attempt += 1;
            if link.batches_since_attempt < self.options.reconnect_every.max(1) {
                continue;
            }
            link.batches_since_attempt = 0;
            let mut backoff = RETRY_BACKOFF_FLOOR;
            for attempt in 0..3 {
                if attempt > 0 {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(RETRY_BACKOFF_CEIL);
                }
                let Ok(stream) = self.dial(link.addr) else {
                    continue;
                };
                link.stream = Some(stream);
                match self.ship_assignment(link, worker_id, workers) {
                    Ok(()) => {
                        self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(_) => {
                        link.stream = None;
                    }
                }
            }
        }
    }

    /// The scripted mid-frame connection drop ([`FaultSite::ClusterFrameDrop`]): write
    /// a deliberately truncated frame, then kill the socket — the worker sees a
    /// mid-frame EOF, the coordinator a dead link.  Entirely occurrence-counted; no
    /// wall clock involved.
    fn inject_frame_drop(&self, link: &mut WorkerLink) {
        if let Some(stream) = link.stream.as_mut() {
            let _ = stream.write_all(&[0xFF, 0xFF]);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Scatters `queries` to shard owners, gathers entry lists in canonical shard
    /// order, folds locally.  See module docs for the degradation contract.
    fn serve_locked(&self, links: &mut [WorkerLink], queries: &[Query]) -> ServeResponse {
        let start = Instant::now();
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.reconnect_due(links);

        let snapshot = self.mirror.snapshot();
        let model_version = self.model_version.load(Ordering::Acquire);
        let workers = links.len();
        let mut stats = ServeStats {
            queries: queries.len(),
            shards: snapshot.num_shards(),
            pool_entries: snapshot.len(),
            model_version,
            ..ServeStats::default()
        };

        let group_start = Instant::now();
        let groups = plan_groups(queries);
        stats.groups = groups.len();
        // Which query indices each worker must evaluate: a group goes to every worker
        // owning at least one shard with anchors matching its FROM key (the same
        // non-empty-shard test the single-process planner uses for its work items).
        let mut sent: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (key, indices) in &groups {
            let mut dest = vec![false; workers];
            for shard in 0..snapshot.num_shards() {
                if snapshot.shard(shard).matching_key(key).next().is_some() {
                    stats.work_items += 1;
                    dest[shard % workers] = true;
                }
            }
            for (worker_id, wanted) in dest.into_iter().enumerate() {
                if wanted {
                    sent[worker_id].extend(indices.iter().copied());
                }
            }
        }
        stats.group_time = group_start.elapsed();

        // Scatter.
        let scatter_start = Instant::now();
        let mut in_flight: Vec<bool> = vec![false; workers];
        let mut degraded: Vec<bool> = vec![false; queries.len()];
        for worker_id in 0..workers {
            if sent[worker_id].is_empty() {
                continue;
            }
            if links[worker_id].stream.is_some()
                && self.faults.should_fire(FaultSite::ClusterFrameDrop)
            {
                self.inject_frame_drop(&mut links[worker_id]);
                self.declare_lost(links, worker_id);
            }
            let Some(stream) = links[worker_id].stream.as_mut() else {
                for &query in &sent[worker_id] {
                    degraded[query] = true;
                }
                continue;
            };
            let request = Message::Eval(EvalRequest {
                model_version,
                queries: sent[worker_id]
                    .iter()
                    .map(|&index| queries[index].clone())
                    .collect(),
            });
            self.gauge_in_flight(worker_id, 1.0);
            if write_message(stream, &request).is_err() {
                self.gauge_in_flight(worker_id, 0.0);
                self.declare_lost(links, worker_id);
                for &query in &sent[worker_id] {
                    degraded[query] = true;
                }
            } else {
                in_flight[worker_id] = true;
            }
        }
        self.obs
            .hist("cluster.scatter_us")
            .record(scatter_start.elapsed().as_micros() as u64);

        // Gather: per-shard lists keyed by global shard, then concatenated ascending.
        let gather_start = Instant::now();
        let mut per_shard: Vec<Option<Vec<Vec<f64>>>> = vec![None; snapshot.num_shards()];
        for worker_id in 0..workers {
            if !in_flight[worker_id] {
                continue;
            }
            let rtt_start = Instant::now();
            let reply = {
                let stream = links[worker_id].stream.as_mut().expect("in-flight link");
                read_message(stream)
            };
            self.gauge_in_flight(worker_id, 0.0);
            let response = match reply {
                Ok(Message::EvalResult(response)) if response.model_version == model_version => {
                    self.obs
                        .gauge(&format!("cluster.worker.{worker_id}.rtt_us"))
                        .set(rtt_start.elapsed().as_micros() as f64);
                    response
                }
                // Wrong version, an Error reply, a timeout, or a dead socket: the
                // worker cannot serve THIS batch — degrade its slice loudly.
                _ => {
                    self.declare_lost(links, worker_id);
                    for &query in &sent[worker_id] {
                        degraded[query] = true;
                    }
                    continue;
                }
            };
            for lists in response.shards {
                if lists.index < per_shard.len() && lists.lists.len() == sent[worker_id].len() {
                    per_shard[lists.index] = Some(lists.lists);
                }
            }
        }

        let mut per_query: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
        for (shard, lists) in per_shard.into_iter().enumerate() {
            let Some(lists) = lists else { continue };
            let owner = shard % workers;
            for (position, &query) in sent[owner].iter().enumerate() {
                per_query[query].extend(lists[position].iter().copied());
            }
        }
        stats.compute_time = gather_start.elapsed();
        self.obs
            .hist("cluster.gather_us")
            .record(gather_start.elapsed().as_micros() as u64);

        // A degraded query may still have partial lists from surviving workers; a
        // partial fold would be silently wrong, so the whole query drops to the
        // fallback path (the shared fold's own fallback arm answers it).
        let merge_start = Instant::now();
        let mut degraded_indices = Vec::new();
        for (index, flag) in degraded.iter().enumerate() {
            if *flag {
                per_query[index].clear();
                degraded_indices.push(index);
            }
        }
        self.counters
            .degraded_queries
            .fetch_add(degraded_indices.len() as u64, Ordering::Relaxed);
        let estimates = fold_entry_lists(
            &self.options.config,
            self.fallback.as_deref(),
            &per_query,
            queries,
            &mut stats,
        );
        stats.merge_time = merge_start.elapsed();
        stats.total_time = start.elapsed();

        ServeResponse {
            estimates,
            stats,
            pool_version: snapshot.version(),
            degraded: degraded_indices,
        }
    }

    fn gauge_in_flight(&self, worker_id: usize, value: f64) {
        if self.obs.enabled() {
            self.obs
                .gauge(&format!("cluster.worker.{worker_id}.in_flight"))
                .set(value);
        }
    }

    /// Stages `candidate` on a canary worker, mirrors `probe` traffic through live and
    /// candidate there, and — only if the refresh tier's gate accepts — stages + swaps
    /// it fleet-wide under a fresh version.  Holds the serve lock throughout, so no
    /// batch can interleave with a half-rolled-out fleet.
    pub fn roll_out(
        &self,
        candidate: CrnModel,
        probe_queries: &[Query],
        probe_truths: &[u64],
    ) -> Result<RolloutOutcome, WireError> {
        let mut links = lock_links(&self.links);
        let workers = links.len();
        let next_version = self.model_version.load(Ordering::Acquire) + 1;
        let canary = (0..workers)
            .find(|&worker| links[worker].stream.is_some())
            .ok_or_else(|| WireError::BadPayload("no live worker to canary a rollout on".into()))?;

        let exchange = |links: &mut [WorkerLink], worker: usize, message: &Message| {
            let stream = links[worker].stream.as_mut().expect("live link");
            write_message(stream, message).and_then(|()| read_message(stream))
        };

        // Stage on the canary and mirror the probe set through both models.
        exchange(
            &mut links,
            canary,
            &Message::Stage(StageModel {
                version: next_version,
                model: candidate.clone(),
            }),
        )?;
        let probe = exchange(
            &mut links,
            canary,
            &Message::Probe(ProbeRequest {
                queries: probe_queries.to_vec(),
                truths: probe_truths.to_vec(),
            }),
        )?;
        let Message::ProbeResult(probe) = probe else {
            return Err(WireError::BadPayload(format!(
                "unexpected {} to canary probe",
                probe.kind()
            )));
        };

        if !crn_online::gate_accepts(
            probe.live_median,
            probe.candidate_median,
            self.options.gate_margin,
        ) {
            let _ = exchange(&mut links, canary, &Message::Discard);
            self.counters
                .canary_rejected
                .fetch_add(1, Ordering::Relaxed);
            self.obs.record_event(Event::CanaryDecision {
                decision: "rejected",
                live_median: probe.live_median,
                candidate_median: probe.candidate_median,
            });
            return Ok(RolloutOutcome::Rejected {
                live_median: probe.live_median,
                candidate_median: probe.candidate_median,
            });
        }

        // Accepted: stage on the rest of the fleet, then swap everywhere.  The live
        // model/version flip first, so a worker lost mid-rollout is re-shipped the NEW
        // assignment on reconnect; until then its stale version makes every Eval fail
        // loudly (degraded), never blend.
        *lock_ignoring_poison_model(&self.live_model) = candidate.clone();
        self.model_version.store(next_version, Ordering::Release);
        for worker in 0..workers {
            if worker != canary && links[worker].stream.is_some() {
                let staged = exchange(
                    &mut links,
                    worker,
                    &Message::Stage(StageModel {
                        version: next_version,
                        model: candidate.clone(),
                    }),
                );
                if !matches!(staged, Ok(Message::StageAck)) {
                    self.declare_lost(&mut links, worker);
                }
            }
        }
        for worker in 0..workers {
            if links[worker].stream.is_some() {
                let swapped = exchange(
                    &mut links,
                    worker,
                    &Message::Swap(SwapModel {
                        version: next_version,
                    }),
                );
                if !matches!(swapped, Ok(Message::SwapAck)) {
                    self.declare_lost(&mut links, worker);
                }
            }
        }
        self.counters
            .canary_promoted
            .fetch_add(1, Ordering::Relaxed);
        self.obs.record_event(Event::CanaryDecision {
            decision: "promoted",
            live_median: probe.live_median,
            candidate_median: probe.candidate_median,
        });
        Ok(RolloutOutcome::Promoted {
            version: next_version,
            live_median: probe.live_median,
            candidate_median: probe.candidate_median,
        })
    }

    /// Sends every connected worker a shutdown frame (the eval demo's clean teardown;
    /// lost workers are simply left to their own exit).
    pub fn shutdown_workers(&self) {
        let mut links = lock_links(&self.links);
        for link in links.iter_mut() {
            if let Some(stream) = link.stream.as_mut() {
                let _ = write_message(stream, &Message::Shutdown);
            }
            link.stream = None;
        }
    }
}

fn lock_ignoring_poison_model(model: &Mutex<CrnModel>) -> MutexGuard<'_, CrnModel> {
    model
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ComputeBackend for ClusterClient {
    fn serve(&self, queries: &[Query]) -> ServeResponse {
        let mut links = lock_links(&self.links);
        self.serve_locked(&mut links, queries)
    }

    fn fallback_estimate(&self, query: &Query) -> f64 {
        match &self.fallback {
            Some(fallback) => fallback.estimate(query),
            None => self.options.config.default_estimate,
        }
    }

    fn serving_versions(&self) -> (u64, u64) {
        (
            self.mirror.snapshot().version(),
            self.model_version.load(Ordering::Acquire),
        )
    }

    fn apply_feedback(&self, query: &Query, cardinality: u64) {
        self.mirror.upsert(query.clone(), cardinality);
        let shard = self.mirror.shard_of(query);
        let mut links = lock_links(&self.links);
        let workers = links.len();
        let owner = shard % workers;
        if links[owner].stream.is_some() {
            let outcome = {
                let stream = links[owner].stream.as_mut().expect("live link");
                write_message(
                    stream,
                    &Message::Upsert(UpsertRequest {
                        shard,
                        query: query.clone(),
                        cardinality,
                    }),
                )
                .and_then(|()| read_message(stream))
            };
            match outcome {
                Ok(Message::UpsertAck) => {
                    self.counters
                        .upserts_forwarded
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => self.declare_lost(&mut links, owner),
            }
        }
        // A lost owner misses this upsert now, but reconnect re-ships the whole
        // mirror, so its shard converges to the authoritative state.
    }

    fn record_retention(&self, query: &Query, q_error: f64) -> bool {
        // Retention weights steer coordinator-side eviction/compaction only; they
        // never change what a shard scan returns, so workers don't need them.
        self.mirror.record_feedback(query, q_error)
    }

    fn pool_evictions(&self) -> u64 {
        self.mirror.evictions()
    }

    fn compact(&self) -> usize {
        let merged = self.mirror.compact();
        if merged > 0 {
            // Compaction restructures shard contents; re-ship every live worker its
            // assignment so worker shards stay bit-identical to the mirror.
            let mut links = lock_links(&self.links);
            let workers = links.len();
            for worker_id in 0..workers {
                if links[worker_id].stream.is_some()
                    && self
                        .ship_assignment(&mut links[worker_id], worker_id, workers)
                        .is_err()
                {
                    self.declare_lost(&mut links, worker_id);
                }
            }
        }
        merged
    }

    fn name(&self) -> &str {
        &self.name
    }
}
