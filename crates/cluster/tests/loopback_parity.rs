//! The distributed-parity pin: a loopback coordinator + worker fleet serves every
//! batch **bit-identically** to the single-process service and to the paper's
//! sequential estimator, across every fleet shape the ISSUE names (workers {1,2,4} ×
//! shards {1,4,8}), through feedback upserts, and for the zero-length batch.

mod common;

use common::{assert_bit_identical, fixture, spawn_fleet, workload};
use crn_cluster::{ClusterClient, ClusterOptions};
use crn_core::{Cnt2Crd, EstimatorService, ShardedPool};
use crn_estimators::CardinalityEstimator;
use crn_nn::parallel::WorkerPool;
use crn_serve::ComputeBackend;

#[test]
fn distributed_serving_is_bit_identical_across_fleet_shapes() {
    let fx = fixture(11);
    let queries = workload(&fx.db, 77, 24);
    for &workers in &[1usize, 2, 4] {
        for &shards in &[1usize, 4, 8] {
            let context = format!("workers={workers} shards={shards}");
            let (addrs, handles) = spawn_fleet(workers, 1);
            let client = ClusterClient::connect(
                &addrs,
                fx.model.clone(),
                &fx.pool,
                shards,
                ClusterOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{context}: connect failed: {e}"));

            let response = client.serve(&queries);
            assert!(
                response.degraded.is_empty(),
                "{context}: healthy fleet degraded {:?}",
                response.degraded
            );

            // Single-process service over the same pool sharding.
            let service = EstimatorService::new(
                fx.model.clone(),
                ShardedPool::from_pool(&fx.pool, shards),
                WorkerPool::shared(2),
            );
            let local = ComputeBackend::serve(&service, &queries);
            assert_bit_identical(&response.estimates, &local.estimates, &context);

            // And the paper's sequential path (shard-count independence transitively).
            let sequential = Cnt2Crd::new(fx.model.clone(), fx.pool.clone());
            for (query, estimate) in queries.iter().zip(&response.estimates) {
                assert_eq!(
                    estimate.to_bits(),
                    sequential.estimate(query).to_bits(),
                    "{context}: diverged from sequential Cnt2Crd"
                );
            }

            client.shutdown_workers();
            for handle in handles {
                handle.join().expect("worker thread exits cleanly");
            }
        }
    }
}

#[test]
fn parity_survives_feedback_upserts_on_both_sides() {
    let fx = fixture(23);
    let queries = workload(&fx.db, 91, 16);
    let fresh = workload(&fx.db, 92, 8);

    let (addrs, handles) = spawn_fleet(2, 1);
    let client = ClusterClient::connect(
        &addrs,
        fx.model.clone(),
        &fx.pool,
        4,
        ClusterOptions::default(),
    )
    .expect("connect");
    let service = EstimatorService::new(
        fx.model.clone(),
        ShardedPool::from_pool(&fx.pool, 4),
        WorkerPool::shared(2),
    );

    // Identical upsert stream on both sides: the cluster forwards each record to the
    // owning worker, the local service applies it directly.
    for (index, query) in fresh.iter().enumerate() {
        let cardinality = 10 * (index as u64 + 1) + 5;
        client.apply_feedback(query, cardinality);
        service.apply_feedback(query, cardinality);
    }
    assert_eq!(client.stats().upserts_forwarded, fresh.len() as u64);

    let response = client.serve(&queries);
    let local = ComputeBackend::serve(&service, &queries);
    assert!(response.degraded.is_empty());
    assert_bit_identical(&response.estimates, &local.estimates, "post-upsert batch");

    // The upserted queries themselves now serve from the pool, identically.
    let response = client.serve(&fresh);
    let local = ComputeBackend::serve(&service, &fresh);
    assert!(response.degraded.is_empty());
    assert_bit_identical(&response.estimates, &local.estimates, "upserted queries");

    client.shutdown_workers();
    for handle in handles {
        handle.join().expect("worker thread exits cleanly");
    }
}

#[test]
fn zero_length_batch_serves_empty_and_stays_healthy() {
    let fx = fixture(5);
    let (addrs, handles) = spawn_fleet(2, 1);
    let client = ClusterClient::connect(
        &addrs,
        fx.model.clone(),
        &fx.pool,
        4,
        ClusterOptions::default(),
    )
    .expect("connect");

    let response = client.serve(&[]);
    assert!(response.estimates.is_empty());
    assert!(response.degraded.is_empty());
    let stats = client.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.worker_losses, 0);
    assert_eq!(stats.workers_up, 2);

    client.shutdown_workers();
    for handle in handles {
        handle.join().expect("worker thread exits cleanly");
    }
}
